//! The whole `Mc` compiler for the MANIFOLD subset the paper uses, plus
//! two executors for running compiled coordinator specs.
//!
//! The paper presents its coordination protocol as literal MANIFOLD source
//! (`protocolMW.m`, `mainprog.m`). This module takes that source the whole
//! way: lex → parse → check → **compile to a state-machine IR** → execute,
//! with a tree-walking interpreter kept as the reference semantics:
//!
//! * [`token`] — lexer with `/* … */`, `//` comments, `#include`
//!   recording and object-like `#define` macro substitution (the paper's
//!   `#define IDLE terminated (void)`);
//! * [`ast`] — the abstract syntax: manner/manifold declarations, blocks
//!   with declarative statements (`save`, `ignore`, `priority`, `hold`,
//!   `auto process … is …`, `stream KK …`), event-labelled states, and
//!   action expressions (sequential `;`, grouped `(…, …)`, stream chains
//!   `&worker -> master -> worker -> master.dataport`, `post`/`raise`/
//!   `halt`/`terminated`, assignments and `if … then … else …`);
//! * [`parse`] — a recursive-descent parser;
//! * [`check`] — structural semantic checks (every block has a `begin`
//!   state, priority declarations reference handled events, …) and
//!   protocol-level queries used by the tests to verify that the paper's
//!   source and this crate's embedded-DSL implementation agree;
//! * [`compile`] — the back end: AST → flat per-manner state-machine IR
//!   (numbered states, priority-ordered event-dispatch tables, interned
//!   identifiers, pre-resolved stream chains and declaration opcodes),
//!   plus a stable disassembler;
//! * [`vm`] — the production executor: steps the IR against the live
//!   runtime with zero per-step parsing, hashing, or allocation in the
//!   steady state;
//! * [`interp`] — the reference executor: tree-walks the AST with the same
//!   observable semantics (the differential tests in
//!   `tests/lang_proptests.rs` hold the two bit-identical);
//! * [`exec`] — the seam between them: the shared [`Value`] model,
//!   [`AtomicFactory`] host interface with typed `expect_*_arg` argument
//!   access, the [`CoordExecutor`] trait, the [`CoordExec`] selector
//!   (`--coord interp|compiled`, compiled by default), and [`Mc`], which
//!   bundles a parsed program with its compiled form;
//! * [`error`] — typed [`LangError`] diagnostics carrying source lines.
//!
//! The paper's two source files ship as fixtures (`fixtures/protocolMW.m`,
//! `fixtures/mainprog.m`, transcribed from §4.2/§5); the committed IR
//! snapshot `fixtures/protocolMW.ir.txt` documents the state machine the
//! paper implies.

pub mod ast;
pub mod check;
pub mod compile;
pub mod error;
pub mod exec;
pub mod interp;
pub mod parse;
pub mod print;
pub mod token;
pub mod vm;

pub use ast::{Action, BlockItem, Declaration, Item, Program, State};
pub use check::{check_program, ProgramSummary};
pub use compile::{compile, CompiledBlock, CompiledManner, CompiledProgram, CompiledState};
pub use error::{LangError, LangErrorKind};
pub use exec::{
    expect_event_arg, expect_int_arg, expect_process_arg, AtomicFactory, CoordExec, CoordExecutor,
    Executor, Mc, Value,
};
pub use interp::Interp;
pub use parse::parse_program;
pub use print::print_program;
pub use token::{lex, Token, TokenKind};
pub use vm::Vm;

/// The paper's `protocolMW.m` (§4.2), transcribed.
pub const PROTOCOL_MW_SOURCE: &str = include_str!("fixtures/protocolMW.m");

/// The paper's `mainprog.m` (§5), transcribed.
pub const MAINPROG_SOURCE: &str = include_str!("fixtures/mainprog.m");
