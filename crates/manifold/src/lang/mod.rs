//! A front-end for the MANIFOLD language (the `Mc` compiler's job).
//!
//! The paper presents its coordination protocol as literal MANIFOLD source
//! (`protocolMW.m`, `mainprog.m`). This module implements the front half of
//! the `Mc` compiler for the language subset those programs use:
//!
//! * [`token`] — lexer with `/* … */`, `//` comments, `#include`
//!   recording and object-like `#define` macro substitution (the paper's
//!   `#define IDLE terminated (void)`);
//! * [`ast`] — the abstract syntax: manner/manifold declarations, blocks
//!   with declarative statements (`save`, `ignore`, `priority`, `hold`,
//!   `auto process … is …`, `stream KK …`), event-labelled states, and
//!   action expressions (sequential `;`, grouped `(…, …)`, stream chains
//!   `&worker -> master -> worker -> master.dataport`, `post`/`raise`/
//!   `halt`/`terminated`, assignments and `if … then … else …`);
//! * [`parse`] — a recursive-descent parser;
//! * [`check`] — structural semantic checks (every block has a `begin`
//!   state, priority declarations reference handled events, …) and
//!   protocol-level queries used by the tests to verify that the paper's
//!   source and this crate's embedded-DSL implementation agree;
//! * [`interp`] — an interpreter for a coordinator subset, executing
//!   parsed manners against the live runtime ([`crate::coord::Coord`]).
//!
//! The paper's two source files ship as fixtures (`fixtures/protocolMW.m`,
//! `fixtures/mainprog.m`, transcribed from §4.2/§5) and are parsed in the
//! test suite.

pub mod ast;
pub mod check;
pub mod interp;
pub mod parse;
pub mod print;
pub mod token;

pub use ast::{Action, BlockItem, Declaration, Item, Program, State};
pub use check::{check_program, ProgramSummary};
pub use interp::{AtomicFactory, Interp, Value};
pub use parse::parse_program;
pub use print::print_program;
pub use token::{lex, Token, TokenKind};

/// The paper's `protocolMW.m` (§4.2), transcribed.
pub const PROTOCOL_MW_SOURCE: &str = include_str!("fixtures/protocolMW.m");

/// The paper's `mainprog.m` (§5), transcribed.
pub const MAINPROG_SOURCE: &str = include_str!("fixtures/mainprog.m");
