//! The state-machine VM: steps [`CompiledProgram`] IR against a live
//! [`Coord`], bit-identically to the tree-walking interpreter.
//!
//! Where [`crate::lang::interp::Interp`] re-parses structure on every step
//! — hashing identifier strings into per-frame maps, re-sorting wait
//! labels, rebuilding pattern vectors — the VM only indexes: states are
//! numbers, bindings are `(symbol, value)` pairs on one scope stack, and
//! every wait-pattern list was built at compile time. In the steady state
//! the dispatch loop performs **zero allocations**: transitions select
//! straight from [`CompiledBlock::local_pats`] into
//! [`CompiledBlock::local_targets`], `post` clones interned
//! [`Name`](crate::ident::Name)s
//! (a refcount bump), and the only growable scratch (the `terminated(p)`
//! wait list) is reused across steps. `coord_bench --assert-zero-alloc`
//! enforces this with a counting allocator.
//!
//! ## Scope discipline
//!
//! The interpreter uses dynamically-scoped frames: a manner call's frame
//! has the *calling* frame as its parent. The VM replicates this with a
//! single stack of `(symbol, value)` slots scanned backwards — the most
//! recent binding of a symbol wins, which is exactly the nearest frame in
//! the interpreter's parent chain. Manner calls and block entries record a
//! mark and truncate back to it on exit.
//!
//! ## Fidelity
//!
//! Every error, trace record, and event interaction matches the
//! interpreter exactly (the differential property tests in
//! `tests/lang_proptests.rs` and the three-way protocol tests in
//! `tests/interpreted_protocol.rs` hold both executors to it): same
//! [`LangError`] kinds with the same source lines, same `MES` attribution,
//! same event-memory operations in the same order.

use std::sync::Arc;

use crate::builtin::Variable;
use crate::coord::Coord;
use crate::error::{MfError, MfResult};
use crate::event::{EventOccurrence, EventPattern};
use crate::lang::compile::{CExpr, CompiledBlock, CompiledProgram, DeclOp, Op, Sym};
use crate::lang::error::{attribute_line, LangError, LangErrorKind};
use crate::lang::exec::Value;
use crate::process::ProcessRef;
use crate::stream::Stream;
use crate::unit::Unit;

/// The VM for one compiled program.
pub struct Vm<'p> {
    program: &'p CompiledProgram,
    source_name: String,
}

/// How a body/block finished (mirror of the interpreter's control flow).
enum Flow {
    /// Ran to completion.
    Done,
    /// Preempted by an event occurrence (not matching any local label).
    Preempted(EventOccurrence),
    /// `halt` executed: unwind to the manner boundary.
    Halted,
}

/// Mutable state of one `call_manner` activation.
struct Run {
    /// The dynamic scope: `(symbol, value)` slots, innermost last.
    slots: Vec<(u32, Value)>,
    /// Reusable wait list for `terminated(p)` (block patterns + one
    /// termination pattern); keeps the hot loop allocation-free.
    scratch: Vec<EventPattern>,
}

impl Run {
    fn lookup(&self, sym: Sym) -> Option<Value> {
        self.slots
            .iter()
            .rev()
            .find(|(s, _)| *s == sym.0)
            .map(|(_, v)| v.clone())
    }
}

impl<'p> Vm<'p> {
    /// Create a VM for `program`. `source_name` labels MES trace records.
    pub fn new(program: &'p CompiledProgram, source_name: impl Into<String>) -> Self {
        Vm {
            program,
            source_name: source_name.into(),
        }
    }

    /// Call an exported manner by name with the given arguments.
    pub fn call_manner(&self, coord: &Coord, name: &str, args: Vec<Value>) -> MfResult<()> {
        let idx = self
            .program
            .manners
            .iter()
            .position(|m| m.name.as_str() == name)
            .ok_or_else(|| LangError::new(LangErrorKind::UnknownManner(name.to_string())))?;
        let mut run = Run {
            slots: Vec::new(),
            scratch: Vec::new(),
        };
        self.run_manner(coord, &mut run, idx, args, 0)
    }

    fn run_manner(
        &self,
        coord: &Coord,
        run: &mut Run,
        manner: usize,
        args: Vec<Value>,
        line: u32,
    ) -> MfResult<()> {
        let m = &self.program.manners[manner];
        if m.params.len() != args.len() {
            return Err(LangError::at(
                LangErrorKind::ArityMismatch {
                    manner: m.name.as_str().to_string(),
                    params: m.params.len(),
                    args: args.len(),
                },
                line,
            )
            .into());
        }
        // Watch process arguments up front so no early raise is lost (the
        // `terminated(master)` sensitivity of §4.2).
        for a in &args {
            if let Value::Process(p) = a {
                coord.watch(p);
            }
        }
        let mark = run.slots.len();
        for (s, a) in m.params.iter().zip(args) {
            run.slots.push((s.0, a));
        }
        let r = self.run_block(coord, run, m.block);
        run.slots.truncate(mark);
        // A manner boundary absorbs `halt`.
        match r? {
            Flow::Done | Flow::Halted => Ok(()),
            Flow::Preempted(occ) => Err(MfError::App(format!(
                "manner exited on unhandled occurrence {occ:?}"
            ))),
        }
    }

    /// Execute one block: declaration opcodes, then the state machine.
    fn run_block(&self, coord: &Coord, run: &mut Run, block: usize) -> MfResult<Flow> {
        let b = &self.program.blocks[block];
        let mark = run.slots.len();
        let r = self.run_block_inner(coord, run, b);
        run.slots.truncate(mark);
        if r.is_ok() {
            // `ignore e.`: purge on departure from the block (skipped on
            // the error path, exactly like the interpreter).
            for e in &b.ignores {
                coord.ctx().core().events().purge_named(e);
            }
        }
        r
    }

    fn run_block_inner(&self, coord: &Coord, run: &mut Run, b: &CompiledBlock) -> MfResult<Flow> {
        for d in &b.decls {
            match d {
                DeclOp::Event { sym } => {
                    let name = self.program.name(*sym).clone();
                    run.slots.push((sym.0, Value::Event(name)));
                }
                DeclOp::Variable { sym, init, line } => {
                    let init = match init {
                        Some(e) => self.eval_int(run, e, *line)?,
                        None => 0,
                    };
                    let name = self.program.name(*sym).clone();
                    let var = Variable::spawn(coord, name.as_str(), Unit::int(init))?;
                    run.slots.push((sym.0, Value::Variable(var)));
                }
                DeclOp::Process {
                    sym,
                    ctor,
                    args,
                    line,
                } => {
                    let factory = match run.lookup(*ctor) {
                        Some(Value::Manifold(f)) => f,
                        _ => {
                            return Err(LangError::at(
                                LangErrorKind::NotAManifold(
                                    self.program.name(*ctor).as_str().to_string(),
                                ),
                                *line,
                            )
                            .into())
                        }
                    };
                    let argv: Vec<Value> = args
                        .iter()
                        .map(|a| self.eval_value(run, a, *line))
                        .collect::<MfResult<_>>()?;
                    let p = factory(coord, &argv).map_err(|e| attribute_line(e, *line))?;
                    run.slots.push((sym.0, Value::Process(p)));
                }
                DeclOp::InvalidStream { ty } => {
                    return Err(LangError::new(LangErrorKind::UnknownStreamType(ty.clone())).into())
                }
            }
        }

        let mut current = match b.begin {
            Some(i) => i,
            None => return Err(LangError::new(LangErrorKind::NoSuchState("begin".into())).into()),
        };
        loop {
            let state = &b.states[current];
            // Empty Vec: no allocation until a chain op actually pushes.
            let mut streams: Vec<Arc<Stream>> = Vec::new();
            let flow = self.exec_op(coord, run, b, &state.body, &mut streams);
            // State preemption: dismantle this state's streams (also on the
            // error path, as the interpreter does).
            for s in &streams {
                s.dismantle();
            }
            match flow? {
                Flow::Halted => return Ok(Flow::Halted),
                Flow::Preempted(occ) => {
                    let target = occ
                        .name()
                        .and_then(|n| b.states.iter().position(|s| s.label == *n));
                    match target {
                        Some(i) => current = i,
                        None => return Ok(Flow::Preempted(occ)),
                    }
                }
                Flow::Done => {
                    // Body completed: pending local label → transition via
                    // the dispatch table; pending outer label → exit; else
                    // the block completes.
                    let events = coord.ctx().core().events();
                    if let Some((i, _)) = events.try_select(&b.local_pats) {
                        current = b.local_targets[i];
                        continue;
                    }
                    if let Some((_, occ)) = events.try_select(&b.outer_pats) {
                        return Ok(Flow::Preempted(occ));
                    }
                    return Ok(Flow::Done);
                }
            }
        }
    }

    fn exec_op(
        &self,
        coord: &Coord,
        run: &mut Run,
        b: &CompiledBlock,
        op: &Op,
        streams: &mut Vec<Arc<Stream>>,
    ) -> MfResult<Flow> {
        match op {
            Op::Seq(parts) => {
                for p in parts {
                    match self.exec_op(coord, run, b, p, streams)? {
                        Flow::Done => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Done)
            }
            Op::Block(idx) => self.run_block(coord, run, *idx),
            Op::Chain { steps, line } => {
                for s in steps {
                    let sink = self.resolve_process(run, s.to, *line)?;
                    let sink_port = sink.port(self.program.name(s.to_port).clone());
                    if s.from_ref {
                        // `&p -> q`: a one-shot reference unit from the
                        // coordinator.
                        let p = self.resolve_process(run, s.from, *line)?;
                        let st = Stream::preloaded(s.ty, [Unit::ProcessRef(p)]);
                        sink_port.attach_incoming(&st);
                        streams.push(st);
                    } else {
                        let src = self.resolve_process(run, s.from, *line)?;
                        let src_port = src.port(self.program.name(s.from_port).clone());
                        let st = Stream::new(s.ty);
                        src_port.attach_outgoing(&st);
                        sink_port.attach_incoming(&st);
                        streams.push(st);
                    }
                }
                Ok(Flow::Done)
            }
            Op::Call {
                manner,
                name,
                args,
                line,
            } => {
                // Arguments evaluate before the callee is resolved, exactly
                // like the interpreter.
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_value(run, a, *line))
                    .collect::<MfResult<_>>()?;
                match manner {
                    Some(idx) => {
                        self.run_manner(coord, run, *idx, argv, *line)?;
                        Ok(Flow::Done)
                    }
                    None => Err(LangError::at(
                        LangErrorKind::UnknownManner(self.program.name(*name).as_str().to_string()),
                        *line,
                    )
                    .into()),
                }
            }
            Op::Post(e) => {
                coord.post(self.program.name(*e).clone());
                Ok(Flow::Done)
            }
            Op::Raise(e) => {
                coord.raise(self.program.name(*e).clone());
                Ok(Flow::Done)
            }
            Op::Halt => Ok(Flow::Halted),
            Op::PreemptAll => Ok(Flow::Done),
            Op::Mes { msg, line } => {
                coord.ctx().trace(&self.source_name, *line, msg.clone());
                Ok(Flow::Done)
            }
            Op::Idle => {
                // IDLE: only events can get us out; the wait list is the
                // precomputed local ++ outer patterns.
                let (_, occ) = coord.ctx().core().events().wait_select(&b.all_pats)?;
                Ok(Flow::Preempted(occ))
            }
            Op::AwaitTermination { proc, line } => {
                let p = match run.lookup(*proc) {
                    Some(Value::Process(p)) => p,
                    _ => {
                        return Err(LangError::at(
                            LangErrorKind::NotAProcess(
                                self.program.name(*proc).as_str().to_string(),
                            ),
                            *line,
                        )
                        .into())
                    }
                };
                coord.watch(&p);
                run.scratch.clear();
                run.scratch.extend_from_slice(&b.all_pats);
                run.scratch.push(EventPattern::Terminated(p.id()));
                let (idx, occ) = coord.ctx().core().events().wait_select(&run.scratch)?;
                if idx == run.scratch.len() - 1 && occ.is_termination_of(p.id()) {
                    Ok(Flow::Done)
                } else {
                    Ok(Flow::Preempted(occ))
                }
            }
            Op::Assign { var, value, line } => {
                let v = self.eval_int(run, value, *line)?;
                match run.lookup(*var) {
                    Some(Value::Variable(target)) => {
                        target.set(Unit::int(v));
                        Ok(Flow::Done)
                    }
                    _ => Err(LangError::at(
                        LangErrorKind::NotAVariable(self.program.name(*var).as_str().to_string()),
                        *line,
                    )
                    .into()),
                }
            }
            Op::If {
                lhs,
                op,
                rhs,
                then,
                otherwise,
                line,
            } => {
                let l = self.eval_int(run, lhs, *line)?;
                let r = self.eval_int(run, rhs, *line)?;
                let hit = match op {
                    '<' => l < r,
                    '>' => l > r,
                    '=' => l == r,
                    _ => unreachable!(),
                };
                let branch = if hit {
                    Some(then.as_ref())
                } else {
                    otherwise.as_deref()
                };
                match branch {
                    Some(a) => self.exec_op(coord, run, b, a, streams),
                    None => Ok(Flow::Done),
                }
            }
            Op::Nop => Ok(Flow::Done),
        }
    }

    fn resolve_process(&self, run: &Run, sym: Sym, line: u32) -> MfResult<ProcessRef> {
        match run.lookup(sym) {
            Some(Value::Process(p)) => Ok(p),
            Some(Value::Variable(v)) => Ok(v.process().clone()),
            _ => Err(LangError::at(
                LangErrorKind::NotAProcess(self.program.name(sym).as_str().to_string()),
                line,
            )
            .into()),
        }
    }

    fn eval_value(&self, run: &Run, e: &CExpr, line: u32) -> MfResult<Value> {
        match e {
            CExpr::Int(v) => Ok(Value::Int(*v)),
            CExpr::Var(sym) | CExpr::Ref(sym) => run.lookup(*sym).ok_or_else(|| {
                LangError::at(
                    LangErrorKind::Unbound(self.program.name(*sym).as_str().to_string()),
                    line,
                )
                .into()
            }),
            CExpr::Binary { .. } => Ok(Value::Int(self.eval_int(run, e, line)?)),
            CExpr::Call => Err(LangError::at(LangErrorKind::NestedCall, line).into()),
        }
    }

    fn eval_int(&self, run: &Run, e: &CExpr, line: u32) -> MfResult<i64> {
        match e {
            CExpr::Int(v) => Ok(*v),
            CExpr::Var(sym) => match run.lookup(*sym) {
                Some(Value::Int(v)) => Ok(v),
                Some(Value::Variable(var)) => Ok(var.get_int()),
                other => Err(LangError::at(
                    LangErrorKind::NotNumeric {
                        name: self.program.name(*sym).as_str().to_string(),
                        found: format!("{other:?}"),
                    },
                    line,
                )
                .into()),
            },
            CExpr::Binary { op, lhs, rhs } => {
                let l = self.eval_int(run, lhs, line)?;
                let r = self.eval_int(run, rhs, line)?;
                Ok(match op {
                    '+' => l + r,
                    '-' => l - r,
                    _ => unreachable!(),
                })
            }
            CExpr::Ref(_) | CExpr::Call => {
                Err(LangError::at(LangErrorKind::NonNumericExpr, line).into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;
    use crate::lang::compile::compile;
    use crate::lang::parse::parse_program;

    fn run_vm(src: &str, manner: &str) -> (MfResult<()>, Vec<String>) {
        let prog = parse_program(src).unwrap();
        let ir = compile(&prog).unwrap();
        let env = Environment::new();
        let r = env.run_coordinator("Main", |coord| {
            Vm::new(&ir, "test.m").call_manner(coord, manner, vec![])
        });
        let msgs = env
            .trace()
            .snapshot()
            .into_iter()
            .map(|r| r.message)
            .collect();
        env.shutdown();
        (r, msgs)
    }

    #[test]
    fn steps_trivial_manner() {
        let (r, _) = run_vm("manner Go() { begin: halt. }", "Go");
        r.unwrap();
    }

    #[test]
    fn counts_with_variables_and_transitions() {
        let src = "manner Count() {\
            auto process n is variable(0).\
            begin: n = n + 1; if (n < 3) then ( post (begin) ) else ( post (done) ).\
            done: (MES(\"counted\"), halt).\
        }";
        let (r, msgs) = run_vm(src, "Count");
        r.unwrap();
        assert!(msgs.contains(&"counted".to_string()));
    }

    #[test]
    fn halt_stops_only_the_inner_manner() {
        let src = "\
            manner Inner() { begin: (MES(\"inner\"), halt). }\
            manner Outer() { begin: Inner(); post (done). \
                             done: (MES(\"outer done\"), halt). }";
        let (r, msgs) = run_vm(src, "Outer");
        r.unwrap();
        assert_eq!(msgs, vec!["inner".to_string(), "outer done".into()]);
    }

    #[test]
    fn typed_errors_carry_lines() {
        // Missing begin.
        let (r, _) = run_vm("manner NoBegin() { other: halt. }", "NoBegin");
        assert_eq!(
            r.unwrap_err(),
            MfError::Lang(LangError::new(LangErrorKind::NoSuchState("begin".into())))
        );
        // Unknown manner call carries the state's line.
        let (r, _) = run_vm("manner Go() { begin: Missing(). }", "Go");
        match r.unwrap_err() {
            MfError::Lang(e) => {
                assert_eq!(e.kind, LangErrorKind::UnknownManner("Missing".into()));
                assert_ne!(e.line, 0);
            }
            other => panic!("expected LangError, got {other:?}"),
        }
    }
}
