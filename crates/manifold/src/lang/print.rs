//! Pretty-printer: AST → MANIFOLD source.
//!
//! `parse(print(program))` is the identity on the AST (tested on the
//! paper's fixtures), which pins down both directions of the front-end.

use crate::lang::ast::*;

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for inc in &p.includes {
        out.push_str(&format!("#include \"{inc}\"\n"));
    }
    for pr in &p.pragmas {
        out.push_str(&format!("//pragma {pr}\n"));
    }
    for item in &p.items {
        out.push('\n');
        out.push_str(&print_item(item));
    }
    out
}

fn print_item(item: &Item) -> String {
    match item {
        Item::Manner {
            export,
            name,
            params,
            body,
        } => {
            let exp = if *export { "export " } else { "" };
            format!(
                "{exp}manner {name}({})\n{}\n",
                print_params(params),
                print_block(body, 0)
            )
        }
        Item::Manifold {
            name,
            params,
            ports,
            atomic,
            atomic_events,
            body,
        } => {
            let mut s = format!("manifold {name}");
            if !params.is_empty() {
                s.push_str(&format!("({})", print_params(params)));
            }
            for p in ports {
                s.push_str(&format!(
                    " port {} {}.",
                    if p.is_input { "in" } else { "out" },
                    p.name
                ));
            }
            if *atomic {
                s.push_str(" atomic");
                if !atomic_events.is_empty() {
                    s.push_str(&format!(
                        " {{internal. event {}}}",
                        atomic_events.join(", ")
                    ));
                }
                s.push_str(".\n");
            } else if let Some(b) = body {
                s.push('\n');
                s.push_str(&print_block(b, 0));
                s.push('\n');
            } else {
                s.push_str(".\n");
            }
            s
        }
    }
}

fn print_params(params: &[Param]) -> String {
    params
        .iter()
        .map(|p| match p {
            Param::Process {
                name,
                inputs,
                outputs,
            } => {
                if inputs.is_empty() && outputs.is_empty() {
                    format!("process {name}")
                } else {
                    format!(
                        "process {name} <{} / {}>",
                        inputs.join(", "),
                        outputs.join(", ")
                    )
                }
            }
            Param::Manifold { name, arg_kinds } => {
                format!("manifold {name}({})", arg_kinds.join(", "))
            }
            Param::Event(name) => {
                if name == "_" {
                    "event".to_string()
                } else {
                    format!("event {name}")
                }
            }
            Param::Port { is_input, name } => {
                format!("port {} {name}", if *is_input { "in" } else { "out" })
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn indent(n: usize) -> String {
    "    ".repeat(n)
}

fn print_block(b: &Block, depth: usize) -> String {
    let pad = indent(depth + 1);
    let mut s = format!("{}{{\n", indent(depth));
    for d in &b.declarations {
        s.push_str(&format!("{pad}{}\n", print_decl(d)));
    }
    for st in &b.states {
        s.push_str(&format!(
            "{pad}{}: {}.\n",
            st.label,
            print_action(&st.body, depth + 1)
        ));
    }
    s.push_str(&format!("{}}}", indent(depth)));
    s
}

fn print_decl(d: &Declaration) -> String {
    match d {
        Declaration::Save(names) => format!("save {}.", names.join(", ")),
        Declaration::Ignore(names) => format!("ignore {}.", names.join(", ")),
        Declaration::Event(names) => format!("event {}.", names.join(", ")),
        Declaration::Priority { higher, lower } => {
            format!("priority {higher} > {lower}.")
        }
        Declaration::Process {
            auto,
            name,
            ctor,
            args,
            ..
        } => {
            let a = if *auto { "auto " } else { "" };
            if args.is_empty() {
                format!("{a}process {name} is {ctor}.")
            } else {
                format!(
                    "{a}process {name} is {ctor}({}).",
                    args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
                )
            }
        }
        Declaration::Hold(name) => format!("hold {name}."),
        Declaration::Stream { ty, from, to } => format!(
            "stream {ty} {} -> {}.",
            print_endpoint(from),
            print_endpoint(to)
        ),
        Declaration::Internal => "internal.".to_string(),
    }
}

fn print_endpoint(e: &Endpoint) -> String {
    let amp = if e.is_ref { "&" } else { "" };
    match &e.port {
        Some(p) => format!("{amp}{}.{p}", e.process),
        None => format!("{amp}{}", e.process),
    }
}

fn print_action(a: &Action, depth: usize) -> String {
    match a {
        Action::Seq(parts) => parts
            .iter()
            .map(|p| print_action(p, depth))
            .collect::<Vec<_>>()
            .join("; "),
        Action::Group(parts) => format!(
            "({})",
            parts
                .iter()
                .map(|p| print_action(p, depth))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Action::Block(b) => print_block(b, depth),
        Action::Chain(eps) => eps
            .iter()
            .map(print_endpoint)
            .collect::<Vec<_>>()
            .join(" -> "),
        Action::Call { name, args } => format!(
            "{name}({})",
            args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
        Action::Post(e) => format!("post ({e})"),
        Action::Raise(e) => format!("raise({e})"),
        Action::Halt => "halt".to_string(),
        Action::Terminated(p) => format!("terminated({p})"),
        Action::PreemptAll => "preemptall".to_string(),
        Action::Mes(m) => format!("MES(\"{m}\")"),
        Action::Assign { name, value } => format!("{name} = {}", print_expr(value)),
        Action::If {
            cond,
            then,
            otherwise,
        } => {
            // Branches are single atoms in the grammar: parenthesize
            // sequences (so they reparse as one branch) and nested ifs
            // (so a dangling else cannot re-bind).
            let branch = |a: &Action| match a {
                Action::Seq(_) | Action::If { .. } => {
                    format!("({})", print_action(a, depth))
                }
                _ => print_action(a, depth),
            };
            let mut s = format!(
                "if ({} {} {}) then {}",
                print_expr(&cond.lhs),
                cond.op,
                print_expr(&cond.rhs),
                branch(then)
            );
            if let Some(o) = otherwise {
                s.push_str(&format!(" else {}", branch(o)));
            }
            s
        }
        Action::Mention(name) => name.clone(),
    }
}

fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Var(name) => name.clone(),
        Expr::Ref(name) => format!("&{name}"),
        Expr::Binary { op, lhs, rhs } => {
            // Parenthesize nested binaries so associativity survives the
            // round trip.
            let wrap = |e: &Expr| match e {
                Expr::Binary { .. } => format!("({})", print_expr(e)),
                _ => print_expr(e),
            };
            format!("{} {op} {}", wrap(lhs), wrap(rhs))
        }
        Expr::Call { name, args } => format!(
            "{name}({})",
            args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse::parse_program;
    use crate::lang::{MAINPROG_SOURCE, PROTOCOL_MW_SOURCE};

    fn normalize(p: &Program) -> Program {
        // Line numbers differ after re-printing; blank them for comparison.
        fn scrub_block(b: &mut Block) {
            for d in &mut b.declarations {
                if let Declaration::Process { line, .. } = d {
                    *line = 0;
                }
            }
            for s in &mut b.states {
                s.line = 0;
                scrub_action(&mut s.body);
            }
        }
        fn scrub_action(a: &mut Action) {
            match a {
                Action::Seq(v) | Action::Group(v) => v.iter_mut().for_each(scrub_action),
                Action::Block(b) => scrub_block(b),
                Action::If {
                    then, otherwise, ..
                } => {
                    scrub_action(then);
                    if let Some(o) = otherwise {
                        scrub_action(o);
                    }
                }
                _ => {}
            }
        }
        let mut p = p.clone();
        for item in &mut p.items {
            match item {
                Item::Manner { body, .. } => scrub_block(body),
                Item::Manifold { body: Some(b), .. } => scrub_block(b),
                _ => {}
            }
        }
        p
    }

    #[test]
    fn round_trip_protocol_mw() {
        let prog = parse_program(PROTOCOL_MW_SOURCE).unwrap();
        let printed = print_program(&prog);
        let again = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n----\n{printed}"));
        assert_eq!(normalize(&prog), normalize(&again));
    }

    #[test]
    fn round_trip_mainprog() {
        let prog = parse_program(MAINPROG_SOURCE).unwrap();
        let printed = print_program(&prog);
        let again = parse_program(&printed).unwrap();
        assert_eq!(normalize(&prog), normalize(&again));
    }

    #[test]
    fn printing_is_stable() {
        // print ∘ parse ∘ print is a fixed point.
        let prog = parse_program(PROTOCOL_MW_SOURCE).unwrap();
        let once = print_program(&prog);
        let twice = print_program(&parse_program(&once).unwrap());
        assert_eq!(once, twice);
    }
}
