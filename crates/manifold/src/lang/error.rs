//! Typed diagnostics for the MANIFOLD language layer.
//!
//! Both executors (the tree-walking [`crate::lang::interp::Interp`] and the
//! compiled [`crate::lang::vm::Vm`]) report malformed coordinator specs
//! through [`LangError`]: a typed kind plus the source line it was detected
//! at, instead of the bare `MfError::Spec(String)` (and the occasional
//! `panic!` in host-supplied factories) they used historically. Host code
//! building an [`crate::lang::AtomicFactory`] gets the same treatment via
//! the `expect_*_arg` helpers in [`crate::lang::exec`], so a wrong argument
//! kind diagnoses with the declaration's span rather than aborting.

use std::fmt;

use crate::error::MfError;

/// A diagnosed problem in a coordinator spec, with the source line where it
/// was detected (`0` when no span is known — e.g. inside a host factory
/// before the runtime re-attributes it to the declaration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// What went wrong.
    pub kind: LangErrorKind,
    /// 1-based source line, or 0 when unknown.
    pub line: u32,
}

/// The kinds of language-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangErrorKind {
    /// Call (or entry) to a manner the program does not define.
    UnknownManner(String),
    /// A manner was invoked with the wrong number of arguments.
    ArityMismatch {
        /// The manner called.
        manner: String,
        /// Declared parameter count.
        params: usize,
        /// Supplied argument count.
        args: usize,
    },
    /// A `process … is Ctor(…)` constructor is not a manifold in scope.
    NotAManifold(String),
    /// A name used where a process is required is not one.
    NotAProcess(String),
    /// Assignment target is not a `variable` instance.
    NotAVariable(String),
    /// A name used in arithmetic is bound to a non-numeric value.
    NotNumeric {
        /// The offending name.
        name: String,
        /// Debug rendering of what it is bound to.
        found: String,
    },
    /// An expression mentions a name with no binding in scope.
    Unbound(String),
    /// A block transitioned to (or started without) a missing state.
    NoSuchState(String),
    /// `stream XY …` with an unknown dismantling type.
    UnknownStreamType(String),
    /// Nested constructor calls are not supported as arguments.
    NestedCall,
    /// A host [`crate::lang::AtomicFactory`] received an argument of the
    /// wrong kind (reported by the `expect_*_arg` helpers).
    BadArgument {
        /// Zero-based argument index.
        index: usize,
        /// The kind the factory required.
        expected: &'static str,
        /// The kind it actually received.
        found: &'static str,
    },
    /// A non-numeric expression where an integer was required.
    NonNumericExpr,
}

impl LangError {
    /// An error with no known source line.
    pub fn new(kind: LangErrorKind) -> Self {
        LangError { kind, line: 0 }
    }

    /// An error detected at `line`.
    pub fn at(kind: LangErrorKind, line: u32) -> Self {
        LangError { kind, line }
    }

    /// Attach `line` if the error has no span yet (used to re-attribute
    /// factory-reported errors to the `process … is …` declaration).
    pub fn or_line(mut self, line: u32) -> Self {
        if self.line == 0 {
            self.line = line;
        }
        self
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line != 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            LangErrorKind::UnknownManner(n) => write!(f, "no manner `{n}`"),
            LangErrorKind::ArityMismatch {
                manner,
                params,
                args,
            } => write!(
                f,
                "arity mismatch calling `{manner}`: {params} params, {args} args"
            ),
            LangErrorKind::NotAManifold(n) => write!(f, "`{n}` is not a manifold in scope"),
            LangErrorKind::NotAProcess(n) => write!(f, "`{n}` is not a process in scope"),
            LangErrorKind::NotAVariable(n) => write!(f, "`{n}` is not a variable"),
            LangErrorKind::NotNumeric { name, found } => {
                write!(f, "`{name}` is not numeric: {found}")
            }
            LangErrorKind::Unbound(n) => write!(f, "unbound name `{n}`"),
            LangErrorKind::NoSuchState(l) => write!(f, "no state `{l}`"),
            LangErrorKind::UnknownStreamType(t) => write!(f, "unknown stream type {t}"),
            LangErrorKind::NestedCall => write!(
                f,
                "nested constructor calls are not supported as manner arguments here; \
                 pre-instantiate and pass the process"
            ),
            LangErrorKind::BadArgument {
                index,
                expected,
                found,
            } => write!(
                f,
                "factory argument {index}: expected {expected}, got {found}"
            ),
            LangErrorKind::NonNumericExpr => write!(f, "non-numeric expression"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<LangError> for MfError {
    fn from(e: LangError) -> Self {
        MfError::Lang(e)
    }
}

/// Re-attribute a factory error to the declaration line that invoked it,
/// when the error is a span-less [`LangError`].
pub(crate) fn attribute_line(e: MfError, line: u32) -> MfError {
    match e {
        MfError::Lang(le) => MfError::Lang(le.or_line(line)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_span() {
        let e = LangError::at(LangErrorKind::NotAVariable("t".into()), 43);
        assert_eq!(e.to_string(), "line 43: `t` is not a variable");
        let e = LangError::new(LangErrorKind::NestedCall);
        assert!(!e.to_string().starts_with("line"));
    }

    #[test]
    fn or_line_keeps_existing_span() {
        let e = LangError::at(LangErrorKind::Unbound("x".into()), 7).or_line(9);
        assert_eq!(e.line, 7);
        let e = LangError::new(LangErrorKind::Unbound("x".into())).or_line(9);
        assert_eq!(e.line, 9);
    }

    #[test]
    fn converts_into_mf_error() {
        let e: MfError = LangError::new(LangErrorKind::UnknownManner("Nope".into())).into();
        assert!(matches!(e, MfError::Lang(_)));
        assert!(e.to_string().contains("no manner"));
    }
}
