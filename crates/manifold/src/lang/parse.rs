//! Recursive-descent parser for the MANIFOLD subset.

use crate::error::{MfError, MfResult};
use crate::lang::ast::*;
use crate::lang::token::{lex, Token, TokenKind};

/// Parse a full source file.
pub fn parse_program(source: &str) -> MfResult<Program> {
    let lexed = lex(source)?;
    let mut p = Parser {
        tokens: lexed.tokens,
        pos: 0,
    };
    let mut items = Vec::new();
    while !p.at(&TokenKind::Eof) {
        items.push(p.item()?);
    }
    Ok(Program {
        items,
        includes: lexed.includes,
        pragmas: lexed.pragmas,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_ahead(&self, k: usize) -> &TokenKind {
        &self.tokens[(self.pos + k).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn at(&self, k: &TokenKind) -> bool {
        self.peek() == k
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(w) if w == word)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn expect(&mut self, k: TokenKind) -> MfResult<()> {
        if self.at(&k) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(&format!("expected {k:?}, found {:?}", self.peek())))
        }
    }

    fn accept(&mut self, k: &TokenKind) -> bool {
        if self.at(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn accept_word(&mut self, word: &str) -> bool {
        if self.at_ident(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> MfResult<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(&format!("expected identifier, found {other:?}"))),
        }
    }

    fn err(&self, msg: &str) -> MfError {
        MfError::Spec(format!("parse error at line {}: {msg}", self.line()))
    }

    // ------------------------------------------------------------ items

    fn item(&mut self) -> MfResult<Item> {
        let export = self.accept_word("export");
        if self.accept_word("manner") {
            let name = self.ident()?;
            let params = self.params()?;
            let body = self.block()?;
            // Optional trailing dot after a manner body.
            self.accept(&TokenKind::Dot);
            return Ok(Item::Manner {
                export,
                name,
                params,
                body,
            });
        }
        if export {
            return Err(self.err("`export` must precede `manner`"));
        }
        if self.accept_word("manifold") {
            return self.manifold_item();
        }
        Err(self.err(&format!(
            "expected `manner` or `manifold`, found {:?}",
            self.peek()
        )))
    }

    fn manifold_item(&mut self) -> MfResult<Item> {
        let name = self.ident()?;
        let params = if self.at(&TokenKind::LParen) {
            self.params()?
        } else {
            Vec::new()
        };
        let mut ports = Vec::new();
        let mut atomic = false;
        let mut atomic_events = Vec::new();
        let mut body = None;
        loop {
            if self.accept_word("port") {
                let is_input = if self.accept_word("in") {
                    true
                } else if self.accept_word("out") {
                    false
                } else {
                    return Err(self.err("expected `in` or `out` after `port`"));
                };
                let pname = self.ident()?;
                self.expect(TokenKind::Dot)?;
                ports.push(PortDecl {
                    is_input,
                    name: pname,
                });
                continue;
            }
            if self.accept_word("atomic") {
                atomic = true;
                if self.at(&TokenKind::LBrace) {
                    // `atomic {internal. event e1, e2, …}.`
                    self.bump();
                    loop {
                        if self.accept(&TokenKind::RBrace) {
                            break;
                        }
                        if self.accept_word("internal") {
                            self.accept(&TokenKind::Dot);
                            continue;
                        }
                        if self.accept_word("event") {
                            loop {
                                atomic_events.push(self.ident()?);
                                if !self.accept(&TokenKind::Comma) {
                                    break;
                                }
                            }
                            self.accept(&TokenKind::Dot);
                            continue;
                        }
                        return Err(self.err("unexpected token in atomic body"));
                    }
                }
                self.accept(&TokenKind::Dot);
                break;
            }
            if self.at(&TokenKind::LBrace) {
                body = Some(self.block()?);
                self.accept(&TokenKind::Dot);
                break;
            }
            if self.accept(&TokenKind::Dot) {
                break;
            }
            return Err(self.err(&format!(
                "unexpected token in manifold declaration: {:?}",
                self.peek()
            )));
        }
        Ok(Item::Manifold {
            name,
            params,
            ports,
            atomic,
            atomic_events,
            body,
        })
    }

    fn params(&mut self) -> MfResult<Vec<Param>> {
        self.expect(TokenKind::LParen)?;
        let mut out = Vec::new();
        if self.accept(&TokenKind::RParen) {
            return Ok(out);
        }
        loop {
            out.push(self.param()?);
            if self.accept(&TokenKind::Comma) {
                continue;
            }
            self.expect(TokenKind::RParen)?;
            break;
        }
        Ok(out)
    }

    fn param(&mut self) -> MfResult<Param> {
        if self.accept_word("process") {
            let name = self.ident()?;
            let mut inputs = Vec::new();
            let mut outputs = Vec::new();
            if self.accept(&TokenKind::Lt) {
                loop {
                    inputs.push(self.ident()?);
                    if !self.accept(&TokenKind::Comma) {
                        break;
                    }
                }
                if self.accept(&TokenKind::Slash) {
                    loop {
                        outputs.push(self.ident()?);
                        if !self.accept(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::Gt)?;
            }
            return Ok(Param::Process {
                name,
                inputs,
                outputs,
            });
        }
        if self.accept_word("manifold") {
            let name = self.ident()?;
            let mut arg_kinds = Vec::new();
            if self.accept(&TokenKind::LParen) && !self.accept(&TokenKind::RParen) {
                loop {
                    arg_kinds.push(self.ident()?);
                    if !self.accept(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
            }
            return Ok(Param::Manifold { name, arg_kinds });
        }
        if self.accept_word("event") {
            // Kind-only (`Worker(event)`) or named (`event done`).
            let name = if let TokenKind::Ident(_) = self.peek() {
                self.ident()?
            } else {
                "_".to_string()
            };
            return Ok(Param::Event(name));
        }
        if self.accept_word("port") {
            let is_input = if self.accept_word("in") {
                true
            } else if self.accept_word("out") {
                false
            } else {
                return Err(self.err("expected `in`/`out` after `port`"));
            };
            let name = self.ident()?;
            return Ok(Param::Port { is_input, name });
        }
        Err(self.err(&format!("bad parameter: {:?}", self.peek())))
    }

    // ------------------------------------------------------------ blocks

    fn block(&mut self) -> MfResult<Block> {
        self.expect(TokenKind::LBrace)?;
        let mut block = Block::default();
        loop {
            if self.accept(&TokenKind::RBrace) {
                break;
            }
            match self.block_item()? {
                BlockItem::Decl(d) => block.declarations.push(d),
                BlockItem::State(s) => block.states.push(s),
            }
        }
        Ok(block)
    }

    fn block_item(&mut self) -> MfResult<BlockItem> {
        // Declarations begin with a keyword; states with `label:`.
        if self.accept_word("save") {
            let mut names = Vec::new();
            if self.accept(&TokenKind::Star) {
                names.push("*".to_string());
            } else {
                loop {
                    names.push(self.ident()?);
                    if !self.accept(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::Dot)?;
            return Ok(BlockItem::Decl(Declaration::Save(names)));
        }
        if self.accept_word("ignore") {
            let mut names = vec![self.ident()?];
            while self.accept(&TokenKind::Comma) {
                names.push(self.ident()?);
            }
            self.expect(TokenKind::Dot)?;
            return Ok(BlockItem::Decl(Declaration::Ignore(names)));
        }
        if self.accept_word("internal") {
            self.expect(TokenKind::Dot)?;
            return Ok(BlockItem::Decl(Declaration::Internal));
        }
        if self.accept_word("event") {
            let mut names = vec![self.ident()?];
            while self.accept(&TokenKind::Comma) {
                names.push(self.ident()?);
            }
            self.expect(TokenKind::Dot)?;
            return Ok(BlockItem::Decl(Declaration::Event(names)));
        }
        if self.accept_word("priority") {
            let higher = self.ident()?;
            self.expect(TokenKind::Gt)?;
            let lower = self.ident()?;
            self.expect(TokenKind::Dot)?;
            return Ok(BlockItem::Decl(Declaration::Priority { higher, lower }));
        }
        if self.accept_word("hold") {
            let name = self.ident()?;
            self.expect(TokenKind::Dot)?;
            return Ok(BlockItem::Decl(Declaration::Hold(name)));
        }
        if self.accept_word("stream") {
            let ty = self.ident()?;
            let from = self.endpoint()?;
            self.expect(TokenKind::Arrow)?;
            let to = self.endpoint()?;
            self.expect(TokenKind::Dot)?;
            return Ok(BlockItem::Decl(Declaration::Stream { ty, from, to }));
        }
        if self.at_ident("auto") || self.at_ident("process") {
            let line = self.line();
            let auto = self.accept_word("auto");
            if !self.accept_word("process") {
                return Err(self.err("expected `process` after `auto`"));
            }
            let name = self.ident()?;
            if !self.accept_word("is") {
                return Err(self.err("expected `is` in process declaration"));
            }
            let ctor = self.ident()?;
            let args = if self.at(&TokenKind::LParen) {
                self.call_args()?
            } else {
                Vec::new()
            };
            self.expect(TokenKind::Dot)?;
            return Ok(BlockItem::Decl(Declaration::Process {
                auto,
                name,
                ctor,
                args,
                line,
            }));
        }
        // Otherwise: `label: body.`
        let line = self.line();
        let label = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let body = self.action()?;
        self.expect(TokenKind::Dot)?;
        Ok(BlockItem::State(State { label, body, line }))
    }

    // ----------------------------------------------------------- actions

    /// Sequential composition: `a ; b ; c`.
    fn action(&mut self) -> MfResult<Action> {
        let first = self.action_atom()?;
        if !self.at(&TokenKind::Semi) {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.accept(&TokenKind::Semi) {
            parts.push(self.action_atom()?);
        }
        Ok(Action::Seq(parts))
    }

    fn action_atom(&mut self) -> MfResult<Action> {
        if self.at(&TokenKind::LBrace) {
            return Ok(Action::Block(self.block()?));
        }
        if self.at(&TokenKind::LParen) {
            self.bump();
            let mut parts = Vec::new();
            if !self.accept(&TokenKind::RParen) {
                loop {
                    parts.push(self.action()?);
                    if self.accept(&TokenKind::Comma) {
                        continue;
                    }
                    self.expect(TokenKind::RParen)?;
                    break;
                }
            }
            return Ok(Action::Group(parts));
        }
        if self.at(&TokenKind::Amp) {
            // A stream chain starting with a reference.
            return self.chain_action();
        }
        // Keyword-ish primaries.
        if self.accept_word("halt") {
            return Ok(Action::Halt);
        }
        if self.accept_word("preemptall") {
            return Ok(Action::PreemptAll);
        }
        if self.accept_word("post") {
            self.expect(TokenKind::LParen)?;
            let e = self.ident()?;
            self.expect(TokenKind::RParen)?;
            return Ok(Action::Post(e));
        }
        if self.accept_word("raise") {
            self.expect(TokenKind::LParen)?;
            let e = self.ident()?;
            self.expect(TokenKind::RParen)?;
            return Ok(Action::Raise(e));
        }
        if self.accept_word("terminated") {
            self.expect(TokenKind::LParen)?;
            let p = self.ident()?;
            self.expect(TokenKind::RParen)?;
            return Ok(Action::Terminated(p));
        }
        if self.accept_word("MES") {
            self.expect(TokenKind::LParen)?;
            let msg = match self.bump() {
                TokenKind::Str(s) => s,
                other => return Err(self.err(&format!("MES expects a string, got {other:?}"))),
            };
            self.expect(TokenKind::RParen)?;
            return Ok(Action::Mes(msg));
        }
        if self.accept_word("if") {
            self.expect(TokenKind::LParen)?;
            let lhs = self.expr()?;
            let op = match self.bump() {
                TokenKind::Lt => '<',
                TokenKind::Gt => '>',
                TokenKind::Eq => '=',
                other => return Err(self.err(&format!("bad comparison {other:?}"))),
            };
            let rhs = self.expr()?;
            self.expect(TokenKind::RParen)?;
            if !self.accept_word("then") {
                return Err(self.err("expected `then`"));
            }
            let then = Box::new(self.action_atom()?);
            let otherwise = if self.accept_word("else") {
                Some(Box::new(self.action_atom()?))
            } else {
                None
            };
            return Ok(Action::If {
                cond: Cond { lhs, op, rhs },
                then,
                otherwise,
            });
        }
        // Identifier-led: assignment, call, chain, or bare mention.
        let name = self.ident()?;
        if self.at(&TokenKind::Eq) {
            self.bump();
            let value = self.expr()?;
            return Ok(Action::Assign { name, value });
        }
        if self.at(&TokenKind::LParen) {
            let args = self.call_args()?;
            return Ok(Action::Call { name, args });
        }
        if self.at(&TokenKind::Arrow) || self.at_dot_port() {
            // A chain starting from a plain endpoint.
            let first = self.finish_endpoint(false, name)?;
            return self.chain_from(first);
        }
        Ok(Action::Mention(name))
    }

    /// Is the current position `.` followed by an identifier (a port
    /// selector rather than a statement terminator)?
    fn at_dot_port(&self) -> bool {
        self.at(&TokenKind::Dot)
            && matches!(self.peek_ahead(1), TokenKind::Ident(_))
            && self.peek_ahead(2) == &TokenKind::Arrow
    }

    fn chain_action(&mut self) -> MfResult<Action> {
        let first = self.endpoint()?;
        self.chain_from(first)
    }

    fn chain_from(&mut self, first: Endpoint) -> MfResult<Action> {
        let mut chain = vec![first];
        while self.accept(&TokenKind::Arrow) {
            chain.push(self.endpoint()?);
        }
        if chain.len() < 2 {
            return Err(self.err("stream chain needs at least two endpoints"));
        }
        Ok(Action::Chain(chain))
    }

    fn endpoint(&mut self) -> MfResult<Endpoint> {
        let is_ref = self.accept(&TokenKind::Amp);
        let process = self.ident()?;
        self.finish_endpoint(is_ref, process)
    }

    fn finish_endpoint(&mut self, is_ref: bool, process: String) -> MfResult<Endpoint> {
        // A `.port` selector — but only when a port name follows and the
        // dot is not the statement terminator.
        let port = if self.at(&TokenKind::Dot)
            && matches!(self.peek_ahead(1), TokenKind::Ident(_))
            && !matches!(self.peek_ahead(2), TokenKind::Colon)
        {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Endpoint {
            is_ref,
            process,
            port,
        })
    }

    fn call_args(&mut self) -> MfResult<Vec<Expr>> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.accept(&TokenKind::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.accept(&TokenKind::Comma) {
                continue;
            }
            self.expect(TokenKind::RParen)?;
            break;
        }
        Ok(args)
    }

    fn expr(&mut self) -> MfResult<Expr> {
        let mut lhs = self.expr_primary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => '+',
                TokenKind::Minus => '-',
                _ => break,
            };
            self.bump();
            let rhs = self.expr_primary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn expr_primary(&mut self) -> MfResult<Expr> {
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::LParen => {
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Minus => {
                // Unary minus: negate the following primary.
                let inner = self.expr_primary()?;
                Ok(match inner {
                    Expr::Int(v) => Expr::Int(-v),
                    other => Expr::Binary {
                        op: '-',
                        lhs: Box::new(Expr::Int(0)),
                        rhs: Box::new(other),
                    },
                })
            }
            TokenKind::Amp => Ok(Expr::Ref(self.ident()?)),
            TokenKind::Ident(name) => {
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(&format!("bad expression token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{MAINPROG_SOURCE, PROTOCOL_MW_SOURCE};

    #[test]
    fn parses_minimal_manner() {
        let src = "manner F(process p) { begin: halt. }";
        let prog = parse_program(src).unwrap();
        let (params, body, export) = prog.manner("F").unwrap();
        assert!(!export);
        assert_eq!(params.len(), 1);
        assert_eq!(body.state_labels(), vec!["begin"]);
        assert_eq!(body.state("begin").unwrap().body, Action::Halt);
    }

    #[test]
    fn parses_sequence_and_group() {
        let src = "manner F() { begin: a(); post (begin). }";
        let prog = parse_program(src).unwrap();
        let (_, body, _) = prog.manner("F").unwrap();
        match &body.state("begin").unwrap().body {
            Action::Seq(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Action::Call { .. }));
                assert_eq!(parts[1], Action::Post("begin".into()));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn parses_stream_chain_with_refs_and_ports() {
        let src = "manner F() { begin: &worker -> master -> worker -> master.dataport. }";
        let prog = parse_program(src).unwrap();
        let (_, body, _) = prog.manner("F").unwrap();
        match &body.state("begin").unwrap().body {
            Action::Chain(eps) => {
                assert_eq!(eps.len(), 4);
                assert!(eps[0].is_ref);
                assert_eq!(eps[0].process, "worker");
                assert_eq!(eps[3].port.as_deref(), Some("dataport"));
            }
            other => panic!("expected Chain, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_then_else() {
        let src = "manner F() { death: t = t + 1; \
                    if (t < now) then ( post (begin) ) else ( post (end) ). }";
        let prog = parse_program(src).unwrap();
        let (_, body, _) = prog.manner("F").unwrap();
        match &body.state("death").unwrap().body {
            Action::Seq(parts) => match &parts[1] {
                Action::If {
                    cond, otherwise, ..
                } => {
                    assert_eq!(cond.op, '<');
                    assert!(otherwise.is_some());
                }
                other => panic!("expected If, got {other:?}"),
            },
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_protocol_mw() {
        let prog = parse_program(PROTOCOL_MW_SOURCE).unwrap();
        // Both manners present, ProtocolMW exported.
        let (params, pool, _) = prog.manner("Create_Worker_Pool").unwrap();
        assert_eq!(params.len(), 2);
        let (_, proto, export) = prog.manner("ProtocolMW").unwrap();
        assert!(export);
        assert_eq!(
            proto.state_labels(),
            vec!["begin", "create_pool", "finished"]
        );
        assert_eq!(
            pool.state_labels(),
            vec!["begin", "create_worker", "rendezvous", "end"]
        );
        // `begin: terminated(master).`
        assert_eq!(
            proto.state("begin").unwrap().body,
            Action::Terminated("master".into())
        );
        // The rendezvous state is a nested block with begin + death_worker.
        match &pool.state("rendezvous").unwrap().body {
            Action::Block(b) => {
                assert_eq!(b.state_labels(), vec!["begin", "death_worker"]);
            }
            other => panic!("expected Block, got {other:?}"),
        }
        // The create_worker state declares the KK stream.
        match &pool.state("create_worker").unwrap().body {
            Action::Block(b) => {
                assert!(b.declarations.iter().any(|d| matches!(
                    d,
                    Declaration::Stream { ty, .. } if ty == "KK"
                )));
                assert!(b
                    .declarations
                    .iter()
                    .any(|d| matches!(d, Declaration::Hold(h) if h == "worker")));
            }
            other => panic!("expected Block, got {other:?}"),
        }
        // Declarations: save *, ignore death, two variables, the local
        // event, the priority rule.
        assert!(pool
            .declarations
            .iter()
            .any(|d| matches!(d, Declaration::Save(v) if v == &vec!["*".to_string()])));
        assert!(pool.declarations.iter().any(|d| matches!(
            d,
            Declaration::Priority { higher, lower }
                if higher == "create_worker" && lower == "rendezvous"
        )));
        let vars: Vec<&String> = pool
            .declarations
            .iter()
            .filter_map(|d| match d {
                Declaration::Process { name, ctor, .. } if ctor == "variable" => Some(name),
                _ => None,
            })
            .collect();
        assert_eq!(vars, vec!["now", "t"]);
    }

    #[test]
    fn parses_paper_mainprog() {
        let prog = parse_program(MAINPROG_SOURCE).unwrap();
        match prog.manifold("Worker").unwrap() {
            Item::Manifold { atomic, params, .. } => {
                assert!(atomic);
                assert_eq!(params.len(), 1);
            }
            _ => unreachable!(),
        }
        match prog.manifold("Master").unwrap() {
            Item::Manifold {
                atomic,
                ports,
                atomic_events,
                ..
            } => {
                assert!(atomic);
                assert_eq!(ports.len(), 4);
                assert!(ports.iter().any(|p| p.name == "dataport" && p.is_input));
                assert_eq!(
                    atomic_events,
                    &vec![
                        "create_pool".to_string(),
                        "create_worker".into(),
                        "rendezvous".into(),
                        "a_rendezvous".into(),
                        "finished".into()
                    ]
                );
            }
            _ => unreachable!(),
        }
        match prog.manifold("Main").unwrap() {
            Item::Manifold { body: Some(b), .. } => {
                // begin: ProtocolMW(Master(argv), Worker).
                match &b.state("begin").unwrap().body {
                    Action::Call { name, args } => {
                        assert_eq!(name, "ProtocolMW");
                        assert_eq!(args.len(), 2);
                        assert!(matches!(&args[0], Expr::Call { name, .. } if name == "Master"));
                        assert_eq!(args[1], Expr::Var("Worker".into()));
                    }
                    other => panic!("expected Call, got {other:?}"),
                }
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn reports_error_with_line() {
        let err = parse_program("manner F() { begin halt. }").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }

    #[test]
    fn idle_macro_becomes_terminated_void() {
        let src = "#define IDLE terminated (void)\nmanner F() { begin: (preemptall, IDLE). }";
        let prog = parse_program(src).unwrap();
        let (_, body, _) = prog.manner("F").unwrap();
        assert_eq!(
            body.state("begin").unwrap().body,
            Action::Group(vec![Action::PreemptAll, Action::Terminated("void".into())])
        );
    }
}
