//! The executor seam: everything shared between the tree-walking
//! interpreter and the compiled state-machine VM.
//!
//! The two executors differ only in *how* they step a manner — the
//! [`Interp`] walks the AST, the [`Vm`] steps pre-compiled IR — while the
//! value model ([`Value`]), the host interface ([`AtomicFactory`] plus the
//! typed `expect_*_arg` helpers), the trace attribution, and the structural
//! checks are shared verbatim. [`CoordExecutor`] is the common trait;
//! [`CoordExec`] is the user-facing selector (`--coord interp|compiled`,
//! compiled by default); [`Mc`] bundles a parsed program with its compiled
//! form so either executor can be constructed from one artifact.

use std::rc::Rc;
use std::str::FromStr;

use crate::builtin::Variable;
use crate::coord::Coord;
use crate::error::MfResult;
use crate::ident::Name;
use crate::lang::ast::Program;
use crate::lang::compile::{compile, CompiledProgram};
use crate::lang::error::{LangError, LangErrorKind};
use crate::lang::interp::Interp;
use crate::lang::parse::parse_program;
use crate::lang::vm::Vm;
use crate::process::ProcessRef;

/// Host-supplied constructor for an atomic manifold: receives the
/// coordinator and the (resolved) constructor arguments, returns a created
/// (not yet activated) process.
pub type AtomicFactory = Rc<dyn Fn(&Coord, &[Value]) -> MfResult<ProcessRef>>;

/// A runtime value bound to a MANIFOLD name.
#[derive(Clone)]
pub enum Value {
    /// A process instance.
    Process(ProcessRef),
    /// A `variable` instance.
    Variable(Variable),
    /// An event name.
    Event(Name),
    /// A manifold definition (atomic factory).
    Manifold(AtomicFactory),
    /// An integer.
    Int(i64),
}

impl Value {
    /// The kind of this value, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Process(_) => "process",
            Value::Variable(_) => "variable",
            Value::Event(_) => "event",
            Value::Manifold(_) => "manifold",
            Value::Int(_) => "int",
        }
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Process(p) => write!(f, "Process({p:?})"),
            Value::Variable(_) => write!(f, "Variable"),
            Value::Event(e) => write!(f, "Event({e})"),
            Value::Manifold(_) => write!(f, "Manifold"),
            Value::Int(v) => write!(f, "Int({v})"),
        }
    }
}

fn bad_arg(args: &[Value], index: usize, expected: &'static str) -> LangError {
    LangError::new(LangErrorKind::BadArgument {
        index,
        expected,
        found: args.get(index).map(Value::kind).unwrap_or("nothing"),
    })
}

/// Typed access to an [`AtomicFactory`] argument: the event at `index`, or
/// a [`LangError`] the runtime re-attributes to the `process … is …`
/// declaration that invoked the factory (instead of the historical
/// `panic!("worker factory expected an event")`).
pub fn expect_event_arg(args: &[Value], index: usize) -> Result<Name, LangError> {
    match args.get(index) {
        Some(Value::Event(e)) => Ok(e.clone()),
        _ => Err(bad_arg(args, index, "event")),
    }
}

/// Typed access to an [`AtomicFactory`] argument: the process at `index`.
pub fn expect_process_arg(args: &[Value], index: usize) -> Result<ProcessRef, LangError> {
    match args.get(index) {
        Some(Value::Process(p)) => Ok(p.clone()),
        Some(Value::Variable(v)) => Ok(v.process().clone()),
        _ => Err(bad_arg(args, index, "process")),
    }
}

/// Typed access to an [`AtomicFactory`] argument: the integer at `index`.
pub fn expect_int_arg(args: &[Value], index: usize) -> Result<i64, LangError> {
    match args.get(index) {
        Some(Value::Int(v)) => Ok(*v),
        Some(Value::Variable(v)) => Ok(v.get_int()),
        _ => Err(bad_arg(args, index, "int")),
    }
}

/// What both executors expose to the host: run a manner against a live
/// coordinator. `check`, trace attribution, and the [`AtomicFactory`]
/// plumbing sit above/below this seam and are shared verbatim.
pub trait CoordExecutor {
    /// Call a manner by name with the given arguments.
    fn call_manner(&self, coord: &Coord, name: &str, args: Vec<Value>) -> MfResult<()>;

    /// Short name of the executor ("interp" / "compiled"), for reports.
    fn kind(&self) -> CoordExec;
}

/// Executor selector: which engine runs coordinator specs.
///
/// The compiled VM is the default — it is bit-identical to the interpreter
/// (enforced by differential tests) and keeps coordination overhead within
/// a small factor of the hand-written native protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoordExec {
    /// Tree-walk the AST (the original `lang::interp` path).
    Interp,
    /// Step compiled state-machine IR (`lang::compile` + `lang::vm`).
    #[default]
    Compiled,
}

impl CoordExec {
    /// Both executors, in comparison order (interp first, then compiled).
    pub const ALL: [CoordExec; 2] = [CoordExec::Interp, CoordExec::Compiled];

    /// The selector's command-line spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CoordExec::Interp => "interp",
            CoordExec::Compiled => "compiled",
        }
    }
}

impl std::fmt::Display for CoordExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CoordExec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" | "interpreter" | "tree" => Ok(CoordExec::Interp),
            "compiled" | "vm" => Ok(CoordExec::Compiled),
            other => Err(format!(
                "unknown coordinator executor {other:?} (expected interp or compiled)"
            )),
        }
    }
}

/// The whole `Mc` compiler as one artifact: a parsed [`Program`] plus its
/// compiled [`CompiledProgram`], from which either executor can be built.
pub struct Mc {
    program: Program,
    compiled: CompiledProgram,
}

impl Mc {
    /// Parse and compile MANIFOLD source.
    pub fn from_source(source: &str) -> MfResult<Mc> {
        Self::from_program(parse_program(source)?)
    }

    /// Compile an already-parsed program.
    pub fn from_program(program: Program) -> MfResult<Mc> {
        let compiled = compile(&program)?;
        Ok(Mc { program, compiled })
    }

    /// The parsed AST.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The compiled state-machine IR.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// Build the selected executor. `source_name` labels MES trace records
    /// (identically for both executors).
    pub fn executor(&self, kind: CoordExec, source_name: &str) -> Executor<'_> {
        match kind {
            CoordExec::Interp => Executor::Interp(Interp::new(&self.program, source_name)),
            CoordExec::Compiled => Executor::Vm(Vm::new(&self.compiled, source_name)),
        }
    }
}

/// Either executor, behind one concrete type (avoids boxing in the common
/// "pick at startup" case).
pub enum Executor<'p> {
    /// The tree-walker.
    Interp(Interp<'p>),
    /// The IR-stepping VM.
    Vm(Vm<'p>),
}

impl CoordExecutor for Executor<'_> {
    fn call_manner(&self, coord: &Coord, name: &str, args: Vec<Value>) -> MfResult<()> {
        match self {
            Executor::Interp(i) => i.call_manner(coord, name, args),
            Executor::Vm(v) => v.call_manner(coord, name, args),
        }
    }

    fn kind(&self) -> CoordExec {
        match self {
            Executor::Interp(_) => CoordExec::Interp,
            Executor::Vm(_) => CoordExec::Compiled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_parses_and_defaults_to_compiled() {
        assert_eq!(CoordExec::default(), CoordExec::Compiled);
        assert_eq!("interp".parse::<CoordExec>().unwrap(), CoordExec::Interp);
        assert_eq!("vm".parse::<CoordExec>().unwrap(), CoordExec::Compiled);
        assert_eq!(
            "compiled".parse::<CoordExec>().unwrap(),
            CoordExec::Compiled
        );
        assert!("native".parse::<CoordExec>().is_err());
    }

    #[test]
    fn expect_helpers_diagnose_kind_and_index() {
        let args = vec![Value::Int(3)];
        let e = expect_event_arg(&args, 0).unwrap_err();
        assert!(matches!(
            e.kind,
            LangErrorKind::BadArgument {
                index: 0,
                expected: "event",
                found: "int"
            }
        ));
        let e = expect_process_arg(&args, 1).unwrap_err();
        assert!(matches!(
            e.kind,
            LangErrorKind::BadArgument {
                found: "nothing",
                ..
            }
        ));
        assert_eq!(expect_int_arg(&args, 0).unwrap(), 3);
    }

    #[test]
    fn mc_builds_both_executors_for_the_paper_source() {
        let mc = Mc::from_source(crate::lang::PROTOCOL_MW_SOURCE).unwrap();
        for kind in CoordExec::ALL {
            let exec = mc.executor(kind, "protocolMW.m");
            assert_eq!(exec.kind(), kind);
        }
    }
}
