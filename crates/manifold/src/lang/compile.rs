//! The back half of `Mc`: compile MANIFOLD ASTs to a flat state-machine IR.
//!
//! The tree-walking interpreter re-derives everything on every step: it
//! hashes identifier strings into per-frame maps, re-sorts wait labels,
//! rebuilds `Vec<EventPattern>` lists, and re-matches stream declarations
//! against chain endpoints. All of that is static — it depends only on the
//! source text — so this module hoists it to compile time:
//!
//! * **Numbered states** — every block becomes a [`CompiledBlock`] whose
//!   states are indexed; transitions resolve to state indices, not labels.
//! * **Event-dispatch tables** — the priority-ordered wait-pattern list of
//!   each block (`priority a > b` boosts, then appearance order) is built
//!   once as [`CompiledBlock::local_pats`], with a parallel
//!   [`CompiledBlock::local_targets`] table mapping the selected pattern
//!   index straight to the next state. The enclosing blocks' patterns
//!   ([`CompiledBlock::outer_pats`]) are static too, because a manner call
//!   resets the preemption context — so even `terminated(p)` waits reuse a
//!   precomputed prefix.
//! * **Interned identifiers** — every name becomes a [`Sym`] index into one
//!   program-wide table of [`Name`]s; runtime binding lookups compare `u32`s
//!   and never hash or allocate.
//! * **Pre-resolved opcodes** — declarations lower to [`DeclOp`]s, stream
//!   chains to [`ChainStep`]s with their dismantling type and default ports
//!   (`input`/`output`) already decided, and manner calls to indices.
//!
//! Compilation is *total* on anything the interpreter accepts: conditions
//! the interpreter only detects while running (an unknown constructor, a
//! missing `begin`, a bad stream type) lower to opcodes that fail at the
//! same execution point with the same [`LangError`] — never at compile
//! time. That is what makes the differential interpreter-vs-VM tests
//! meaningful.
//!
//! [`disassemble`](CompiledProgram::disassemble) renders the IR in a
//! stable textual form; the committed snapshot for `protocolMW.m`
//! documents the state machine the paper implies.

use std::collections::HashMap;

use crate::error::MfResult;
use crate::event::EventPattern;
use crate::ident::Name;
use crate::lang::ast::*;
use crate::stream::StreamType;

/// An interned identifier: an index into [`CompiledProgram::name`]'s table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sym(pub u32);

/// A whole compiled program: symbol table, manners, and the block arena.
pub struct CompiledProgram {
    names: Vec<Name>,
    /// Compiled manners, in source order.
    pub manners: Vec<CompiledManner>,
    /// All blocks (manner bodies and nested blocks), arena-indexed.
    pub blocks: Vec<CompiledBlock>,
}

/// A compiled manner: parameter symbols plus its root block.
pub struct CompiledManner {
    /// The manner's name.
    pub name: Name,
    /// Whether it was declared `export`.
    pub export: bool,
    /// Parameter binding symbols, in order.
    pub params: Vec<Sym>,
    /// Root block index into [`CompiledProgram::blocks`].
    pub block: usize,
}

/// A compiled block: declaration opcodes, numbered states, and the
/// precomputed event-dispatch tables.
pub struct CompiledBlock {
    /// Declaration opcodes, in source order.
    pub decls: Vec<DeclOp>,
    /// Numbered states, in source order.
    pub states: Vec<CompiledState>,
    /// Index of the `begin` state (None lowers to a runtime error, exactly
    /// when the interpreter would report it).
    pub begin: Option<usize>,
    /// Priority-ordered wait patterns over this block's own labels.
    pub local_pats: Vec<EventPattern>,
    /// `local_pats[i]` selected → transition to state `local_targets[i]`.
    pub local_targets: Vec<usize>,
    /// Wait patterns of the enclosing blocks (nearest first); selecting one
    /// exits this block with a preemption.
    pub outer_pats: Vec<EventPattern>,
    /// `local_pats` ++ `outer_pats`: the prefix of every `terminated`/IDLE
    /// wait in this block.
    pub all_pats: Vec<EventPattern>,
    /// Events purged on block exit (`ignore e.`).
    pub ignores: Vec<Name>,
}

/// One numbered state.
pub struct CompiledState {
    /// The event label.
    pub label: Name,
    /// Source line of the label (MES records and diagnostics attribute to
    /// it, exactly as the interpreter does).
    pub line: u32,
    /// The compiled body.
    pub body: Op,
}

/// Compiled declaration opcodes (run once, at block entry, in order).
pub enum DeclOp {
    /// `event e.` — bind `e` to itself as an event value.
    Event {
        /// Binding symbol.
        sym: Sym,
    },
    /// `process v is variable(init).` — spawn a built-in variable.
    Variable {
        /// Binding symbol.
        sym: Sym,
        /// Initialiser (defaults to 0).
        init: Option<CExpr>,
        /// Declaration line.
        line: u32,
    },
    /// `process p is Ctor(args).` — invoke a manifold factory in scope.
    Process {
        /// Binding symbol.
        sym: Sym,
        /// Constructor symbol (resolved in the dynamic scope at runtime).
        ctor: Sym,
        /// Argument expressions.
        args: Vec<CExpr>,
        /// Declaration line.
        line: u32,
    },
    /// `stream XY …` with an unknown type: fails at block entry, at the
    /// same point the interpreter reports it.
    InvalidStream {
        /// The unknown type keyword.
        ty: String,
    },
}

/// One pre-resolved segment of a stream chain (`a -> b.port`).
pub struct ChainStep {
    /// Dismantling type (from a matching `stream TY …` declaration of the
    /// same block, else the default `BK`).
    pub ty: StreamType,
    /// `&from`: deliver the process *reference* as a one-shot unit.
    pub from_ref: bool,
    /// Source process symbol.
    pub from: Sym,
    /// Source port (default `output` already applied).
    pub from_port: Sym,
    /// Sink process symbol.
    pub to: Sym,
    /// Sink port (default `input` already applied).
    pub to_port: Sym,
}

/// Compiled actions.
pub enum Op {
    /// Sequential/grouped composition (the runtime semantics coincide).
    Seq(Vec<Op>),
    /// Enter a nested block.
    Block(usize),
    /// Build a stream chain.
    Chain {
        /// Pre-resolved segments.
        steps: Vec<ChainStep>,
        /// Source line (for resolution diagnostics).
        line: u32,
    },
    /// Call a manner. `manner` is `None` when the program defines no such
    /// manner — executing the op reports it, as the interpreter does.
    Call {
        /// Resolved manner index.
        manner: Option<usize>,
        /// The callee symbol (for diagnostics).
        name: Sym,
        /// Argument expressions.
        args: Vec<CExpr>,
        /// Source line.
        line: u32,
    },
    /// `post (e)`.
    Post(Sym),
    /// `raise (e)`.
    Raise(Sym),
    /// `halt`.
    Halt,
    /// `preemptall` (a no-op in this subset, as in the interpreter).
    PreemptAll,
    /// `MES("…")`.
    Mes {
        /// The message.
        msg: String,
        /// Source line (trace attribution).
        line: u32,
    },
    /// `terminated (void)` — wait until an event preempts the state.
    Idle,
    /// `terminated (p)` — watch `p`, wait for its termination or a
    /// preempting event.
    AwaitTermination {
        /// The process symbol.
        proc: Sym,
        /// Source line.
        line: u32,
    },
    /// `name = expr`.
    Assign {
        /// The variable symbol.
        var: Sym,
        /// The value expression.
        value: CExpr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) then a else b`.
    If {
        /// Left operand.
        lhs: CExpr,
        /// `<`, `>`, or `=`.
        op: char,
        /// Right operand.
        rhs: CExpr,
        /// Then-branch.
        then: Box<Op>,
        /// Else-branch.
        otherwise: Option<Box<Op>>,
        /// Source line.
        line: u32,
    },
    /// Mentions (and anything else with no runtime effect).
    Nop,
}

/// Compiled expressions.
pub enum CExpr {
    /// Integer literal.
    Int(i64),
    /// Name lookup.
    Var(Sym),
    /// `&name` (same lookup; the reference-ness is carried by the use).
    Ref(Sym),
    /// `a + b` / `a - b`.
    Binary {
        /// Operator.
        op: char,
        /// Left side.
        lhs: Box<CExpr>,
        /// Right side.
        rhs: Box<CExpr>,
    },
    /// Nested constructor call: unsupported, fails on evaluation (exactly
    /// like the interpreter).
    Call,
}

impl CompiledProgram {
    /// The interned [`Name`] behind a symbol.
    pub fn name(&self, sym: Sym) -> &Name {
        &self.names[sym.0 as usize]
    }

    /// Number of interned symbols.
    pub fn symbol_count(&self) -> usize {
        self.names.len()
    }

    /// Find a compiled manner by name.
    pub fn manner(&self, name: &str) -> Option<&CompiledManner> {
        self.manners.iter().find(|m| m.name.as_str() == name)
    }

    /// Render the IR in a stable, human-readable text form (the committed
    /// snapshot for `protocolMW.m` pins this down).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let p = |s: &mut String, line: &str| {
            s.push_str(line);
            s.push('\n');
        };
        p(
            &mut out,
            &format!(
                "; compiled MANIFOLD IR — {} manner(s), {} block(s), {} symbol(s)",
                self.manners.len(),
                self.blocks.len(),
                self.names.len()
            ),
        );
        out.push('\n');
        p(&mut out, "symbols:");
        for (i, n) in self.names.iter().enumerate() {
            p(&mut out, &format!("  %{i} = {n}"));
        }
        for m in &self.manners {
            out.push('\n');
            let params: Vec<String> = m.params.iter().map(|s| self.sym_str(*s)).collect();
            p(
                &mut out,
                &format!(
                    "manner {}({}){} -> block {}",
                    m.name,
                    params.join(", "),
                    if m.export { " export" } else { "" },
                    m.block
                ),
            );
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            out.push('\n');
            p(&mut out, &format!("block {bi}:"));
            for d in &b.decls {
                p(&mut out, &format!("  {}", self.decl_str(d)));
            }
            if !b.ignores.is_empty() {
                let names: Vec<String> = b.ignores.iter().map(|n| n.to_string()).collect();
                p(&mut out, &format!("  ignore [{}]", names.join(", ")));
            }
            let waits: Vec<String> = b
                .local_pats
                .iter()
                .zip(&b.local_targets)
                .map(|(pat, tgt)| format!("{} -> state {tgt}", pat_str(pat)))
                .collect();
            p(&mut out, &format!("  dispatch [{}]", waits.join(", ")));
            let outer: Vec<String> = b.outer_pats.iter().map(pat_str).collect();
            p(&mut out, &format!("  outer    [{}]", outer.join(", ")));
            match b.begin {
                Some(i) => p(&mut out, &format!("  begin    state {i}")),
                None => p(&mut out, "  begin    (missing: fails on entry)"),
            }
            for (si, st) in b.states.iter().enumerate() {
                p(
                    &mut out,
                    &format!("  state {si} '{}' @line {}:", st.label, st.line),
                );
                self.op_str(&st.body, 2, &mut out);
            }
        }
        out
    }

    fn sym_str(&self, s: Sym) -> String {
        format!("%{}:{}", s.0, self.names[s.0 as usize])
    }

    fn decl_str(&self, d: &DeclOp) -> String {
        match d {
            DeclOp::Event { sym } => format!("event    {}", self.sym_str(*sym)),
            DeclOp::Variable { sym, init, line } => format!(
                "variable {} = {} ; line {line}",
                self.sym_str(*sym),
                match init {
                    Some(e) => self.expr_str(e),
                    None => "0".into(),
                }
            ),
            DeclOp::Process {
                sym,
                ctor,
                args,
                line,
            } => {
                let a: Vec<String> = args.iter().map(|e| self.expr_str(e)).collect();
                format!(
                    "process  {} = {}({}) ; line {line}",
                    self.sym_str(*sym),
                    self.sym_str(*ctor),
                    a.join(", ")
                )
            }
            DeclOp::InvalidStream { ty } => format!("!invalid-stream-type {ty}"),
        }
    }

    fn expr_str(&self, e: &CExpr) -> String {
        match e {
            CExpr::Int(v) => v.to_string(),
            CExpr::Var(s) => self.sym_str(*s),
            CExpr::Ref(s) => format!("&{}", self.sym_str(*s)),
            CExpr::Binary { op, lhs, rhs } => {
                format!("({} {op} {})", self.expr_str(lhs), self.expr_str(rhs))
            }
            CExpr::Call => "!nested-call".into(),
        }
    }

    fn op_str(&self, op: &Op, depth: usize, out: &mut String) {
        fn ln(out: &mut String, pad: &str, s: &str) {
            out.push_str(pad);
            out.push_str(s);
            out.push('\n');
        }
        let pad = "  ".repeat(depth);
        let line = |out: &mut String, s: String| ln(out, &pad, &s);
        match op {
            Op::Seq(parts) => {
                line(out, "seq".into());
                for part in parts {
                    self.op_str(part, depth + 1, out);
                }
            }
            Op::Block(b) => line(out, format!("enter block {b}")),
            Op::Chain { steps, line: l } => {
                line(out, format!("chain ; line {l}"));
                for s in steps {
                    let from = if s.from_ref {
                        format!("&{}", self.sym_str(s.from))
                    } else {
                        format!(
                            "{}.{}",
                            self.sym_str(s.from),
                            self.names[s.from_port.0 as usize]
                        )
                    };
                    out.push_str(&pad);
                    out.push_str(&format!(
                        "  {:?} {from} -> {}.{}\n",
                        s.ty,
                        self.sym_str(s.to),
                        self.names[s.to_port.0 as usize]
                    ));
                }
            }
            Op::Call {
                manner,
                name,
                args,
                line: l,
            } => {
                let a: Vec<String> = args.iter().map(|e| self.expr_str(e)).collect();
                let target = match manner {
                    Some(i) => format!("manner {i}"),
                    None => "!unknown".into(),
                };
                line(
                    out,
                    format!(
                        "call {} ({}) = {target} ; line {l}",
                        self.sym_str(*name),
                        a.join(", ")
                    ),
                );
            }
            Op::Post(s) => line(out, format!("post {}", self.sym_str(*s))),
            Op::Raise(s) => line(out, format!("raise {}", self.sym_str(*s))),
            Op::Halt => line(out, "halt".into()),
            Op::PreemptAll => line(out, "preemptall".into()),
            Op::Mes { msg, line: l } => line(out, format!("mes {msg:?} ; line {l}")),
            Op::Idle => line(out, "idle".into()),
            Op::AwaitTermination { proc, line: l } => line(
                out,
                format!("await-termination {} ; line {l}", self.sym_str(*proc)),
            ),
            Op::Assign {
                var,
                value,
                line: l,
            } => line(
                out,
                format!(
                    "assign {} = {} ; line {l}",
                    self.sym_str(*var),
                    self.expr_str(value)
                ),
            ),
            Op::If {
                lhs,
                op,
                rhs,
                then,
                otherwise,
                line: l,
            } => {
                line(
                    out,
                    format!(
                        "if {} {op} {} ; line {l}",
                        self.expr_str(lhs),
                        self.expr_str(rhs)
                    ),
                );
                line(out, "then".into());
                self.op_str(then, depth + 1, out);
                if let Some(o) = otherwise {
                    line(out, "else".into());
                    self.op_str(o, depth + 1, out);
                }
            }
            Op::Nop => line(out, "nop".into()),
        }
    }
}

fn pat_str(p: &EventPattern) -> String {
    match p {
        EventPattern::Named(n) => n.to_string(),
        other => format!("{other:?}"),
    }
}

/// Compile a parsed program to IR. Total on everything the interpreter
/// accepts (see module docs); the `Result` is for future front-end limits.
///
/// Every callable coordinator body becomes a [`CompiledManner`]: `manner`
/// items first, then manifolds declared with coordinator blocks (like
/// `mainprog.m`'s `Main`) — the same order and shadowing rule as
/// [`Program::coordinator`], so call resolution matches the interpreter.
pub fn compile(program: &Program) -> MfResult<CompiledProgram> {
    // (name, params, body, export), in the interpreter's resolution order.
    let callables: Vec<(&String, &Vec<Param>, &Block, bool)> = program
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Manner {
                export,
                name,
                params,
                body,
            } => Some((name, params, body, *export)),
            _ => None,
        })
        .chain(program.items.iter().filter_map(|i| match i {
            Item::Manifold {
                name,
                params,
                body: Some(b),
                ..
            } => Some((name, params, b, false)),
            _ => None,
        }))
        .collect();
    let mut c = Compiler {
        names: Vec::new(),
        map: HashMap::new(),
        blocks: Vec::new(),
        manner_names: callables.iter().map(|(n, ..)| (*n).clone()).collect(),
    };
    let mut manners = Vec::new();
    for (name, params, body, export) in &callables {
        let params: Vec<Sym> = params.iter().map(|p| c.intern(param_name(p))).collect();
        let block = c.compile_block(body, &[]);
        manners.push(CompiledManner {
            name: Name::new(name),
            export: *export,
            params,
            block,
        });
    }
    Ok(CompiledProgram {
        names: c.names,
        manners,
        blocks: c.blocks,
    })
}

fn param_name(p: &Param) -> &str {
    match p {
        Param::Process { name, .. } => name,
        Param::Manifold { name, .. } => name,
        Param::Event(name) => name,
        Param::Port { name, .. } => name,
    }
}

struct Compiler {
    names: Vec<Name>,
    map: HashMap<String, u32>,
    blocks: Vec<CompiledBlock>,
    manner_names: Vec<String>,
}

impl Compiler {
    fn intern(&mut self, s: &str) -> Sym {
        if let Some(&i) = self.map.get(s) {
            return Sym(i);
        }
        let i = self.names.len() as u32;
        self.names.push(Name::new(s));
        self.map.insert(s.to_string(), i);
        Sym(i)
    }

    /// Compile one block. `outer` is the static chain of enclosing wait
    /// labels (nearest block first, already priority-ordered), empty at a
    /// manner boundary.
    fn compile_block(&mut self, block: &Block, outer: &[Name]) -> usize {
        let mut decls = Vec::new();
        let mut priorities: Vec<(String, String)> = Vec::new();
        let mut ignores: Vec<Name> = Vec::new();
        let mut stream_decls: Vec<(StreamType, Endpoint, Endpoint)> = Vec::new();

        for d in &block.declarations {
            match d {
                Declaration::Save(_) | Declaration::Hold(_) | Declaration::Internal => {}
                Declaration::Ignore(names) => ignores.extend(names.iter().map(Name::new)),
                Declaration::Event(names) => {
                    for n in names {
                        let sym = self.intern(n);
                        decls.push(DeclOp::Event { sym });
                    }
                }
                Declaration::Priority { higher, lower } => {
                    priorities.push((higher.clone(), lower.clone()));
                }
                Declaration::Process {
                    name,
                    ctor,
                    args,
                    line,
                    ..
                } => {
                    let sym = self.intern(name);
                    if ctor == "variable" {
                        decls.push(DeclOp::Variable {
                            sym,
                            init: args.first().map(|e| self.compile_expr(e)),
                            line: *line,
                        });
                    } else {
                        let ctor = self.intern(ctor);
                        let args = args.iter().map(|e| self.compile_expr(e)).collect();
                        decls.push(DeclOp::Process {
                            sym,
                            ctor,
                            args,
                            line: *line,
                        });
                    }
                }
                Declaration::Stream { ty, from, to } => match parse_stream_type(ty) {
                    Some(sty) => stream_decls.push((sty, from.clone(), to.clone())),
                    None => decls.push(DeclOp::InvalidStream { ty: ty.clone() }),
                },
            }
        }

        // The event-dispatch table: local labels priority-sorted exactly as
        // the interpreter sorts them (explicit `priority … >` boosts ahead,
        // then appearance order; the sort is stable).
        let local_labels: Vec<Name> = block.states.iter().map(|s| Name::new(&s.label)).collect();
        let mut ordered = local_labels;
        ordered.sort_by_key(|n| {
            let base = block
                .states
                .iter()
                .position(|s| s.label == n.as_str())
                .unwrap_or(usize::MAX);
            let boost = priorities
                .iter()
                .position(|(hi, _)| hi == n.as_str())
                .map(|_| 0usize)
                .unwrap_or(1);
            (boost, base)
        });
        let local_targets: Vec<usize> = ordered
            .iter()
            .map(|n| {
                block
                    .states
                    .iter()
                    .position(|s| s.label == n.as_str())
                    .expect("ordered labels come from states")
            })
            .collect();
        let local_pats: Vec<EventPattern> = ordered
            .iter()
            .map(|n| EventPattern::Named(n.clone()))
            .collect();
        let outer_pats: Vec<EventPattern> = outer
            .iter()
            .map(|n| EventPattern::Named(n.clone()))
            .collect();
        let mut all_pats = local_pats.clone();
        all_pats.extend_from_slice(&outer_pats);

        // Nested blocks see this block's ordered labels, then our outers.
        let mut child_outer = ordered.clone();
        child_outer.extend_from_slice(outer);

        let begin = block.states.iter().position(|s| s.label == "begin");
        let states: Vec<CompiledState> = block
            .states
            .iter()
            .map(|s| CompiledState {
                label: Name::new(&s.label),
                line: s.line,
                body: self.compile_action(&s.body, &stream_decls, &child_outer, s.line),
            })
            .collect();

        self.blocks.push(CompiledBlock {
            decls,
            states,
            begin,
            local_pats,
            local_targets,
            outer_pats,
            all_pats,
            ignores,
        });
        self.blocks.len() - 1
    }

    fn compile_action(
        &mut self,
        action: &Action,
        stream_decls: &[(StreamType, Endpoint, Endpoint)],
        child_outer: &[Name],
        line: u32,
    ) -> Op {
        match action {
            Action::Seq(parts) | Action::Group(parts) => Op::Seq(
                parts
                    .iter()
                    .map(|p| self.compile_action(p, stream_decls, child_outer, line))
                    .collect(),
            ),
            Action::Block(b) => Op::Block(self.compile_block(b, child_outer)),
            Action::Chain(endpoints) => {
                let steps = endpoints
                    .windows(2)
                    .map(|pair| {
                        let (from, to) = (&pair[0], &pair[1]);
                        let ty = stream_decls
                            .iter()
                            .find(|(_, f, t)| endpoints_match(f, from) && endpoints_match(t, to))
                            .map(|(ty, _, _)| *ty)
                            .unwrap_or(StreamType::BK);
                        ChainStep {
                            ty,
                            from_ref: from.is_ref,
                            from: self.intern(&from.process),
                            from_port: self.intern(from.port.as_deref().unwrap_or("output")),
                            to: self.intern(&to.process),
                            to_port: self.intern(to.port.as_deref().unwrap_or("input")),
                        }
                    })
                    .collect();
                Op::Chain { steps, line }
            }
            Action::Call { name, args } => Op::Call {
                manner: self.manner_names.iter().position(|m| m == name),
                name: self.intern(name),
                args: args.iter().map(|e| self.compile_expr(e)).collect(),
                line,
            },
            Action::Post(e) => Op::Post(self.intern(e)),
            Action::Raise(e) => Op::Raise(self.intern(e)),
            Action::Halt => Op::Halt,
            Action::PreemptAll => Op::PreemptAll,
            Action::Mes(msg) => Op::Mes {
                msg: msg.clone(),
                line,
            },
            Action::Terminated(pname) if pname == "void" => Op::Idle,
            Action::Terminated(pname) => Op::AwaitTermination {
                proc: self.intern(pname),
                line,
            },
            Action::Assign { name, value } => Op::Assign {
                var: self.intern(name),
                value: self.compile_expr(value),
                line,
            },
            Action::If {
                cond,
                then,
                otherwise,
            } => Op::If {
                lhs: self.compile_expr(&cond.lhs),
                op: cond.op,
                rhs: self.compile_expr(&cond.rhs),
                then: Box::new(self.compile_action(then, stream_decls, child_outer, line)),
                otherwise: otherwise
                    .as_ref()
                    .map(|o| Box::new(self.compile_action(o, stream_decls, child_outer, line))),
                line,
            },
            Action::Mention(_) => Op::Nop,
        }
    }

    fn compile_expr(&mut self, e: &Expr) -> CExpr {
        match e {
            Expr::Int(v) => CExpr::Int(*v),
            Expr::Var(name) => CExpr::Var(self.intern(name)),
            Expr::Ref(name) => CExpr::Ref(self.intern(name)),
            Expr::Binary { op, lhs, rhs } => CExpr::Binary {
                op: *op,
                lhs: Box::new(self.compile_expr(lhs)),
                rhs: Box::new(self.compile_expr(rhs)),
            },
            Expr::Call { .. } => CExpr::Call,
        }
    }
}

pub(crate) fn endpoints_match(decl: &Endpoint, used: &Endpoint) -> bool {
    decl.process == used.process
        && (decl.port.is_none() || decl.port == used.port)
        && decl.is_ref == used.is_ref
}

pub(crate) fn parse_stream_type(s: &str) -> Option<StreamType> {
    Some(match s {
        "BK" => StreamType::BK,
        "KK" => StreamType::KK,
        "BB" => StreamType::BB,
        "KB" => StreamType::KB,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse::parse_program;
    use crate::lang::{MAINPROG_SOURCE, PROTOCOL_MW_SOURCE};

    #[test]
    fn compiles_protocol_mw_with_expected_shape() {
        let prog = parse_program(PROTOCOL_MW_SOURCE).unwrap();
        let ir = compile(&prog).unwrap();
        assert_eq!(ir.manners.len(), 2);
        let pool = ir.manner("Create_Worker_Pool").unwrap();
        let root = &ir.blocks[pool.block];
        // begin, create_worker, rendezvous, end — with create_worker
        // boosted ahead by `priority create_worker > rendezvous.`
        assert_eq!(root.states.len(), 4);
        assert_eq!(
            root.local_pats.first(),
            Some(&EventPattern::Named(Name::new("create_worker")))
        );
        assert_eq!(root.local_targets.first(), Some(&1));
        assert_eq!(root.begin, Some(0));
        // The nested create_worker block resolved `stream KK worker ->
        // master.dataport` into its chain.
        let nested: Vec<&CompiledBlock> = ir
            .blocks
            .iter()
            .filter(|b| !b.outer_pats.is_empty())
            .collect();
        assert!(!nested.is_empty());
        let has_kk = ir
            .blocks
            .iter()
            .any(|b| b.states.iter().any(|s| op_has_kk(&s.body)));
        assert!(has_kk, "KK stream type not resolved into any chain");
    }

    fn op_has_kk(op: &Op) -> bool {
        match op {
            Op::Seq(parts) => parts.iter().any(op_has_kk),
            Op::Chain { steps, .. } => steps.iter().any(|s| s.ty == StreamType::KK),
            Op::If {
                then, otherwise, ..
            } => op_has_kk(then) || otherwise.as_deref().map(op_has_kk).unwrap_or(false),
            _ => false,
        }
    }

    #[test]
    fn compiles_mainprog() {
        let prog = parse_program(MAINPROG_SOURCE).unwrap();
        let ir = compile(&prog).unwrap();
        assert!(ir.symbol_count() > 0);
        assert!(!ir.blocks.is_empty());
    }

    #[test]
    fn compilation_is_total_on_runtime_only_errors() {
        // Unknown ctor, unknown manner call, missing begin, bad stream
        // type: all must *compile* (they fail at the same execution point
        // as the interpreter).
        let src = "manner Odd() {\
            stream XX a -> b.inport.\
            process p is NotBound(1).\
            begin: Missing(); terminated(q).\
        }\
        manner NoBegin() { other: halt. }";
        let prog = parse_program(src).unwrap();
        let ir = compile(&prog).unwrap();
        let odd = ir.manner("Odd").unwrap();
        assert!(matches!(
            ir.blocks[odd.block].decls[0],
            DeclOp::InvalidStream { .. }
        ));
        let nb = ir.manner("NoBegin").unwrap();
        assert_eq!(ir.blocks[nb.block].begin, None);
    }

    #[test]
    fn disassembly_is_deterministic() {
        let prog = parse_program(PROTOCOL_MW_SOURCE).unwrap();
        let a = compile(&prog).unwrap().disassemble();
        let b = compile(&prog).unwrap().disassemble();
        assert_eq!(a, b);
        assert!(a.contains("manner ProtocolMW"));
        assert!(a.contains("dispatch ["));
    }
}
