//! Abstract syntax of the MANIFOLD subset.

/// A whole source file.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Top-level declarations in order.
    pub items: Vec<Item>,
    /// Files this source `#include`d.
    pub includes: Vec<String>,
    /// `//pragma` lines.
    pub pragmas: Vec<String>,
}

/// A top-level declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// `manner Name(params) { block }` — a parameterized coordination
    /// subprogram; `export` makes it visible to other compilation units.
    Manner {
        /// Exported?
        export: bool,
        /// Manner name.
        name: String,
        /// Formal parameters.
        params: Vec<Param>,
        /// The body.
        body: Block,
    },
    /// `manifold Name(params) …` — a process definition; `atomic` bodies
    /// are external (the C wrappers), otherwise a coordinator block.
    Manifold {
        /// Manifold name.
        name: String,
        /// Formal parameters.
        params: Vec<Param>,
        /// Declared ports (beyond the standard ones).
        ports: Vec<PortDecl>,
        /// Atomic (externally implemented)?
        atomic: bool,
        /// Events an atomic manifold exchanges (`{internal. event …}`).
        atomic_events: Vec<String>,
        /// Coordinator body, when not atomic.
        body: Option<Block>,
    },
}

/// A formal parameter.
#[derive(Clone, Debug, PartialEq)]
pub enum Param {
    /// `process name <inports / outports>`.
    Process {
        /// Parameter name.
        name: String,
        /// Required input ports.
        inputs: Vec<String>,
        /// Required output ports.
        outputs: Vec<String>,
    },
    /// `manifold Name(event, …)` — a process *definition* parameter.
    Manifold {
        /// Parameter name.
        name: String,
        /// Parameter kinds of the manifold (e.g. `event`).
        arg_kinds: Vec<String>,
    },
    /// `event name`.
    Event(String),
    /// `port in name` / `port out name`.
    Port {
        /// Direction: true = input.
        is_input: bool,
        /// Port name.
        name: String,
    },
}

/// A port declaration on a manifold header (`port in dataport.`).
#[derive(Clone, Debug, PartialEq)]
pub struct PortDecl {
    /// true = input port.
    pub is_input: bool,
    /// Port name.
    pub name: String,
}

/// A coordinator block: declarations followed by event-labelled states.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Block {
    /// Declarative statements.
    pub declarations: Vec<Declaration>,
    /// States in order.
    pub states: Vec<State>,
}

/// A block item (used during parsing).
#[derive(Clone, Debug, PartialEq)]
pub enum BlockItem {
    /// Declarative statement.
    Decl(Declaration),
    /// Event-labelled state.
    State(State),
}

/// Declarative statements of a block.
#[derive(Clone, Debug, PartialEq)]
pub enum Declaration {
    /// `save *.` or `save e1, e2.`
    Save(Vec<String>),
    /// `ignore e1, e2.`
    Ignore(Vec<String>),
    /// `event e1, e2.`
    Event(Vec<String>),
    /// `priority a > b.`
    Priority {
        /// Higher-priority event.
        higher: String,
        /// Lower-priority event.
        lower: String,
    },
    /// `auto? process name is Ctor(args).`
    Process {
        /// Auto-activated?
        auto: bool,
        /// Instance name.
        name: String,
        /// Constructor manifold.
        ctor: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Source line of the declaration (diagnostic attribution).
        line: u32,
    },
    /// `hold name.`
    Hold(String),
    /// `stream KK a -> b.c.` — a stream-type declaration for matching
    /// connections.
    Stream {
        /// Stream type keyword (`KK`, `BK`, `BB`, `KB`).
        ty: String,
        /// Source endpoint.
        from: Endpoint,
        /// Sink endpoint.
        to: Endpoint,
    },
    /// `internal.` (atomic manifold body marker).
    Internal,
}

/// One state: a label and its body.
#[derive(Clone, Debug, PartialEq)]
pub struct State {
    /// The event label (e.g. `begin`, `create_worker`).
    pub label: String,
    /// The body action.
    pub body: Action,
    /// Source line of the label.
    pub line: u32,
}

/// A stream endpoint: optionally-deref'd process name with optional port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Endpoint {
    /// `&name` — the *reference* to the process (a unit), not its port.
    pub is_ref: bool,
    /// Process name (or `self` port when `process` is empty — not used in
    /// the paper subset).
    pub process: String,
    /// Port name (`None` = default `input`/`output` by position).
    pub port: Option<String>,
}

/// Actions (state bodies and their pieces).
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// `a ; b` — sequential composition.
    Seq(Vec<Action>),
    /// `(a, b, …)` — simultaneous group.
    Group(Vec<Action>),
    /// A nested block (sub-states).
    Block(Block),
    /// `x -> y -> z` — a stream configuration chain.
    Chain(Vec<Endpoint>),
    /// `Name(args)` — a manner call or process-definition invocation.
    Call {
        /// Callee.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `post (e)`.
    Post(String),
    /// `raise (e)`.
    Raise(String),
    /// `halt`.
    Halt,
    /// `terminated (p)`.
    Terminated(String),
    /// `preemptall`.
    PreemptAll,
    /// `MES("…")`.
    Mes(String),
    /// `name = expr`.
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `if (cond) then a else b`.
    If {
        /// Condition.
        cond: Cond,
        /// Then-branch.
        then: Box<Action>,
        /// Else-branch.
        otherwise: Option<Box<Action>>,
    },
    /// A bare identifier (process/port mention, e.g. sensitivity).
    Mention(String),
}

/// Comparison conditions (`t < now`).
#[derive(Clone, Debug, PartialEq)]
pub struct Cond {
    /// Left side.
    pub lhs: Expr,
    /// `<`, `>`, or `=`.
    pub op: char,
    /// Right side.
    pub rhs: Expr,
}

/// Arithmetic / value expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable / process mention.
    Var(String),
    /// `&name` — a process reference.
    Ref(String),
    /// `a + b` / `a - b`.
    Binary {
        /// Operator.
        op: char,
        /// Left side.
        lhs: Box<Expr>,
        /// Right side.
        rhs: Box<Expr>,
    },
    /// Nested call, e.g. `Master(argv)` used as an argument.
    Call {
        /// Callee.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Block {
    /// The state with the given label, if present.
    pub fn state(&self, label: &str) -> Option<&State> {
        self.states.iter().find(|s| s.label == label)
    }

    /// Labels of all states, in order.
    pub fn state_labels(&self) -> Vec<&str> {
        self.states.iter().map(|s| s.label.as_str()).collect()
    }
}

impl Program {
    /// Find a manner by name.
    pub fn manner(&self, name: &str) -> Option<(&Vec<Param>, &Block, bool)> {
        self.items.iter().find_map(|i| match i {
            Item::Manner {
                name: n,
                params,
                body,
                export,
            } if n == name => Some((params, body, *export)),
            _ => None,
        })
    }

    /// Find a callable coordinator body by name: a manner, or — as in
    /// `mainprog.m`'s `Main` — a manifold declared with a coordinator
    /// block. Manners shadow manifolds of the same name.
    pub fn coordinator(&self, name: &str) -> Option<(&Vec<Param>, &Block, bool)> {
        self.manner(name).or_else(|| {
            self.items.iter().find_map(|i| match i {
                Item::Manifold {
                    name: n,
                    params,
                    body: Some(b),
                    ..
                } if n == name => Some((params, b, false)),
                _ => None,
            })
        })
    }

    /// Find a manifold by name.
    pub fn manifold(&self, name: &str) -> Option<&Item> {
        self.items.iter().find(|i| match i {
            Item::Manifold { name: n, .. } => n == name,
            _ => false,
        })
    }
}
