// mainprog.m

//pragma include "ResSourceCode.h"

#include "protocolMW.h"

manifold Worker(event) atomic.

manifold Master(port in p) port in input. port in dataport.
    port out output. port out error.
    atomic {internal. event create_pool, create_worker,
        rendezvous, a_rendezvous, finished}.

/***************************************************/
manifold Main(process argv)
{
    begin: ProtocolMW(Master(argv), Worker).
}
