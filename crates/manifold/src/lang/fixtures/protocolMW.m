// protocolMW.m

#include "MBL.h"

#include "rdid.h"

#include "protocolMW.h"

#define IDLE terminated (void)

/*******************************************************/
manner Create_Worker_Pool(
    process master <input, dataport / output, error>,
    manifold Worker(event) )
{
    save *.
    ignore death.

    auto process now is variable(0).
    auto process t is variable(0).

    event death_worker.

    priority create_worker > rendezvous.

    begin: (MES("begin"), preemptall, IDLE).

    create_worker: {
        hold worker.

        process worker is Worker(death_worker).

        stream KK worker -> master.dataport.

        begin: now = now + 1;
            (MES("create_worker: begin"),
             &worker -> master -> worker -> master.dataport, IDLE).
    }.

    rendezvous: {
        begin: (preemptall, IDLE).

        death_worker: t = t + 1;
            if (t < now) then (
                post (begin)
            ) else (
                post (end)
            ).
    }.

    end: (MES("rendezvous acknowledged"), raise(a_rendezvous)).
}

/*******************************************************/
export manner ProtocolMW(
    process master <input, dataport / output, error>,
    manifold Worker(event) )
{
    save *.

    begin: terminated(master).

    create_pool: Create_Worker_Pool(master, Worker); post (begin).

    finished: halt.
}
