//! Streams: asynchronous channels between ports, with MANIFOLD dismantling
//! semantics.
//!
//! A stream is an unbounded FIFO of [`Unit`]s with a *source* end (attached
//! to some process's output port) and a *sink* end (attached to some
//! process's input port). Streams are always created and attached by a
//! coordinator — never by the processes at their ends (exogenous
//! coordination).
//!
//! When the coordinator state that created a stream is preempted, the stream
//! is *dismantled* according to its [`StreamType`]:
//!
//! * `BK` (**B**reak source / **K**eep sink) — the default. The stream is
//!   disconnected from its producer, but the consumer keeps it and may still
//!   drain the units already buffered inside. This is what the paper relies
//!   on for most connections.
//! * `KK` (Keep / Keep) — the stream survives preemption entirely. The paper
//!   uses this (§4.2, line 32) for the `worker -> master.dataport` result
//!   stream, which must stay intact while the coordinator moves on to create
//!   the next worker.
//! * `BB` (Break / Break) — both ends disconnected; buffered units are lost.
//! * `KB` (Keep source / Break sink) — the producer keeps writing into the
//!   stream, but the consumer is disconnected.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::port::Port;
use crate::unit::Unit;

static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(1);

/// Dismantling behaviour of a stream upon preemption of the state that
/// created it. See the module docs for the meaning of each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StreamType {
    /// Break at source, keep at sink (MANIFOLD's default).
    #[default]
    BK,
    /// Keep both ends: the stream survives preemption.
    KK,
    /// Break both ends.
    BB,
    /// Keep source, break sink.
    KB,
}

struct StreamInner {
    queue: VecDeque<Unit>,
    src_open: bool,
    snk_open: bool,
    src_port: Option<Weak<Port>>,
    snk_port: Option<Weak<Port>>,
}

/// An asynchronous FIFO channel between an output port and an input port.
pub struct Stream {
    id: u64,
    ty: StreamType,
    inner: Mutex<StreamInner>,
}

impl Stream {
    /// Create a fresh, unattached stream of the given type.
    pub fn new(ty: StreamType) -> Arc<Stream> {
        Arc::new(Stream {
            id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            ty,
            inner: Mutex::new(StreamInner {
                queue: VecDeque::new(),
                src_open: true,
                snk_open: false,
                src_port: None,
                snk_port: None,
            }),
        })
    }

    /// Create a stream pre-loaded with units whose source is a constant (the
    /// MANIFOLD idiom `&worker -> master`: the unit is produced by the
    /// coordinator itself, not by a process port). The source end is closed
    /// immediately, so the sink sees the units and then a drained stream.
    pub fn preloaded(ty: StreamType, units: impl IntoIterator<Item = Unit>) -> Arc<Stream> {
        let s = Stream::new(ty);
        {
            let mut inner = s.inner.lock();
            inner.queue.extend(units);
            inner.src_open = false;
        }
        s
    }

    /// Unique id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The dismantling type.
    pub fn stream_type(&self) -> StreamType {
        self.ty
    }

    /// Append a unit at the source end and wake the sink port's readers.
    pub fn push(&self, unit: Unit) {
        let snk = {
            let mut inner = self.inner.lock();
            inner.queue.push_back(unit);
            inner.snk_port.clone()
        };
        if let Some(p) = snk.and_then(|w| w.upgrade()) {
            p.poke();
        }
    }

    /// Remove the unit at the sink end, if any.
    pub fn try_pop(&self) -> Option<Unit> {
        self.inner.lock().queue.pop_front()
    }

    /// True when the source is disconnected and no buffered units remain —
    /// the sink can prune the stream.
    pub fn is_drained_dead(&self) -> bool {
        let inner = self.inner.lock();
        !inner.src_open && inner.queue.is_empty()
    }

    /// Is the source end currently attached/open?
    pub fn source_open(&self) -> bool {
        self.inner.lock().src_open
    }

    /// Is the sink end currently attached?
    pub fn sink_open(&self) -> bool {
        self.inner.lock().snk_open
    }

    /// Number of buffered units.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when no units are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn set_src_port(&self, p: Option<Weak<Port>>, open: bool) {
        let mut inner = self.inner.lock();
        inner.src_port = p;
        inner.src_open = open;
    }

    pub(crate) fn set_snk_port(&self, p: Option<Weak<Port>>, open: bool) {
        let mut inner = self.inner.lock();
        inner.snk_port = p;
        inner.snk_open = open;
    }

    fn src_port(&self) -> Option<Arc<Port>> {
        self.inner.lock().src_port.clone().and_then(|w| w.upgrade())
    }

    fn snk_port(&self) -> Option<Arc<Port>> {
        self.inner.lock().snk_port.clone().and_then(|w| w.upgrade())
    }

    /// Disconnect the stream from its producer. Buffered units remain
    /// readable by the sink; once drained the sink will prune the stream.
    pub fn break_source(self: &Arc<Self>) {
        let src = self.src_port();
        {
            let mut inner = self.inner.lock();
            inner.src_open = false;
            inner.src_port = None;
        }
        if let Some(p) = src {
            p.remove_outgoing(self);
        }
        if let Some(p) = self.snk_port() {
            // Wake readers so they can observe the drained-dead state.
            p.poke();
        }
    }

    /// Disconnect the stream from its consumer. Buffered units become
    /// unreachable unless the stream is reattached to a new sink.
    pub fn break_sink(self: &Arc<Self>) {
        let snk = self.snk_port();
        {
            let mut inner = self.inner.lock();
            inner.snk_open = false;
            inner.snk_port = None;
        }
        if let Some(p) = snk {
            p.remove_incoming(self);
        }
    }

    /// Apply this stream's dismantling policy (called on state preemption).
    pub fn dismantle(self: &Arc<Self>) {
        match self.ty {
            StreamType::BK => self.break_source(),
            StreamType::KK => {}
            StreamType::BB => {
                self.break_source();
                self.break_sink();
            }
            StreamType::KB => self.break_sink(),
        }
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Stream")
            .field("id", &self.id)
            .field("ty", &self.ty)
            .field("buffered", &inner.queue.len())
            .field("src_open", &inner.src_open)
            .field("snk_open", &inner.snk_open)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let s = Stream::new(StreamType::BK);
        s.push(Unit::int(1));
        s.push(Unit::int(2));
        assert_eq!(s.try_pop().unwrap().as_int(), Some(1));
        assert_eq!(s.try_pop().unwrap().as_int(), Some(2));
        assert!(s.try_pop().is_none());
    }

    #[test]
    fn preloaded_is_drained_dead_after_reading() {
        let s = Stream::preloaded(StreamType::BK, [Unit::int(7)]);
        assert!(!s.is_drained_dead());
        assert_eq!(s.try_pop().unwrap().as_int(), Some(7));
        assert!(s.is_drained_dead());
    }

    #[test]
    fn bk_dismantle_keeps_buffered_units() {
        let s = Stream::new(StreamType::BK);
        s.push(Unit::int(42));
        s.dismantle();
        assert!(!s.source_open());
        assert_eq!(s.try_pop().unwrap().as_int(), Some(42));
        assert!(s.is_drained_dead());
    }

    #[test]
    fn kk_dismantle_is_noop() {
        let s = Stream::new(StreamType::KK);
        s.push(Unit::int(1));
        s.dismantle();
        assert!(s.source_open());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bb_dismantle_breaks_both() {
        let s = Stream::new(StreamType::BB);
        s.push(Unit::int(1));
        s.dismantle();
        assert!(!s.source_open());
        assert!(!s.sink_open());
    }

    #[test]
    fn default_type_is_bk() {
        assert_eq!(StreamType::default(), StreamType::BK);
    }

    #[test]
    fn ids_are_unique() {
        let a = Stream::new(StreamType::BK);
        let b = Stream::new(StreamType::BK);
        assert_ne!(a.id(), b.id());
    }
}
