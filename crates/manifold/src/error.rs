//! Error type shared by all blocking runtime operations.

use std::fmt;

use crate::ident::{Name, ProcessId};

/// Result alias used throughout the crate.
pub type MfResult<T> = Result<T, MfError>;

/// Errors produced by the MANIFOLD runtime.
///
/// Blocking operations (port reads/writes, event waits) can be interrupted
/// when the process is killed by the environment (e.g. at shutdown); the
/// idiomatic worker body simply propagates these with `?`, which makes the
/// process terminate cleanly — exactly the behaviour of a real MANIFOLD
/// atomic process whose task instance is torn down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MfError {
    /// The process was killed while blocked (environment shutdown or
    /// explicit `kill`).
    Killed,
    /// A read observed that every incoming stream was disconnected at its
    /// source and fully drained, and the port was marked closed.
    PortClosed(Name),
    /// The named port does not exist on the process.
    NoSuchPort(Name),
    /// A unit had an unexpected payload kind (e.g. `as_real` on text).
    UnitType {
        /// What the caller expected to find.
        expected: &'static str,
    },
    /// Referenced process is not (or no longer) registered.
    NoSuchProcess(ProcessId),
    /// A process was activated twice, or activated after termination.
    AlreadyActive(ProcessId),
    /// The MLINK/CONFIG stages could not place a task instance.
    Placement(String),
    /// Parse error in a `{task …}` / `{host …}` specification file.
    Spec(String),
    /// A wait timed out (only from the explicitly time-limited variants).
    Timeout,
    /// Catch-all application-level error carried out of an atomic process.
    App(String),
    /// A typed diagnostic from the MANIFOLD language layer (interpreter,
    /// compiler, or VM), carrying the source line it was detected at.
    Lang(crate::lang::LangError),
}

impl fmt::Display for MfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MfError::Killed => write!(f, "process killed"),
            MfError::PortClosed(p) => write!(f, "port {p} closed"),
            MfError::NoSuchPort(p) => write!(f, "no such port: {p}"),
            MfError::UnitType { expected } => {
                write!(f, "unit type mismatch: expected {expected}")
            }
            MfError::NoSuchProcess(id) => write!(f, "no such process: {id:?}"),
            MfError::AlreadyActive(id) => write!(f, "process already active: {id:?}"),
            MfError::Placement(m) => write!(f, "placement failure: {m}"),
            MfError::Spec(m) => write!(f, "spec parse error: {m}"),
            MfError::Timeout => write!(f, "wait timed out"),
            MfError::App(m) => write!(f, "application error: {m}"),
            MfError::Lang(e) => write!(f, "coordinator spec error: {e}"),
        }
    }
}

impl std::error::Error for MfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(MfError::Killed.to_string(), "process killed");
        assert_eq!(
            MfError::NoSuchPort(Name::new("dataport")).to_string(),
            "no such port: dataport"
        );
        assert!(MfError::Spec("bad token".into())
            .to_string()
            .contains("bad token"));
    }
}
