//! Predefined processes from the MANIFOLD built-in library.
//!
//! The paper's coordinator uses two of them:
//!
//! * `variable` — a process holding a single value; the paper's `now` and
//!   `t` counters are instances of it ("MANIFOLD obviously only knows
//!   processes; there are no data structures in MANIFOLD, not even the
//!   simplest kind, a variable").
//! * `void` — a process that never terminates; `terminated(void)` (the
//!   `IDLE` macro) therefore hangs a state until an event preempts it.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::coord::Coord;
use crate::error::MfResult;
use crate::process::{ProcessCtx, ProcessRef};
use crate::unit::Unit;

/// A handle to a `variable` process instance: every unit written to the
/// process's `input` port becomes its current value, which the owner may
/// read back at any time (and which the process echoes to its `output` port
/// for downstream consumers).
#[derive(Clone)]
pub struct Variable {
    process: ProcessRef,
    cell: Arc<Mutex<Unit>>,
}

impl Variable {
    /// Create and activate a `variable` process initialized to `initial`
    /// (the paper's `variable(0)`).
    pub fn spawn(coord: &Coord, name: &str, initial: Unit) -> MfResult<Variable> {
        let cell = Arc::new(Mutex::new(initial));
        let cell2 = cell.clone();
        let process = coord.create_atomic(format!("variable({name})"), move |ctx: ProcessCtx| {
            loop {
                let u = ctx.read("input")?;
                *cell2.lock() = u.clone();
                // Echo for any connected consumer; never block on it.
                let _ = ctx.core().port("output").try_write(u);
            }
        });
        coord.activate(&process)?;
        Ok(Variable { process, cell })
    }

    /// The underlying process (to connect streams to/from it).
    pub fn process(&self) -> &ProcessRef {
        &self.process
    }

    /// Current value.
    pub fn get(&self) -> Unit {
        self.cell.lock().clone()
    }

    /// Convenience: current value as integer (0 if not an Int).
    pub fn get_int(&self) -> i64 {
        self.get().as_int().unwrap_or(0)
    }

    /// Set the value directly (coordinator-side assignment `now = now + 1`).
    pub fn set(&self, u: Unit) {
        *self.cell.lock() = u;
    }

    /// Increment an integer variable by `d` and return the new value.
    pub fn add(&self, d: i64) -> i64 {
        let mut cell = self.cell.lock();
        let v = cell.as_int().unwrap_or(0) + d;
        *cell = Unit::int(v);
        v
    }
}

/// Create and activate the predefined `void` process: it blocks forever (on
/// an event that never comes) and only goes away when killed. Waiting for
/// its termination is the `IDLE` idiom.
pub fn void(coord: &Coord) -> MfResult<ProcessRef> {
    let p = coord.create_atomic("void", |ctx: ProcessCtx| {
        // Wait on an empty pattern list: matches nothing, returns only on
        // kill.
        ctx.wait_event(&[])?;
        Ok(())
    });
    coord.activate(&p)?;
    Ok(p)
}

/// Create and activate a printer process: every unit read from `input` is
/// emitted as a §6-format trace message (prefixed with `label`).
pub fn printer(coord: &Coord, label: &str) -> MfResult<ProcessRef> {
    let label = label.to_string();
    let p = coord.create_atomic("printer", move |ctx: ProcessCtx| loop {
        let u = ctx.read("input")?;
        crate::mes!(ctx, "{label}: {u:?}");
    });
    coord.activate(&p)?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;
    use crate::process::LifeState;
    use crate::stream::StreamType;
    use std::time::Duration;

    #[test]
    fn variable_counts_like_now_and_t() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let now = Variable::spawn(coord, "now", Unit::int(0))?;
            let t = Variable::spawn(coord, "t", Unit::int(0))?;
            assert_eq!(now.add(1), 1);
            assert_eq!(now.add(1), 2);
            assert_eq!(t.add(1), 1);
            assert!(t.get_int() < now.get_int());
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn variable_accepts_units_from_streams() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let v = Variable::spawn(coord, "v", Unit::int(0))?;
            let mut st = coord.state();
            st.send(Unit::real(3.5), v.process(), "input")?;
            drop(st);
            // Delivery is asynchronous.
            for _ in 0..100 {
                if v.get().as_real() == Some(3.5) {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            panic!("variable never updated");
        })
        .unwrap();
        env.shutdown();
    }

    #[test]
    fn void_never_terminates_until_shutdown() {
        let env = Environment::new();
        let v = env.run_coordinator("Main", |coord| void(coord)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(v.life_state(), LifeState::Active);
        env.shutdown();
        assert_eq!(v.life_state(), LifeState::Terminated);
    }

    #[test]
    fn printer_traces_units() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let p = printer(coord, "seen")?;
            let mut st = coord.state();
            st.send(Unit::int(9), &p, "input")?;
            drop(st);
            for _ in 0..100 {
                if !env.trace().is_empty() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(())
        })
        .unwrap();
        let recs = env.trace().snapshot();
        assert!(recs.iter().any(|r| r.message.contains("seen")));
        env.shutdown();
    }

    #[test]
    fn variable_echoes_downstream() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let v = Variable::spawn(coord, "v", Unit::int(0))?;
            let mut st = coord.state();
            // Connect echo BEFORE feeding so try_write finds the stream.
            st.connect_to_self(v.process(), "output", "input", StreamType::BK)?;
            st.send(Unit::int(5), v.process(), "input")?;
            let echoed = coord.read_timeout("input", Duration::from_secs(5))?;
            assert_eq!(echoed.as_int(), Some(5));
            drop(st);
            Ok(())
        })
        .unwrap();
        env.shutdown();
    }
}
