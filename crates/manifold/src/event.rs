//! Events and event memories.
//!
//! Events are the control mechanism of MANIFOLD: a process *raises* an event,
//! the occurrence is broadcast to its observers, and each observer stores the
//! occurrence in its private **event memory** until it is handled (causing a
//! state transition in a coordinator) or explicitly ignored.
//!
//! Fidelity notes:
//!
//! * An event memory has **set semantics**: it holds at most one occurrence
//!   of a given *(event, source)* pair, exactly as in IWIM. Two workers
//!   raising `death_worker` are two distinct occurrences (different
//!   sources); one worker raising it twice before it is handled collapses
//!   into one.
//! * Waiting on a list of patterns honours **priority**: patterns earlier in
//!   the list win when several occurrences are present (the paper's
//!   `priority create_worker > rendezvous` declaration becomes pattern
//!   ordering).
//! * Process termination is delivered through the same mechanism as a
//!   special occurrence, which is how the `terminated(p)` primitive of the
//!   language is implemented without a second wait queue.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{MfError, MfResult};
use crate::ident::{Name, ProcessId};

/// A named event. Construct with [`Event::new`] or from a `&str`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Event(pub Name);

impl Event {
    /// Create an event with the given name.
    pub fn new(name: impl Into<Name>) -> Self {
        Event(name.into())
    }

    /// The event's name.
    pub fn name(&self) -> &Name {
        &self.0
    }
}

impl From<&str> for Event {
    fn from(s: &str) -> Self {
        Event::new(s)
    }
}

/// What kind of occurrence sits in an event memory.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// An ordinary named event raised by a process.
    Named(Name),
    /// The source process terminated (drives the `terminated(p)` primitive).
    Terminated,
}

/// An event occurrence: an event together with the identity of the process
/// that raised it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventOccurrence {
    /// The kind (named event or termination notice).
    pub kind: EventKind,
    /// The raising process.
    pub source: ProcessId,
}

impl EventOccurrence {
    /// Occurrence of a named event.
    pub fn named(name: impl Into<Name>, source: ProcessId) -> Self {
        EventOccurrence {
            kind: EventKind::Named(name.into()),
            source,
        }
    }

    /// Occurrence signalling that `source` terminated.
    pub fn terminated(source: ProcessId) -> Self {
        EventOccurrence {
            kind: EventKind::Terminated,
            source,
        }
    }

    /// The event name if this is a named occurrence.
    pub fn name(&self) -> Option<&Name> {
        match &self.kind {
            EventKind::Named(n) => Some(n),
            EventKind::Terminated => None,
        }
    }

    /// True when this occurrence signals termination of `p`.
    pub fn is_termination_of(&self, p: ProcessId) -> bool {
        self.kind == EventKind::Terminated && self.source == p
    }
}

/// A pattern against which occurrences are matched when a process waits.
///
/// In a wait list, the *position* of a pattern is its priority (earlier =
/// higher), mirroring MANIFOLD's `priority a > b` declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventPattern {
    /// Any occurrence of the named event, from any source.
    Named(Name),
    /// An occurrence of the named event from the specific source.
    NamedFrom(Name, ProcessId),
    /// Termination of the specific process.
    Terminated(ProcessId),
    /// Any occurrence whatsoever (used by drain loops).
    Any,
}

impl EventPattern {
    /// Convenience constructor for [`EventPattern::Named`].
    pub fn named(name: impl Into<Name>) -> Self {
        EventPattern::Named(name.into())
    }

    /// Does the occurrence match this pattern?
    pub fn matches(&self, occ: &EventOccurrence) -> bool {
        match self {
            EventPattern::Named(n) => occ.name() == Some(n),
            EventPattern::NamedFrom(n, p) => occ.name() == Some(n) && occ.source == *p,
            EventPattern::Terminated(p) => occ.is_termination_of(*p),
            EventPattern::Any => true,
        }
    }
}

impl From<&str> for EventPattern {
    fn from(s: &str) -> Self {
        EventPattern::named(s)
    }
}

/// The private event memory of a process.
///
/// Occurrences are delivered asynchronously by the environment and removed
/// when a wait matches them. The memory is kill-aware: killing the owner
/// wakes every waiter with [`MfError::Killed`].
pub struct EventMemory {
    inner: Mutex<MemInner>,
    cv: Condvar,
}

struct MemInner {
    occurrences: Vec<EventOccurrence>,
    killed: bool,
}

impl Default for EventMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl EventMemory {
    /// Create an empty memory.
    pub fn new() -> Self {
        EventMemory {
            inner: Mutex::new(MemInner {
                occurrences: Vec::new(),
                killed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Deliver an occurrence. Returns `true` if it was inserted, `false` if
    /// an identical *(kind, source)* occurrence was already pending (set
    /// semantics).
    pub fn deliver(&self, occ: EventOccurrence) -> bool {
        let mut inner = self.inner.lock();
        if inner.occurrences.contains(&occ) {
            return false;
        }
        inner.occurrences.push(occ);
        self.cv.notify_all();
        true
    }

    /// Mark the owner killed and wake all waiters.
    pub fn kill(&self) {
        let mut inner = self.inner.lock();
        inner.killed = true;
        self.cv.notify_all();
    }

    /// Has the owner been killed?
    pub fn is_killed(&self) -> bool {
        self.inner.lock().killed
    }

    /// Remove every pending occurrence of the named event (the `ignore`
    /// declarative statement, applied on block exit).
    pub fn purge_named(&self, name: &Name) {
        let mut inner = self.inner.lock();
        inner.occurrences.retain(|o| o.name() != Some(name));
    }

    /// Number of pending occurrences.
    pub fn len(&self) -> usize {
        self.inner.lock().occurrences.len()
    }

    /// True when no occurrences are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking: remove and return the highest-priority matching
    /// occurrence, if any. Returns the index of the matched pattern too.
    pub fn try_select(&self, patterns: &[EventPattern]) -> Option<(usize, EventOccurrence)> {
        let mut inner = self.inner.lock();
        Self::select_locked(&mut inner, patterns)
    }

    fn select_locked(
        inner: &mut MemInner,
        patterns: &[EventPattern],
    ) -> Option<(usize, EventOccurrence)> {
        for (pi, pat) in patterns.iter().enumerate() {
            if let Some(oi) = inner.occurrences.iter().position(|o| pat.matches(o)) {
                let occ = inner.occurrences.remove(oi);
                return Some((pi, occ));
            }
        }
        None
    }

    /// Block until an occurrence matches one of `patterns`; remove and
    /// return it together with the index of the pattern that matched.
    ///
    /// Pattern order is priority order. Within one pattern, occurrences are
    /// consumed in delivery (FIFO) order.
    pub fn wait_select(&self, patterns: &[EventPattern]) -> MfResult<(usize, EventOccurrence)> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(hit) = Self::select_locked(&mut inner, patterns) {
                return Ok(hit);
            }
            if inner.killed {
                return Err(MfError::Killed);
            }
            self.cv.wait(&mut inner);
        }
    }

    /// Like [`EventMemory::wait_select`] but gives up after `timeout`.
    pub fn wait_select_timeout(
        &self,
        patterns: &[EventPattern],
        timeout: Duration,
    ) -> MfResult<(usize, EventOccurrence)> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(hit) = Self::select_locked(&mut inner, patterns) {
                return Ok(hit);
            }
            if inner.killed {
                return Err(MfError::Killed);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(MfError::Timeout);
            }
            if self.cv.wait_until(&mut inner, deadline).timed_out() {
                // Loop once more to give a final chance to a racing deliver.
                if let Some(hit) = Self::select_locked(&mut inner, patterns) {
                    return Ok(hit);
                }
                return Err(MfError::Timeout);
            }
        }
    }

    /// Snapshot of pending occurrences (diagnostics / tests).
    pub fn snapshot(&self) -> Vec<EventOccurrence> {
        self.inner.lock().occurrences.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn p(n: u64) -> ProcessId {
        ProcessId(n)
    }

    #[test]
    fn set_semantics_collapse_same_source() {
        let m = EventMemory::new();
        assert!(m.deliver(EventOccurrence::named("e", p(1))));
        assert!(!m.deliver(EventOccurrence::named("e", p(1))));
        assert!(m.deliver(EventOccurrence::named("e", p(2))));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn priority_is_pattern_order() {
        let m = EventMemory::new();
        m.deliver(EventOccurrence::named("rendezvous", p(1)));
        m.deliver(EventOccurrence::named("create_worker", p(1)));
        // create_worker has higher priority even though rendezvous arrived
        // first — the paper's `priority create_worker > rendezvous`.
        let (pi, occ) = m
            .wait_select(&["create_worker".into(), "rendezvous".into()])
            .unwrap();
        assert_eq!(pi, 0);
        assert_eq!(occ.name().unwrap(), "create_worker");
    }

    #[test]
    fn fifo_within_one_pattern() {
        let m = EventMemory::new();
        m.deliver(EventOccurrence::named("death_worker", p(5)));
        m.deliver(EventOccurrence::named("death_worker", p(3)));
        let (_, a) = m.try_select(&["death_worker".into()]).unwrap();
        let (_, b) = m.try_select(&["death_worker".into()]).unwrap();
        assert_eq!(a.source, p(5));
        assert_eq!(b.source, p(3));
    }

    #[test]
    fn termination_pattern() {
        let m = EventMemory::new();
        m.deliver(EventOccurrence::terminated(p(9)));
        assert!(m.try_select(&[EventPattern::Terminated(p(8))]).is_none());
        let (_, occ) = m.try_select(&[EventPattern::Terminated(p(9))]).unwrap();
        assert!(occ.is_termination_of(p(9)));
    }

    #[test]
    fn purge_named_removes_all() {
        let m = EventMemory::new();
        m.deliver(EventOccurrence::named("death", p(1)));
        m.deliver(EventOccurrence::named("death", p(2)));
        m.deliver(EventOccurrence::named("other", p(1)));
        m.purge_named(&Name::new("death"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.snapshot()[0].name().unwrap(), "other");
    }

    #[test]
    fn kill_wakes_waiter() {
        let m = Arc::new(EventMemory::new());
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.wait_select(&["never".into()]));
        std::thread::sleep(Duration::from_millis(20));
        m.kill();
        assert_eq!(h.join().unwrap(), Err(MfError::Killed));
    }

    #[test]
    fn cross_thread_delivery() {
        let m = Arc::new(EventMemory::new());
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.wait_select(&["go".into()]).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        m.deliver(EventOccurrence::named("go", p(7)));
        let (pi, occ) = h.join().unwrap();
        assert_eq!(pi, 0);
        assert_eq!(occ.source, p(7));
    }

    #[test]
    fn timeout_fires() {
        let m = EventMemory::new();
        let r = m.wait_select_timeout(&["never".into()], Duration::from_millis(30));
        assert_eq!(r, Err(MfError::Timeout));
    }

    #[test]
    fn named_from_filters_source() {
        let m = EventMemory::new();
        m.deliver(EventOccurrence::named("e", p(1)));
        let pat = [EventPattern::NamedFrom(Name::new("e"), p(2))];
        assert!(m.try_select(&pat).is_none());
        let pat = [EventPattern::NamedFrom(Name::new("e"), p(1))];
        assert!(m.try_select(&pat).is_some());
    }

    #[test]
    fn any_pattern_drains() {
        let m = EventMemory::new();
        m.deliver(EventOccurrence::named("a", p(1)));
        m.deliver(EventOccurrence::terminated(p(2)));
        assert!(m.try_select(&[EventPattern::Any]).is_some());
        assert!(m.try_select(&[EventPattern::Any]).is_some());
        assert!(m.try_select(&[EventPattern::Any]).is_none());
    }
}
