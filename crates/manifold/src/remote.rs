//! Integration surface for *real* (multi-OS-process) task instances.
//!
//! Everything in this crate runs processes as threads of one program; a
//! task instance is a bookkeeping entity. A real distributed deployment —
//! the paper's cluster-of-workstations configuration — instead runs some
//! task instances as separate operating-system processes reachable over a
//! transport (TCP, Unix sockets). This module is the narrow waist between
//! the two worlds:
//!
//! * [`RemoteConduit`] — a synchronous request/response channel to one
//!   remote task instance. The `transport` crate implements it over
//!   framed sockets; tests can implement it in memory.
//! * [`ConduitSource`] — a factory handing out conduits, one per proxy
//!   process. The transport crate's worker pool implements it with
//!   round-robin placement over the CONFIG host map (plus respawn of dead
//!   instances).
//! * [`RemoteIdentity`] — the (machine, task-instance uid) pair a proxy
//!   process adopts so the §6 chronological trace reports the *real* host
//!   executing the work instead of the local placement label (see
//!   [`ProcessCtx::set_remote_identity`]).
//!
//! Nothing here knows about sockets or wire formats: `manifold` stays a
//! pure coordination runtime, and the transport can be swapped (or faked)
//! without touching the protocol or application layers — the backend is
//! chosen by configuration, never by code.
//!
//! [`ProcessCtx::set_remote_identity`]: crate::process::ProcessCtx::set_remote_identity

use std::sync::Arc;

use crate::config::HostName;
use crate::error::MfResult;
use crate::unit::Unit;

/// The trace-visible identity of a remote task instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteIdentity {
    /// The machine the task instance really runs on (its reported
    /// hostname, not the CONFIG label).
    pub host: HostName,
    /// The task-instance uid in the paper's composite encoding.
    pub task_uid: u64,
}

/// A synchronous job channel to one remote task instance.
///
/// `execute` carries one unit to the remote instance and blocks until the
/// answer unit comes back (or the instance is declared dead: connection
/// loss, heartbeat timeout, or an application error on the far side).
pub trait RemoteConduit: Send + Sync {
    /// Ship `job` to the remote instance and wait for its answer.
    fn execute(&self, job: Unit) -> MfResult<Unit>;
    /// The remote instance's trace identity.
    fn identity(&self) -> RemoteIdentity;
    /// Stable index of the remote instance within its pool (used for
    /// diagnostics and fault-injection addressing).
    fn instance_id(&self) -> u64;
}

/// Hands out conduits to proxy processes, one per checkout.
pub trait ConduitSource: Send + Sync {
    /// Obtain a conduit to some live remote instance. Implementations may
    /// block (e.g. to respawn a dead instance with backoff) and must be
    /// callable from any thread.
    fn checkout(&self) -> MfResult<Arc<dyn RemoteConduit>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl RemoteConduit for Echo {
        fn execute(&self, job: Unit) -> MfResult<Unit> {
            Ok(job)
        }
        fn identity(&self) -> RemoteIdentity {
            RemoteIdentity {
                host: HostName::new("far.example"),
                task_uid: 42,
            }
        }
        fn instance_id(&self) -> u64 {
            0
        }
    }

    struct OneEcho;
    impl ConduitSource for OneEcho {
        fn checkout(&self) -> MfResult<Arc<dyn RemoteConduit>> {
            Ok(Arc::new(Echo))
        }
    }

    #[test]
    fn in_memory_conduit_round_trips() {
        let src = OneEcho;
        let c = src.checkout().unwrap();
        assert_eq!(c.execute(Unit::int(7)).unwrap(), Unit::int(7));
        assert_eq!(c.identity().host.as_str(), "far.example");
        assert_eq!(c.identity().task_uid, 42);
    }
}
