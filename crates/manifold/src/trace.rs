//! Chronological trace output in the paper's §6 format.
//!
//! Every `MES(…)` message a process prints is prefixed with a label telling
//! *who* printed *what*, *where* and *when*:
//!
//! ```text
//! basfluit.sen.cwi.nl 1572865 79 1048087412 275851
//!     mainprog Worker(event) ResSourceCode.c 351 -> Welcome
//! ```
//!
//! i.e. machine, task-instance id, process-instance id, a timestamp in
//! seconds and microseconds since the Unix epoch, the task name, the
//! manifold name, the source file and line, and the message.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use crate::config::HostName;
use crate::ident::{Name, ProcessId, TaskInstanceId};

/// A clock supplying trace timestamps: the real system clock, or a virtual
/// one driven externally (by the cluster discrete-event simulator).
#[derive(Clone)]
pub enum Clock {
    /// Wall-clock time from the OS.
    System,
    /// Microseconds since the epoch, advanced by whoever owns the Arc.
    Virtual(Arc<AtomicU64>),
}

impl Clock {
    /// A fresh virtual clock starting at the given epoch-microseconds.
    pub fn virtual_at(epoch_micros: u64) -> (Clock, Arc<AtomicU64>) {
        let cell = Arc::new(AtomicU64::new(epoch_micros));
        (Clock::Virtual(cell.clone()), cell)
    }

    /// Current time in microseconds since the Unix epoch.
    pub fn now_micros(&self) -> u64 {
        match self {
            Clock::System => SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            Clock::Virtual(v) => v.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clock::System => write!(f, "Clock::System"),
            Clock::Virtual(v) => write!(f, "Clock::Virtual({})", v.load(Ordering::Relaxed)),
        }
    }
}

/// One trace line (two physical lines in the paper's output).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Machine the task instance runs on.
    pub host: HostName,
    /// Task-instance identification (the long number in the paper).
    pub task_uid: u64,
    /// Process-instance identification.
    pub proc_uid: u64,
    /// Seconds since the Unix epoch.
    pub secs: u64,
    /// Microseconds part.
    pub usecs: u32,
    /// Task name (e.g. `mainprog`).
    pub task_name: Name,
    /// Manifold name (e.g. `Worker(event)`).
    pub manifold_name: Name,
    /// Source file that issued the message.
    pub source_file: String,
    /// Line number in that file.
    pub line: u32,
    /// The actual message (`Welcome`, `Bye`, …).
    pub message: String,
}

impl TraceRecord {
    /// Encode a task-instance id the way the paper's runtime does (large
    /// composite numbers such as `262146`): instance index shifted into the
    /// high bits with a small tag in the low bits.
    pub fn task_uid_for(task: TaskInstanceId) -> u64 {
        ((task.0 + 1) << 18) | 2
    }

    /// Process-instance uid (the raw process number).
    pub fn proc_uid_for(p: ProcessId) -> u64 {
        p.0
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}\n    {} {} {} {} -> {}",
            self.host,
            self.task_uid,
            self.proc_uid,
            self.secs,
            self.usecs,
            self.task_name,
            self.manifold_name,
            self.source_file,
            self.line,
            self.message
        )
    }
}

impl TraceRecord {
    /// Parse one record from its two-line [`Display`] form. `first` is the
    /// numeric header line, `second` the indented detail line.
    ///
    /// [`Display`]: std::fmt::Display
    pub fn parse_pair(first: &str, second: &str) -> Option<TraceRecord> {
        let mut h = first.split_whitespace();
        let host = HostName::new(h.next()?);
        let task_uid = h.next()?.parse().ok()?;
        let proc_uid = h.next()?.parse().ok()?;
        let secs = h.next()?.parse().ok()?;
        let usecs = h.next()?.parse().ok()?;
        if h.next().is_some() {
            return None;
        }
        let detail = second.trim_start();
        let (head, message) = detail.split_once(" -> ")?;
        let mut d = head.split_whitespace();
        let task_name = Name::new(d.next()?);
        let manifold_name = Name::new(d.next()?);
        let source_file = d.next()?.to_string();
        let line = d.next()?.parse().ok()?;
        if d.next().is_some() {
            return None;
        }
        Some(TraceRecord {
            host,
            task_uid,
            proc_uid,
            secs,
            usecs,
            task_name,
            manifold_name,
            source_file,
            line,
            message: message.to_string(),
        })
    }
}

/// Parse a whole trace dump (a sequence of two-line records as produced by
/// [`format_trace`] or the live `MES` echo). Blank lines are skipped;
/// malformed pairs are an error carrying the offending line number.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    while let Some((n, first)) = lines.next() {
        let (_, second) = lines
            .next()
            .ok_or_else(|| format!("line {}: record truncated", n + 1))?;
        let rec = TraceRecord::parse_pair(first, second)
            .ok_or_else(|| format!("line {}: malformed trace record", n + 1))?;
        out.push(rec);
    }
    Ok(out)
}

/// Render records in the same two-line format [`parse_trace`] reads.
pub fn format_trace(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

/// Merge per-process trace files into one chronology: interleave the
/// record sequences by timestamp. Each input sequence is assumed
/// internally ordered (as every `TraceSink` produces); ties keep the
/// input order (earlier sequences first), so merging is deterministic.
pub fn merge_traces(sequences: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let mut merged: Vec<(usize, TraceRecord)> = sequences
        .into_iter()
        .enumerate()
        .flat_map(|(i, seq)| seq.into_iter().map(move |r| (i, r)))
        .collect();
    merged.sort_by_key(|(i, r)| (r.secs, r.usecs, *i));
    merged.into_iter().map(|(_, r)| r).collect()
}

/// Collects trace records chronologically; optionally echoes them to stderr
/// as they arrive.
pub struct TraceSink {
    records: Mutex<Vec<TraceRecord>>,
    echo: AtomicBool,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// New, silent sink.
    pub fn new() -> Self {
        TraceSink {
            records: Mutex::new(Vec::new()),
            echo: AtomicBool::new(false),
        }
    }

    /// Echo records to stderr as they arrive (the live `MES` behaviour).
    pub fn set_echo(&self, on: bool) {
        self.echo.store(on, Ordering::Relaxed);
    }

    /// Append a record.
    pub fn record(&self, rec: TraceRecord) {
        if self.echo.load(Ordering::Relaxed) {
            eprintln!("{rec}");
        }
        self.records.lock().push(rec);
    }

    /// Copy of all records so far.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.lock().clone()
    }

    /// Remove and return all records.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Copy of the records from `offset` on (all of them when `offset` is
    /// past the end — callers pair this with an earlier [`TraceSink::len`]).
    /// A multi-job consumer reads each job's slice in O(job) instead of
    /// cloning the whole history via [`TraceSink::snapshot`].
    pub fn since(&self, offset: usize) -> Vec<TraceRecord> {
        let records = self.records.lock();
        records[offset.min(records.len())..].to_vec()
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_layout() {
        let rec = TraceRecord {
            host: HostName::new("basfluit.sen.cwi.nl"),
            task_uid: 1572865,
            proc_uid: 79,
            secs: 1048087412,
            usecs: 275851,
            task_name: Name::new("mainprog"),
            manifold_name: Name::new("Worker(event)"),
            source_file: "ResSourceCode.c".into(),
            line: 351,
            message: "Welcome".into(),
        };
        let s = rec.to_string();
        assert!(s.starts_with("basfluit.sen.cwi.nl 1572865 79 1048087412 275851"));
        assert!(s.ends_with("mainprog Worker(event) ResSourceCode.c 351 -> Welcome"));
    }

    #[test]
    fn sink_collects_in_order() {
        let sink = TraceSink::new();
        assert!(sink.is_empty());
        for i in 0..3 {
            sink.record(TraceRecord {
                host: HostName::new("h"),
                task_uid: 1,
                proc_uid: i,
                secs: 0,
                usecs: 0,
                task_name: Name::new("t"),
                manifold_name: Name::new("m"),
                source_file: "f".into(),
                line: 1,
                message: format!("m{i}"),
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[2].message, "m2");
        assert_eq!(sink.take().len(), 3);
        assert!(sink.is_empty());
    }

    #[test]
    fn virtual_clock_is_driven_externally() {
        let (clock, cell) = Clock::virtual_at(1_000_000);
        assert_eq!(clock.now_micros(), 1_000_000);
        cell.store(2_500_000, Ordering::Relaxed);
        assert_eq!(clock.now_micros(), 2_500_000);
    }

    #[test]
    fn system_clock_advances() {
        let c = Clock::System;
        let a = c.now_micros();
        assert!(a > 1_000_000_000_000_000); // after ~2001 in micros
    }

    fn rec(host: &str, secs: u64, usecs: u32, msg: &str) -> TraceRecord {
        TraceRecord {
            host: HostName::new(host),
            task_uid: 262146,
            proc_uid: 7,
            secs,
            usecs,
            task_name: Name::new("mainprog"),
            manifold_name: Name::new("Worker(event)"),
            source_file: "worker.rs".into(),
            line: 12,
            message: msg.into(),
        }
    }

    #[test]
    fn parse_round_trips_display() {
        let records = vec![
            rec("a.example", 10, 5, "Welcome"),
            rec("b.example", 10, 9, "Bye"),
        ];
        let text = format_trace(&records);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn parse_preserves_spaces_in_message() {
        let r = rec("h", 1, 2, "worker lost; re-dispatching subsolve(3, 1)");
        let back = parse_trace(&format_trace(std::slice::from_ref(&r))).unwrap();
        assert_eq!(back[0].message, r.message);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_trace("just one line").is_err());
        assert!(parse_trace("h x 1 2 3\n    t m f 1 -> msg").is_err());
    }

    #[test]
    fn merge_interleaves_by_timestamp() {
        let a = vec![rec("a", 1, 0, "a1"), rec("a", 3, 0, "a2")];
        let b = vec![rec("b", 2, 0, "b1"), rec("b", 3, 0, "b2")];
        let m = merge_traces(vec![a, b]);
        let msgs: Vec<&str> = m.iter().map(|r| r.message.as_str()).collect();
        // Tie at secs=3 resolved by sequence order: a before b.
        assert_eq!(msgs, vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn merge_of_empty_is_empty() {
        assert!(merge_traces(vec![]).is_empty());
        assert!(merge_traces(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn task_uid_encoding() {
        assert_eq!(TraceRecord::task_uid_for(TaskInstanceId(0)), 262146);
        assert_ne!(
            TraceRecord::task_uid_for(TaskInstanceId(1)),
            TraceRecord::task_uid_for(TaskInstanceId(2))
        );
    }
}
