//! Property-based tests of the coordination runtime's data structures.

use manifold::config::ConfigSpec;
use manifold::event::{EventMemory, EventOccurrence, EventPattern};
use manifold::ident::{Name, ProcessId};
use manifold::link::{parse_sexprs, Bundler, LinkSpec, Sexp};
use manifold::port::Port;
use manifold::stream::{Stream, StreamType};
use manifold::unit::Unit;
use proptest::prelude::*;

// ---------------------------------------------------------------- events

proptest! {
    /// Set semantics: delivering any multiset of occurrences leaves exactly
    /// the distinct (event, source) pairs pending.
    #[test]
    fn event_memory_is_a_set(
        events in prop::collection::vec((0u8..4, 0u64..4), 0..40)
    ) {
        let mem = EventMemory::new();
        let mut distinct = std::collections::HashSet::new();
        for (e, s) in &events {
            let name = format!("e{e}");
            mem.deliver(EventOccurrence::named(name.as_str(), ProcessId(*s)));
            distinct.insert((*e, *s));
        }
        prop_assert_eq!(mem.len(), distinct.len());
    }

    /// Selection never invents occurrences and always respects priority:
    /// the returned pattern index is the lowest matching one.
    #[test]
    fn selection_respects_priority(
        events in prop::collection::vec((0u8..6, 0u64..3), 1..30),
        patterns in prop::collection::vec(0u8..6, 1..6)
    ) {
        let mem = EventMemory::new();
        for (e, s) in &events {
            mem.deliver(EventOccurrence::named(format!("e{e}").as_str(), ProcessId(*s)));
        }
        let pats: Vec<EventPattern> = patterns
            .iter()
            .map(|p| EventPattern::named(format!("e{p}")))
            .collect();
        if let Some((idx, occ)) = mem.try_select(&pats) {
            // The matched pattern matches the occurrence...
            prop_assert!(pats[idx].matches(&occ));
            // ...and no earlier pattern had any pending match.
            for earlier in &pats[..idx] {
                prop_assert!(mem
                    .snapshot()
                    .iter()
                    .all(|o| !earlier.matches(o)));
            }
        }
    }

    /// Draining with `Any` yields exactly the pending count, in FIFO order
    /// per (event, source) insertion.
    #[test]
    fn drain_counts(events in prop::collection::vec((0u8..5, 0u64..5), 0..25)) {
        let mem = EventMemory::new();
        let mut expect = 0;
        let mut seen = std::collections::HashSet::new();
        for (e, s) in &events {
            if seen.insert((*e, *s)) {
                expect += 1;
            }
            mem.deliver(EventOccurrence::named(format!("e{e}").as_str(), ProcessId(*s)));
        }
        let mut got = 0;
        while mem.try_select(&[EventPattern::Any]).is_some() {
            got += 1;
        }
        prop_assert_eq!(got, expect);
        prop_assert!(mem.is_empty());
    }
}

// ---------------------------------------------------------------- streams

proptest! {
    /// FIFO through a stream: any sequence of pushes pops back in order.
    #[test]
    fn stream_fifo(values in prop::collection::vec(any::<i64>(), 0..100)) {
        let s = Stream::new(StreamType::BK);
        for v in &values {
            s.push(Unit::int(*v));
        }
        for v in &values {
            prop_assert_eq!(s.try_pop().unwrap().as_int(), Some(*v));
        }
        prop_assert!(s.try_pop().is_none());
    }

    /// A port fed by several streams delivers every unit exactly once,
    /// regardless of interleaving.
    #[test]
    fn port_merge_conserves_units(
        feeds in prop::collection::vec(prop::collection::vec(any::<i64>(), 0..20), 1..5)
    ) {
        let inp = Port::new(ProcessId(9), "input");
        let mut expect: Vec<i64> = Vec::new();
        for feed in &feeds {
            let s = Stream::new(StreamType::BK);
            inp.attach_incoming(&s);
            for v in feed {
                s.push(Unit::int(*v));
                expect.push(*v);
            }
        }
        let mut got: Vec<i64> = Vec::new();
        while let Some(u) = inp.try_read() {
            got.push(u.as_int().unwrap());
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// BK dismantling never loses buffered units; BB always empties the
    /// sink's view.
    #[test]
    fn dismantle_semantics(values in prop::collection::vec(any::<i64>(), 0..30)) {
        for ty in [StreamType::BK, StreamType::BB] {
            let out = Port::new(ProcessId(1), "output");
            let inp = Port::new(ProcessId(2), "input");
            let s = Stream::new(ty);
            out.attach_outgoing(&s);
            inp.attach_incoming(&s);
            for v in &values {
                out.write(Unit::int(*v)).unwrap();
            }
            s.dismantle();
            let mut drained = 0;
            while inp.try_read().is_some() {
                drained += 1;
            }
            match ty {
                StreamType::BK => prop_assert_eq!(drained, values.len()),
                StreamType::BB => prop_assert_eq!(drained, 0),
                _ => unreachable!(),
            }
        }
    }
}

// ------------------------------------------------------------------ sexpr

fn arb_sexp() -> impl Strategy<Value = Sexp> {
    let leaf = "[a-z][a-z0-9_.]{0,8}".prop_map(Sexp::Atom);
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop::collection::vec(inner, 0..5).prop_map(Sexp::Group)
    })
}

fn render(sx: &Sexp) -> String {
    match sx {
        Sexp::Atom(a) => a.clone(),
        Sexp::Group(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("{{{}}}", inner.join(" "))
        }
    }
}

proptest! {
    /// Rendering any expression tree and re-parsing it round-trips.
    #[test]
    fn sexpr_round_trip(sx in arb_sexp()) {
        // Top level must be a group for the parser's conventions; wrap.
        let text = render(&Sexp::Group(vec![sx.clone()]));
        let parsed = parse_sexprs(&text).unwrap();
        prop_assert_eq!(parsed, vec![Sexp::Group(vec![sx])]);
    }

    /// Comments never change the parse.
    #[test]
    fn sexpr_comments_ignored(sx in arb_sexp(), comment in "[ -~]{0,20}") {
        let comment = comment.replace(['{', '}', '#'], "");
        let text = render(&Sexp::Group(vec![sx.clone()]));
        let with = format!("# {comment}\n{text}\n# tail");
        prop_assert_eq!(parse_sexprs(&with).unwrap(), parse_sexprs(&text).unwrap());
    }
}

// ---------------------------------------------------------------- bundler

proptest! {
    /// Bundler invariants under arbitrary place/release interleavings:
    /// machine count never exceeds hosts, placements on load-1 instances
    /// never overlap, releases never underflow.
    #[test]
    fn bundler_invariants(ops in prop::collection::vec(any::<bool>(), 1..60)) {
        let link = LinkSpec::default()
            .task("t")
            .perpetual(true)
            .load(1)
            .weight("W", 1);
        let config = (0..4usize).fold(
            ConfigSpec::with_startup("start"),
            |c, i| c.host(format!("h{i}"), format!("m{i}")),
        );
        let config = config.locus("t", &["h0", "h1", "h2", "h3"]);
        let mut b = Bundler::new(link, config);
        let mut live: Vec<manifold::link::Placement> = Vec::new();
        for &is_place in &ops {
            if is_place {
                let p = b.place(&Name::new("W"));
                // No other live worker shares the instance (load 1).
                prop_assert!(live.iter().all(|q| q.task != p.task));
                live.push(p);
            } else if let Some(p) = live.pop() {
                b.release(&p);
            }
            // Start-up host + 4 locus machines is the ceiling.
            prop_assert!(b.machines_in_use() <= 5);
            prop_assert!(b.alive_instances() >= 1);
        }
    }
}
