//! Edge-case tests of the runtime: virtual clocks, KB streams and
//! reattachment, and environments built entirely from parsed MLINK/CONFIG
//! specification files.

use std::sync::atomic::Ordering;
use std::time::Duration;

use manifold::config::ConfigSpec;
use manifold::link::LinkSpec;
use manifold::port::Port;
use manifold::prelude::*;
use manifold::stream::Stream;
use manifold::trace::Clock;

#[test]
fn virtual_clock_drives_trace_timestamps() {
    let link = LinkSpec::default();
    let config = ConfigSpec::local();
    let (clock, cell) = Clock::virtual_at(1_048_087_412_000_000);
    let env = Environment::with_specs_and_clock(link, config, clock);
    env.run_coordinator("Main", |coord| {
        manifold::mes!(coord.ctx(), "at start");
        cell.store(1_048_087_412_500_000, Ordering::Relaxed);
        manifold::mes!(coord.ctx(), "half a second later");
        Ok(())
    })
    .unwrap();
    let recs = env.trace().snapshot();
    env.shutdown();
    assert_eq!(recs.len(), 2);
    assert_eq!(recs[0].secs, 1_048_087_412);
    assert_eq!(recs[0].usecs, 0);
    assert_eq!(recs[1].usecs, 500_000);
}

#[test]
fn kb_stream_keeps_source_breaks_sink() {
    let out = Port::new(ProcessId(1), "output");
    let inp = Port::new(ProcessId(2), "input");
    let s = Stream::new(StreamType::KB);
    out.attach_outgoing(&s);
    inp.attach_incoming(&s);
    out.write(Unit::int(1)).unwrap();
    s.dismantle();
    // Sink detached: the consumer can no longer see the unit.
    assert_eq!(inp.incoming_count(), 0);
    assert!(inp.try_read().is_none());
    // Source still attached: further writes enter the stream.
    assert_eq!(out.outgoing_count(), 1);
    out.write(Unit::int(2)).unwrap();
    assert_eq!(s.len(), 2);
}

#[test]
fn kb_stream_reattaches_to_new_sink() {
    // The reconnectable-stream idiom: after a KB dismantle, a coordinator
    // may hand the stream to a different consumer, which then drains the
    // buffered units.
    let out = Port::new(ProcessId(1), "output");
    let first = Port::new(ProcessId(2), "input");
    let s = Stream::new(StreamType::KB);
    out.attach_outgoing(&s);
    first.attach_incoming(&s);
    out.write(Unit::int(10)).unwrap();
    s.dismantle(); // first consumer loses the stream
    let second = Port::new(ProcessId(3), "input");
    second.attach_incoming(&s);
    out.write(Unit::int(20)).unwrap();
    assert_eq!(second.read().unwrap().as_int(), Some(10));
    assert_eq!(second.read().unwrap().as_int(), Some(20));
}

#[test]
fn environment_from_parsed_spec_files() {
    // Build the environment exactly the way the paper does: from the
    // textual mainprog.mlink and configurator input files.
    let link = LinkSpec::parse(
        r#"
        {task *
            {perpetual}
            {load 1}
            {weight Master 1}
            {weight Worker 1}
        }
        {task mainprog
            {include mainprog.o}
            {include protocolMW.o}
        }
        "#,
    )
    .unwrap();
    let config = ConfigSpec::parse(
        r#"
        {host host1 diplice.sen.cwi.nl}
        {host host2 alboka.sen.cwi.nl}
        {locus mainprog $host1 $host2}
        "#,
        "bumpa.sen.cwi.nl",
    )
    .unwrap();
    let env = Environment::with_specs(link, config);
    // Park a master and two workers; check the placements the paper's
    // chronological output exhibits.
    let park = |ctx: ProcessCtx| {
        let _ = ctx.read("park")?;
        Ok(())
    };
    let master = env.create_process("Master(port in)", park);
    let w1 = env.create_process("Worker(event)", park);
    let w2 = env.create_process("Worker(event)", park);
    env.activate(&master).unwrap();
    env.activate(&w1).unwrap();
    env.activate(&w2).unwrap();
    let mh = master.core().placement().unwrap();
    let p1 = w1.core().placement().unwrap();
    let p2 = w2.core().placement().unwrap();
    assert_eq!(mh.host.as_str(), "bumpa.sen.cwi.nl");
    assert_eq!(mh.task_name.as_str(), "mainprog");
    assert!(p1.forked && p2.forked);
    assert_ne!(p1.host, p2.host);
    assert!(["diplice.sen.cwi.nl", "alboka.sen.cwi.nl"].contains(&p1.host.as_str()));
    assert_eq!(env.with_bundler(|b| b.machines_in_use()), 3);
    env.shutdown();
}

#[test]
fn two_environments_are_fully_isolated() {
    let a = Environment::new();
    let b = Environment::new();
    let pa = a.create_process("P", |ctx: ProcessCtx| {
        let _ = ctx.read("park")?;
        Ok(())
    });
    a.activate(&pa).unwrap();
    // Killing environment b must not affect a's process.
    b.shutdown();
    std::thread::sleep(Duration::from_millis(30));
    assert_ne!(
        pa.life_state(),
        manifold::process::LifeState::Terminated,
        "process in env a was killed by env b's shutdown"
    );
    a.shutdown();
    assert_eq!(pa.life_state(), manifold::process::LifeState::Terminated);
}

#[test]
fn trace_display_round_trips_paper_example() {
    // The exact record from the paper's §6 listing renders identically.
    use manifold::trace::TraceRecord;
    let rec = TraceRecord {
        host: "arghul.sen.cwi.nl".into(),
        task_uid: 1310721,
        proc_uid: 79,
        secs: 1048087412,
        usecs: 385644,
        task_name: Name::new("mainprog"),
        manifold_name: Name::new("Worker(event)"),
        source_file: "ResSourceCode.c".into(),
        line: 351,
        message: "Welcome".into(),
    };
    let printed = rec.to_string();
    assert_eq!(
        printed,
        "arghul.sen.cwi.nl 1310721 79 1048087412 385644\n    \
         mainprog Worker(event) ResSourceCode.c 351 -> Welcome"
    );
}
