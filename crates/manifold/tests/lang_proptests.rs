//! Property-based tests of the MANIFOLD language front-end: arbitrary
//! programs survive print → parse round trips, and the lexer never panics
//! on arbitrary input.

use manifold::lang::ast::*;
use manifold::lang::{lex, parse_program, print_program};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords the parser treats specially.
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        ![
            "manner",
            "manifold",
            "process",
            "event",
            "port",
            "atomic",
            "save",
            "ignore",
            "priority",
            "hold",
            "stream",
            "auto",
            "is",
            "begin",
            "post",
            "raise",
            "halt",
            "terminated",
            "preemptall",
            "if",
            "then",
            "else",
            "internal",
            "export",
            "in",
            "out",
            "end",
        ]
        .contains(&s.as_str())
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-99i64..99).prop_map(Expr::Int),
        ident().prop_map(Expr::Var),
        ident().prop_map(Expr::Ref),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (inner.clone(), prop_oneof![Just('+'), Just('-')], inner).prop_map(|(lhs, op, rhs)| {
            Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        })
    })
}

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (any::<bool>(), ident(), prop::option::of(ident())).prop_map(|(is_ref, process, port)| {
        Endpoint {
            is_ref,
            process,
            port,
        }
    })
}

fn arb_simple_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Halt),
        Just(Action::PreemptAll),
        ident().prop_map(Action::Post),
        ident().prop_map(Action::Raise),
        ident().prop_map(Action::Terminated),
        ident().prop_map(Action::Mention),
        "[ -~&&[^\"\\\\{}]]{0,12}".prop_map(Action::Mes),
        (ident(), arb_expr()).prop_map(|(name, value)| Action::Assign { name, value }),
        prop::collection::vec(arb_endpoint(), 2..4).prop_map(Action::Chain),
        (ident(), prop::collection::vec(arb_expr(), 0..3))
            .prop_map(|(name, args)| Action::Call { name, args }),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    arb_simple_action().prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Action::Group),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Action::Seq),
            (
                (
                    arb_expr(),
                    prop_oneof![Just('<'), Just('>'), Just('=')],
                    arb_expr()
                ),
                inner.clone(),
                prop::option::of(inner)
            )
                .prop_map(|((lhs, op, rhs), then, otherwise)| Action::If {
                    cond: Cond { lhs, op, rhs },
                    then: Box::new(then),
                    otherwise: otherwise.map(Box::new),
                }),
        ]
    })
}

fn arb_block() -> impl Strategy<Value = Block> {
    (
        prop::collection::vec(
            prop_oneof![
                prop::collection::vec(ident(), 1..3).prop_map(Declaration::Ignore),
                prop::collection::vec(ident(), 1..3).prop_map(Declaration::Event),
                ident().prop_map(Declaration::Hold),
                (
                    any::<bool>(),
                    ident(),
                    ident(),
                    prop::collection::vec(arb_expr(), 0..2)
                )
                    .prop_map(|(auto, name, ctor, args)| Declaration::Process {
                        auto,
                        name,
                        ctor,
                        args,
                    }),
            ],
            0..3,
        ),
        prop::collection::vec((ident(), arb_action()), 0..3),
        arb_action(),
    )
        .prop_map(|(declarations, extra_states, begin_body)| {
            let mut states = vec![State {
                label: "begin".into(),
                body: begin_body,
                line: 0,
            }];
            let mut seen = std::collections::HashSet::new();
            for (label, body) in extra_states {
                if label != "begin" && seen.insert(label.clone()) {
                    states.push(State {
                        label,
                        body,
                        line: 0,
                    });
                }
            }
            Block {
                declarations,
                states,
            }
        })
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        (any::<bool>(), ident(), arb_block()).prop_map(|(export, name, body)| Item::Manner {
            export,
            name,
            params: Vec::new(),
            body,
        }),
        1..3,
    )
    .prop_map(|items| Program {
        items,
        includes: Vec::new(),
        pragmas: Vec::new(),
    })
}

fn scrub(p: &Program) -> Program {
    fn scrub_block(b: &mut Block) {
        for s in &mut b.states {
            s.line = 0;
            scrub_action(&mut s.body);
        }
    }
    fn scrub_action(a: &mut Action) {
        match a {
            Action::Seq(v) => {
                v.iter_mut().for_each(scrub_action);
                // `a; b; c` is associativity-free in the syntax: normalize
                // nested sequences to a flat one before comparing.
                let flat: Vec<Action> = std::mem::take(v)
                    .into_iter()
                    .flat_map(|p| match p {
                        Action::Seq(inner) => inner,
                        other => vec![other],
                    })
                    .collect();
                if flat.len() == 1 {
                    *a = flat.into_iter().next().unwrap();
                } else {
                    *a = Action::Seq(flat);
                }
            }
            Action::Group(v) => {
                v.iter_mut().for_each(scrub_action);
                // `(a)` is just `a`: collapse one-element groups, since the
                // printer may introduce them around sequence branches.
                if v.len() == 1 {
                    *a = v.pop().unwrap();
                    scrub_action(a);
                }
            }
            Action::Block(b) => scrub_block(b),
            Action::If {
                then, otherwise, ..
            } => {
                scrub_action(then);
                if let Some(o) = otherwise {
                    scrub_action(o);
                }
            }
            _ => {}
        }
    }
    let mut p = p.clone();
    for item in &mut p.items {
        match item {
            Item::Manner { body, .. } => scrub_block(body),
            Item::Manifold { body: Some(b), .. } => scrub_block(b),
            _ => {}
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on arbitrary programs.
    #[test]
    fn print_parse_round_trip(prog in arb_program()) {
        let printed = print_program(&prog);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n----\n{printed}"));
        prop_assert_eq!(scrub(&prog), scrub(&reparsed));
    }

    /// The lexer never panics and either lexes or errors cleanly.
    #[test]
    fn lexer_total_on_arbitrary_input(s in "[ -~\\n]{0,200}") {
        let _ = lex(&s);
    }

    /// The parser never panics on arbitrary token soup.
    #[test]
    fn parser_total_on_arbitrary_input(s in "[a-z{}();.,:<>&/*=+\\- \\n]{0,120}") {
        let _ = parse_program(&s);
    }
}
