//! Property-based tests of the MANIFOLD language front-end and the two
//! coordinator executors: arbitrary programs survive print → parse round
//! trips, the lexer never panics on arbitrary input, and — the differential
//! property — generated well-formed manner programs produce identical
//! results, trace records, and leftover events under the tree-walking
//! interpreter and the compiled state-machine VM.

use manifold::env::Environment;
use manifold::lang::ast::*;
use manifold::lang::{lex, parse_program, print_program, CoordExec, CoordExecutor, Mc};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords the parser treats specially.
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        ![
            "manner",
            "manifold",
            "process",
            "event",
            "port",
            "atomic",
            "save",
            "ignore",
            "priority",
            "hold",
            "stream",
            "auto",
            "is",
            "begin",
            "post",
            "raise",
            "halt",
            "terminated",
            "preemptall",
            "if",
            "then",
            "else",
            "internal",
            "export",
            "in",
            "out",
            "end",
        ]
        .contains(&s.as_str())
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-99i64..99).prop_map(Expr::Int),
        ident().prop_map(Expr::Var),
        ident().prop_map(Expr::Ref),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (inner.clone(), prop_oneof![Just('+'), Just('-')], inner).prop_map(|(lhs, op, rhs)| {
            Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        })
    })
}

fn arb_endpoint() -> impl Strategy<Value = Endpoint> {
    (any::<bool>(), ident(), prop::option::of(ident())).prop_map(|(is_ref, process, port)| {
        Endpoint {
            is_ref,
            process,
            port,
        }
    })
}

fn arb_simple_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Halt),
        Just(Action::PreemptAll),
        ident().prop_map(Action::Post),
        ident().prop_map(Action::Raise),
        ident().prop_map(Action::Terminated),
        ident().prop_map(Action::Mention),
        "[ -~&&[^\"\\\\{}]]{0,12}".prop_map(Action::Mes),
        (ident(), arb_expr()).prop_map(|(name, value)| Action::Assign { name, value }),
        prop::collection::vec(arb_endpoint(), 2..4).prop_map(Action::Chain),
        (ident(), prop::collection::vec(arb_expr(), 0..3))
            .prop_map(|(name, args)| Action::Call { name, args }),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    arb_simple_action().prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Action::Group),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Action::Seq),
            (
                (
                    arb_expr(),
                    prop_oneof![Just('<'), Just('>'), Just('=')],
                    arb_expr()
                ),
                inner.clone(),
                prop::option::of(inner)
            )
                .prop_map(|((lhs, op, rhs), then, otherwise)| Action::If {
                    cond: Cond { lhs, op, rhs },
                    then: Box::new(then),
                    otherwise: otherwise.map(Box::new),
                }),
        ]
    })
}

fn arb_block() -> impl Strategy<Value = Block> {
    (
        prop::collection::vec(
            prop_oneof![
                prop::collection::vec(ident(), 1..3).prop_map(Declaration::Ignore),
                prop::collection::vec(ident(), 1..3).prop_map(Declaration::Event),
                ident().prop_map(Declaration::Hold),
                (
                    any::<bool>(),
                    ident(),
                    ident(),
                    prop::collection::vec(arb_expr(), 0..2)
                )
                    .prop_map(|(auto, name, ctor, args)| Declaration::Process {
                        auto,
                        name,
                        ctor,
                        args,
                        line: 0,
                    }),
            ],
            0..3,
        ),
        prop::collection::vec((ident(), arb_action()), 0..3),
        arb_action(),
    )
        .prop_map(|(declarations, extra_states, begin_body)| {
            let mut states = vec![State {
                label: "begin".into(),
                body: begin_body,
                line: 0,
            }];
            let mut seen = std::collections::HashSet::new();
            for (label, body) in extra_states {
                if label != "begin" && seen.insert(label.clone()) {
                    states.push(State {
                        label,
                        body,
                        line: 0,
                    });
                }
            }
            Block {
                declarations,
                states,
            }
        })
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        (any::<bool>(), ident(), arb_block()).prop_map(|(export, name, body)| Item::Manner {
            export,
            name,
            params: Vec::new(),
            body,
        }),
        1..3,
    )
    .prop_map(|items| Program {
        items,
        includes: Vec::new(),
        pragmas: Vec::new(),
    })
}

fn scrub(p: &Program) -> Program {
    fn scrub_block(b: &mut Block) {
        for d in &mut b.declarations {
            if let Declaration::Process { line, .. } = d {
                *line = 0;
            }
        }
        for s in &mut b.states {
            s.line = 0;
            scrub_action(&mut s.body);
        }
    }
    fn scrub_action(a: &mut Action) {
        match a {
            Action::Seq(v) => {
                v.iter_mut().for_each(scrub_action);
                // `a; b; c` is associativity-free in the syntax: normalize
                // nested sequences to a flat one before comparing.
                let flat: Vec<Action> = std::mem::take(v)
                    .into_iter()
                    .flat_map(|p| match p {
                        Action::Seq(inner) => inner,
                        other => vec![other],
                    })
                    .collect();
                if flat.len() == 1 {
                    *a = flat.into_iter().next().unwrap();
                } else {
                    *a = Action::Seq(flat);
                }
            }
            Action::Group(v) => {
                v.iter_mut().for_each(scrub_action);
                // `(a)` is just `a`: collapse one-element groups, since the
                // printer may introduce them around sequence branches.
                if v.len() == 1 {
                    *a = v.pop().unwrap();
                    scrub_action(a);
                }
            }
            Action::Block(b) => scrub_block(b),
            Action::If {
                then, otherwise, ..
            } => {
                scrub_action(then);
                if let Some(o) = otherwise {
                    scrub_action(o);
                }
            }
            _ => {}
        }
    }
    let mut p = p.clone();
    for item in &mut p.items {
        match item {
            Item::Manner { body, .. } => scrub_block(body),
            Item::Manifold { body: Some(b), .. } => scrub_block(b),
            _ => {}
        }
    }
    p
}

// ------------------------------------------------------------------------
// Differential executor testing: generated *terminating* coordinator
// programs, rendered to source text (so both executors see the same line
// numbers), run under the interpreter and the compiled VM.
//
// Termination by construction: states are ordered `begin, s1, s2, done`,
// every `post` targets a strictly later state, and event memory keeps one
// occurrence per (name, source). Dispatch priority is appearance order, so
// the current state index strictly increases and the manner must return.

/// One generated state-body action.
#[derive(Clone, Debug)]
enum PAct {
    /// `v{var} = v{var} {op} {k}`.
    Assign { var: usize, op: char, k: i64 },
    /// `MES("…")` — lands in the trace with the state's source line.
    Mes(String),
    /// `post (label)` to a strictly later state.
    Post(usize),
    /// `if (v{var} < bound) then post(later) else post(later)`.
    If {
        var: usize,
        bound: i64,
        then_t: usize,
        else_t: usize,
    },
    /// `Sub()` — exercises dynamic scoping (Sub mutates the caller's v0).
    CallSub,
}

/// Actions legal in state `state` of `n` total states: posts may only
/// target later states (none in the last state).
fn arb_pact(state: usize, n: usize) -> BoxedStrategy<PAct> {
    let base = prop_oneof![
        (0usize..2, prop_oneof![Just('+'), Just('-')], 0i64..4)
            .prop_map(|(var, op, k)| PAct::Assign { var, op, k }),
        "[a-z]{1,8}".prop_map(PAct::Mes),
        Just(PAct::CallSub),
    ];
    if state + 1 < n {
        let later = (state + 1)..n;
        prop_oneof![
            base,
            later.clone().prop_map(PAct::Post),
            (0usize..2, -2i64..5, later.clone(), later).prop_map(|(var, bound, then_t, else_t)| {
                PAct::If {
                    var,
                    bound,
                    then_t,
                    else_t,
                }
            }),
        ]
        .boxed()
    } else {
        base.boxed()
    }
}

const STATE_LABELS: [&str; 4] = ["begin", "s1", "s2", "done"];

fn render_act(a: &PAct) -> String {
    match a {
        PAct::Assign { var, op, k } => format!("v{var} = v{var} {op} {k}"),
        PAct::Mes(s) => format!("MES(\"{s}\")"),
        PAct::Post(t) => format!("post ({})", STATE_LABELS[*t]),
        PAct::If {
            var,
            bound,
            then_t,
            else_t,
        } => format!(
            "if (v{var} < {bound}) then (post ({})) else (post ({}))",
            STATE_LABELS[*then_t], STATE_LABELS[*else_t]
        ),
        PAct::CallSub => "Sub()".to_string(),
    }
}

fn render_program(init0: i64, init1: i64, bodies: &[Vec<PAct>]) -> String {
    let mut src = String::new();
    src.push_str("manner Sub() {\n    begin: v0 = v0 + 1.\n}\n");
    src.push_str("manner Main() {\n");
    src.push_str(&format!("    auto process v0 is variable({init0}).\n"));
    src.push_str(&format!("    auto process v1 is variable({init1}).\n"));
    for (i, body) in bodies.iter().enumerate() {
        let rendered: Vec<String> = body.iter().map(render_act).collect();
        let stmt = if rendered.is_empty() {
            "preemptall".to_string()
        } else {
            rendered.join("; ")
        };
        src.push_str(&format!("    {}: {}.\n", STATE_LABELS[i], stmt));
    }
    src.push_str("}\n");
    src
}

/// Everything observable from one execution: the result (errors as their
/// Debug rendering — kind *and* line must agree), every trace record, and
/// the names of events left pending in the coordinator's event memory.
type Observation = (Result<(), String>, Vec<(String, u32, String)>, Vec<String>);

fn run_once(src: &str, kind: CoordExec) -> Observation {
    let mc = Mc::from_source(src).expect("generated program must compile");
    let env = Environment::new();
    let out = env.run_coordinator("Main", |coord| {
        let exec = mc.executor(kind, "prop.m");
        let result = exec.call_manner(coord, "Main", Vec::new());
        let leftovers: Vec<String> = coord
            .ctx()
            .core()
            .events()
            .snapshot()
            .iter()
            .filter_map(|o| o.name().map(|n| n.as_str().to_string()))
            .collect();
        Ok((result, leftovers))
    });
    let (result, leftovers) = out.expect("coordinator harness must not fail");
    let trace: Vec<(String, u32, String)> = env
        .trace()
        .snapshot()
        .iter()
        .map(|t| (t.source_file.clone(), t.line, t.message.clone()))
        .collect();
    env.shutdown();
    (result.map_err(|e| format!("{e:?}")), trace, leftovers)
}

/// Malformed-at-runtime programs must fail identically — same error kind,
/// same source line — under both executors.
#[test]
fn executors_agree_on_errors() {
    let cases = [
        // Unknown manner call.
        "manner Main() { begin: Nope(). }",
        // Arity mismatch (callee name and call line in the error).
        "manner Sub() { begin: halt. }\nmanner Main() { begin: Sub(1, 2). }",
        // `terminated` of a non-process.
        "manner Main() { event x. begin: terminated(x). }",
        // Assignment to a non-variable.
        "manner Main() { event x. begin: x = 1. }",
        // No `begin` state.
        "manner Main() { s: halt. }",
        // Unknown stream type fails when the declaration executes.
        "manner Main() { stream XX a -> b.inport. begin: halt. }",
        // Unbound constructor in a process declaration.
        "manner Main() { process p is NotBound(1). begin: halt. }",
        // Nested call used as a call argument.
        "manner Sub(event e) { begin: halt. }\nmanner Main() { event x. begin: Sub(Nested(x)). }",
        // Non-numeric operand in arithmetic.
        "manner Main() { auto process v is variable(0). event x. begin: v = x + 1. }",
    ];
    for src in cases {
        let interp = run_once(src, CoordExec::Interp);
        let vm = run_once(src, CoordExec::Compiled);
        assert!(interp.0.is_err(), "expected a runtime error for {src:?}");
        assert_eq!(interp, vm, "executors disagree on source:\n{src}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on arbitrary programs.
    #[test]
    fn print_parse_round_trip(prog in arb_program()) {
        let printed = print_program(&prog);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n----\n{printed}"));
        prop_assert_eq!(scrub(&prog), scrub(&reparsed));
    }

    /// The lexer never panics and either lexes or errors cleanly.
    #[test]
    fn lexer_total_on_arbitrary_input(s in "[ -~\\n]{0,200}") {
        let _ = lex(&s);
    }

    /// The parser never panics on arbitrary token soup.
    #[test]
    fn parser_total_on_arbitrary_input(s in "[a-z{}();.,:<>&/*=+\\- \\n]{0,120}") {
        let _ = parse_program(&s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The differential property: generated terminating coordinator
    /// programs behave identically under `Interp` and the compiled VM —
    /// same result, same trace (file, line, message), same leftover events.
    #[test]
    fn executors_agree_on_generated_programs(
        (init0, init1, b0, b1, b2, b3) in (
            -5i64..6,
            -5i64..6,
            prop::collection::vec(arb_pact(0, 4), 0..4),
            prop::collection::vec(arb_pact(1, 4), 0..4),
            prop::collection::vec(arb_pact(2, 4), 0..4),
            prop::collection::vec(arb_pact(3, 4), 0..4),
        )
    ) {
        let src = render_program(init0, init1, &[b0, b1, b2, b3]);
        let interp = run_once(&src, CoordExec::Interp);
        let vm = run_once(&src, CoordExec::Compiled);
        prop_assert_eq!(interp, vm, "executors disagree on source:\n{}", src);
    }
}
