//! Golden tests for the Mc compile pipeline: both paper fixtures compile,
//! and the disassembled IR of `protocolMW.m` matches the committed
//! snapshot (`src/lang/fixtures/protocolMW.ir.txt`).
//!
//! The snapshot pins the compiled form — state numbering, dispatch tables,
//! pre-resolved stream chains, interned symbols — so accidental changes to
//! the IR layout show up as a readable diff. To regenerate after an
//! intentional change:
//!
//! ```text
//! MC_BLESS=1 cargo test -p manifold --test lang_golden
//! ```

use manifold::lang::{compile, parse_program, MAINPROG_SOURCE, PROTOCOL_MW_SOURCE};

fn snapshot_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/lang/fixtures/protocolMW.ir.txt")
}

#[test]
fn compile_accepts_both_paper_fixtures() {
    for (name, source) in [
        ("protocolMW.m", PROTOCOL_MW_SOURCE),
        ("mainprog.m", MAINPROG_SOURCE),
    ] {
        let program = parse_program(source).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let compiled = compile(&program).unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        assert!(
            compiled.symbol_count() > 0 && !compiled.blocks.is_empty(),
            "{name}: compiled to an empty program"
        );
    }
}

#[test]
fn protocol_mw_ir_matches_committed_snapshot() {
    let program = parse_program(PROTOCOL_MW_SOURCE).expect("parse");
    let compiled = compile(&program).expect("compile");
    let actual = compiled.disassemble();
    let path = snapshot_path();
    if std::env::var_os("MC_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with MC_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "compiled IR drifted from {}; regenerate with MC_BLESS=1 if intentional",
        path.display()
    );
}
