//! Bit-identity regression: the zero-allocation subsolve hot path against
//! the retained reference implementation (`solver::reference`).
//!
//! The optimization contract for this solver is strict: direct CSR
//! assembly, cached stage matrices, in-place ILU(0) refactorization,
//! level-scheduled triangular sweeps and workspace reuse must change *how*
//! the arithmetic is scheduled, never *what* is computed. These tests pin
//! that down — bitwise-equal solution values and identical step, rejection,
//! iteration and flop counts on a set of anisotropic and isotropic grids.

use solver::problem::Problem;
use solver::reference::{bit_identity_grids, subsolve_reference};
use solver::rosenbrock::Ros2Workspace;
use solver::subsolve::{subsolve, subsolve_with, SubsolveRequest};

fn assert_identical(p: Problem, tol: f64) {
    let grids = bit_identity_grids();
    assert!(grids.len() >= 3, "need at least three regression grids");

    // One shared workspace across all grids: reuse (with its pattern-cache
    // resets between differently shaped grids) must not perturb anything.
    let mut ws = Ros2Workspace::new();
    for (l, m) in grids {
        let req = SubsolveRequest::for_grid(2, l, m, tol, p);
        let reference = subsolve_reference(&req).expect("reference subsolve");
        let fresh = subsolve(&req).expect("optimized subsolve");
        let warm = subsolve_with(&req, &mut ws).expect("warm-workspace subsolve");

        for res in [&fresh, &warm] {
            assert_eq!(
                reference.values, res.values,
                "grid ({l},{m}): values diverged from the reference"
            );
            assert_eq!(reference.steps, res.steps, "grid ({l},{m}): step count");
            assert_eq!(
                reference.rejected, res.rejected,
                "grid ({l},{m}): rejected-step count"
            );
            assert_eq!(
                reference.work.flops, res.work.flops,
                "grid ({l},{m}): counted flops"
            );
            assert_eq!(
                reference.work.lin_iters, res.work.lin_iters,
                "grid ({l},{m}): linear iterations"
            );
            // The reference only ever performs full factorizations; the
            // optimized path splits the same events into one factorization
            // plus in-place refactorizations.
            assert_eq!(
                reference.work.factorizations,
                res.work.factorizations + res.work.refactorizations,
                "grid ({l},{m}): (re)factorization events"
            );
        }
    }
}

#[test]
fn transport_problem_is_bit_identical_to_reference() {
    assert_identical(Problem::transport_benchmark(), 1e-4);
}

#[test]
fn manufactured_problem_is_bit_identical_to_reference() {
    assert_identical(Problem::manufactured_benchmark(), 1e-3);
}
