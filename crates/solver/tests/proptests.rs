//! Property-based tests of the numerical substrate.

use proptest::prelude::*;
use solver::assemble::assemble;
use solver::combine::{combine, prolong_bilinear};
use solver::grid::{Grid2, GridIndex};
use solver::linsolve::{bicgstab, Ilu0, Preconditioner};
use solver::problem::Problem;
use solver::rosenbrock::{integrate_with, Ros2Options, Ros2Workspace};
use solver::sparse::{Csr, MultiVec, StencilPlan};
use solver::{l2_norm, linf_norm, Tier, WorkCounter};

// -------------------------------------------------------------------- CSR

/// Random small sparse matrix with a guaranteed nonzero diagonal.
fn arb_csr(n: usize) -> impl Strategy<Value = Csr> {
    let off = prop::collection::vec((0..n, 0..n, -2.0..2.0f64), 0..3 * n);
    let diag = prop::collection::vec(1.0..4.0f64, n);
    (off, diag).prop_map(move |(off, diag)| {
        let mut t: Vec<(usize, usize, f64)> = off;
        for (i, d) in diag.into_iter().enumerate() {
            t.push((i, i, d + 4.0)); // diagonally dominant-ish
        }
        Csr::from_triplets(n, &t)
    })
}

proptest! {
    /// CSR matvec agrees with the dense product.
    #[test]
    fn csr_matvec_matches_dense(a in arb_csr(8), x in prop::collection::vec(-3.0..3.0f64, 8)) {
        let y = a.matvec(&x);
        let d = a.to_dense();
        for r in 0..8 {
            let want: f64 = (0..8).map(|c| d[r][c] * x[c]).sum();
            prop_assert!((y[r] - want).abs() < 1e-10);
        }
    }

    /// `I - s·A` evaluated against a vector equals `x - s·A·x`.
    #[test]
    fn identity_minus_scaled_consistent(
        a in arb_csr(6),
        x in prop::collection::vec(-2.0..2.0f64, 6),
        s in -1.0..1.0f64
    ) {
        let m = a.identity_minus_scaled(s);
        let lhs = m.matvec(&x);
        let ax = a.matvec(&x);
        for i in 0..6 {
            prop_assert!((lhs[i] - (x[i] - s * ax[i])).abs() < 1e-10);
        }
    }

    /// Triplet order never matters.
    #[test]
    fn csr_from_triplets_is_order_independent(
        mut t in prop::collection::vec((0usize..5, 0usize..5, -1.0..1.0f64), 1..20),
        seed in any::<u64>()
    ) {
        let a = Csr::from_triplets(5, &t);
        // Deterministic shuffle.
        let mut s = seed;
        for i in (1..t.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            t.swap(i, j);
        }
        let b = Csr::from_triplets(5, &t);
        for r in 0..5 {
            for c in 0..5 {
                let av = a.get(r, c).unwrap_or(0.0);
                let bv = b.get(r, c).unwrap_or(0.0);
                prop_assert!((av - bv).abs() < 1e-12);
            }
        }
    }

    /// `from_triplets` against the naive oracle: accumulate every triplet
    /// (duplicates included, shuffled order) into a dense matrix, then
    /// compare entry by entry. Also pins the structural contract the
    /// solver kernels rely on: one stored entry per distinct `(r, c)` pair
    /// and strictly increasing columns within each row.
    #[test]
    fn csr_from_triplets_matches_dense_accumulation(
        t in prop::collection::vec((0usize..6, 0usize..6, -2.0..2.0f64), 1..40),
        seed in any::<u64>()
    ) {
        const N: usize = 6;
        // Shuffle deterministically so duplicates arrive in varied order.
        let mut shuffled = t.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }

        // Oracle: accumulation order per (r, c) must follow the *sorted*
        // input order (stable sort by (r, c)), which is what a dense
        // accumulator over the stably sorted triplets produces.
        let mut sorted = shuffled.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut dense = [[0.0f64; N]; N];
        for &(r, c, v) in &sorted {
            dense[r][c] += v;
        }

        let a = Csr::from_triplets(N, &shuffled);

        // Every stored entry agrees with the dense oracle, bit for bit in
        // the common case (same summation order) and to roundoff always.
        for (r, row) in dense.iter().enumerate() {
            for (c, want) in row.iter().enumerate() {
                let av = a.get(r, c).unwrap_or(0.0);
                prop_assert!((av - want).abs() < 1e-12, "({r},{c}): {av} vs {want}");
            }
        }

        // nnz equals the number of *distinct* coordinates — duplicates
        // merge, nothing is dropped (even if values cancel to 0.0).
        let mut coords: Vec<(usize, usize)> = t.iter().map(|&(r, c, _)| (r, c)).collect();
        coords.sort_unstable();
        coords.dedup();
        prop_assert_eq!(a.nnz(), coords.len());

        // Rows hold strictly increasing column indices.
        for r in 0..N {
            let (cols, _) = a.row(r);
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r}: {cols:?}");
        }
    }
}

// ------------------------------------------------- SIMD kernel dispatch
//
// The production kernels (`Csr::matvec_into`, `Ilu0::apply`, and their
// multi-RHS variants) promise *bit identity* with the plain scalar loops on
// every backend and for every dispatch route (lane-blocked, thin stencil,
// chunked stencil, wavefront). These differentials pin that promise on
// adversarial shapes: odd lengths, remainder lanes, systems smaller than
// the lane width, and stencil grids across the thin/chunked width split.

/// Deterministic pseudo-random vector (splitmix-style) in roughly ±1.
fn test_vector(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let mut z = seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// Random pentadiagonal CSR: bands at offsets `{-b, -1, 0, +1, +b}`, each
/// off-diagonal entry present with probability ~0.7 (so rows have ragged
/// lengths and the pattern rarely conforms to a stencil plan), strongly
/// diagonally dominant. `n` ranges below the lane width (4) up to several
/// lane blocks plus remainders.
fn arb_pentadiagonal() -> impl Strategy<Value = Csr> {
    // The vendored proptest has no `prop_flat_map`, so draw fixed-size
    // entry pools for the largest `n` and slice what the drawn size needs.
    (
        1usize..26,
        2usize..6,
        prop::collection::vec((0.0..1.0f64, -1.5..1.5f64), 100..101),
        prop::collection::vec(7.0..9.0f64, 25..26),
    )
        .prop_map(|(n, b, offdiag, diag)| {
            let mut t = Vec::new();
            for i in 0..n {
                t.push((i, i, diag[i]));
                for (q, &off) in [1usize, b].iter().enumerate() {
                    let (pl, vl) = offdiag[4 * i + 2 * q];
                    let (pu, vu) = offdiag[4 * i + 2 * q + 1];
                    if pl < 0.7 && i >= off {
                        t.push((i, i - off, vl));
                    }
                    if pu < 0.7 && i + off < n {
                        t.push((i, i + off, vu));
                    }
                }
            }
            Csr::from_triplets(n, &t)
        })
}

/// Exact 5-point tensor-product stencil matrix on a `w × h` grid with
/// random band values, spanning the thin-width (`w < 8`) and chunked
/// (`w >= 8`) matvec routes and the wavefront sweep. Width starts at 3:
/// a 2-wide grid has no 5-entry row for detection to anchor on.
fn arb_stencil_csr() -> impl Strategy<Value = (Csr, usize, usize)> {
    // Entry pools sized for the largest `w × h` (see `arb_pentadiagonal`).
    (
        3usize..11,
        3usize..9,
        prop::collection::vec(-1.0..1.0f64, 320..321),
        prop::collection::vec(7.0..9.0f64, 80..81),
    )
        .prop_map(|(w, h, bands, diag)| {
            let n = w * h;
            let mut t = Vec::new();
            for i in 0..n {
                let (j, c) = (i / w, i % w);
                t.push((i, i, diag[i]));
                if j > 0 {
                    t.push((i, i - w, bands[4 * i]));
                }
                if c > 0 {
                    t.push((i, i - 1, bands[4 * i + 1]));
                }
                if c + 1 < w {
                    t.push((i, i + 1, bands[4 * i + 2]));
                }
                if j + 1 < h {
                    t.push((i, i + w, bands[4 * i + 3]));
                }
            }
            (Csr::from_triplets(n, &t), w, h)
        })
}

proptest! {
    /// Dispatched matvec and ILU(0) sweeps are bit-identical to the scalar
    /// loops on ragged pentadiagonal systems (lane-blocked route).
    #[test]
    fn simd_kernels_bit_identical_on_pentadiagonal(
        a in arb_pentadiagonal(),
        seed in any::<u64>()
    ) {
        let n = a.n();
        let x = test_vector(n, seed);
        let mut y = vec![0.0; n];
        let mut y_s = vec![0.0; n];
        a.matvec_into(&x, &mut y);
        a.matvec_into_scalar(&x, &mut y_s);
        for i in 0..n {
            prop_assert_eq!(y[i].to_bits(), y_s[i].to_bits(), "matvec row {}", i);
        }

        let mut w = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut w);
        let mut z = vec![0.0; n];
        let mut z_s = vec![0.0; n];
        ilu.apply(&x, &mut z, &mut w);
        ilu.apply_scalar(&x, &mut z_s);
        for i in 0..n {
            prop_assert_eq!(z[i].to_bits(), z_s[i].to_bits(), "sweep row {}", i);
        }
    }

    /// On conforming stencil grids the plan is detected and the
    /// structure-aware routes (thin/chunked matvec, wavefront sweeps) stay
    /// bit-identical to the scalar loops.
    #[test]
    fn simd_kernels_bit_identical_on_stencil_grids(
        (a, w, h) in arb_stencil_csr(),
        seed in any::<u64>()
    ) {
        prop_assert_eq!(a.stencil_plan(), Some(StencilPlan { w, h }));
        let n = a.n();
        let x = test_vector(n, seed);
        let mut y = vec![0.0; n];
        let mut y_s = vec![0.0; n];
        a.matvec_into(&x, &mut y);
        a.matvec_into_scalar(&x, &mut y_s);
        for i in 0..n {
            prop_assert_eq!(y[i].to_bits(), y_s[i].to_bits(), "matvec row {}", i);
        }

        let mut wk = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut wk);
        let mut z = vec![0.0; n];
        let mut z_s = vec![0.0; n];
        ilu.apply(&x, &mut z, &mut wk);
        ilu.apply_scalar(&x, &mut z_s);
        for i in 0..n {
            prop_assert_eq!(z[i].to_bits(), z_s[i].to_bits(), "sweep row {}", i);
        }
    }

    /// The SoA multi-RHS kernels are bit-identical to the single-RHS scalar
    /// loops member by member, for widths off the lane grid.
    #[test]
    fn multi_rhs_kernels_bit_identical_per_member(
        (a, _, _) in arb_stencil_csr(),
        k in 1usize..6,
        seed in any::<u64>()
    ) {
        let n = a.n();
        let members: Vec<Vec<f64>> =
            (0..k).map(|j| test_vector(n, seed ^ (j as u64) << 17)).collect();
        let mut x = MultiVec::new();
        let mut y = MultiVec::new();
        x.ensure(k, n);
        y.ensure(k, n);
        for (j, mem) in members.iter().enumerate() {
            x.pack_member(j, mem);
        }

        let mut got = vec![0.0; n];
        let mut want = vec![0.0; n];
        a.matvec_multi_into(&x, &mut y);
        for (j, mem) in members.iter().enumerate() {
            y.unpack_member(j, &mut got);
            a.matvec_into_scalar(mem, &mut want);
            for i in 0..n {
                prop_assert_eq!(got[i].to_bits(), want[i].to_bits(),
                    "matvec member {} row {}", j, i);
            }
        }

        let mut wk = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut wk);
        ilu.apply_multi(&x, &mut y);
        for (j, mem) in members.iter().enumerate() {
            y.unpack_member(j, &mut got);
            ilu.apply_scalar(mem, &mut want);
            for i in 0..n {
                prop_assert_eq!(got[i].to_bits(), want[i].to_bits(),
                    "sweep member {} row {}", j, i);
            }
        }
    }
}

/// The fast tier trades bit-reproducibility for speed (blocked dots, fused
/// error norm) but must not degrade *accuracy*: on the anisotropic
/// regression grids, the fast-tier solution error against the manufactured
/// exact solution stays within a whisker of the exact tier's.
#[test]
fn fast_tier_error_bound_on_regression_grids() {
    let problem = Problem::manufactured_benchmark();
    for (l, m) in [(0u32, 4u32), (4, 0), (1, 3), (3, 1), (2, 2)] {
        let g = Grid2::new(2, l, m);
        let mut wk = WorkCounter::new();
        let disc = assemble(&g, &problem, &mut wk);
        let u0 = disc.exact_interior(problem.t0);
        let want = disc.exact_interior(problem.t_end);
        let mut err = [0.0f64; 2];
        for (slot, tier) in [(0, Tier::Exact), (1, Tier::Fast)] {
            let opts = Ros2Options::with_tol(1e-4).with_tier(tier);
            let mut ws = Ros2Workspace::new();
            let (u, _) = integrate_with(
                &disc,
                u0.clone(),
                problem.t0,
                problem.t_end,
                &opts,
                &mut ws,
                &mut wk,
            )
            .expect("integration");
            let diff: Vec<f64> = u.iter().zip(&want).map(|(a, b)| a - b).collect();
            err[slot] = l2_norm(&diff) / (1.0 + l2_norm(&want));
        }
        assert!(
            err[1] <= 1.05 * err[0] + 1e-7,
            "grid ({l},{m}): fast-tier error {} vs exact-tier {}",
            err[1],
            err[0]
        );
    }
}

// --------------------------------------------------------------- linsolve

proptest! {
    /// BiCGSTAB + ILU(0) solves diagonally dominant systems to the
    /// requested residual.
    #[test]
    fn bicgstab_converges_on_dominant_systems(
        a in arb_csr(10),
        x_true in prop::collection::vec(-2.0..2.0f64, 10)
    ) {
        let b = a.matvec(&x_true);
        let mut w = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut w);
        let mut x = vec![0.0; 10];
        let stats = bicgstab(&a, &ilu, &b, &mut x, 1e-9, 500, &mut w);
        prop_assert!(stats.is_ok(), "solve failed: {stats:?}");
        let r: Vec<f64> = a
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(ax, bi)| ax - bi)
            .collect();
        prop_assert!(l2_norm(&r) <= 1e-6 * (1.0 + l2_norm(&b)));
    }

    /// The ILU(0) preconditioner of a *triangular* system is an exact
    /// solver.
    #[test]
    fn ilu_exact_on_lower_triangular(
        diag in prop::collection::vec(0.5..3.0f64, 6),
        sub in prop::collection::vec(-1.0..1.0f64, 5)
    ) {
        let mut t = Vec::new();
        for (i, d) in diag.iter().enumerate() {
            t.push((i, i, *d));
        }
        for (i, v) in sub.iter().enumerate() {
            t.push((i + 1, i, *v));
        }
        let a = Csr::from_triplets(6, &t);
        let mut w = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut w);
        let rhs: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let mut z = vec![0.0; 6];
        ilu.apply(&rhs, &mut z, &mut w);
        let az = a.matvec(&z);
        for (ai, bi) in az.iter().zip(&rhs) {
            prop_assert!((ai - bi).abs() < 1e-9);
        }
    }
}

// ------------------------------------------------------------ grids & co.

proptest! {
    /// Prolongation is exact on bilinear functions between *any* two grids.
    #[test]
    fn prolongation_exact_on_bilinear(
        (la, ma, lb, mb) in (0u32..3, 0u32..3, 0u32..3, 0u32..3),
        (c0, cx, cy, cxy) in (-2.0..2.0f64, -2.0..2.0f64, -2.0..2.0f64, -2.0..2.0f64)
    ) {
        let from = Grid2::new(2, la, ma);
        let to = Grid2::new(2, lb, mb);
        let f = |x: f64, y: f64| c0 + cx * x + cy * y + cxy * x * y;
        let v = from.sample(f);
        let p = prolong_bilinear(&from, &v, &to);
        let want = to.sample(f);
        for (a, b) in p.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    /// Prolongation never overshoots: output values stay within the input
    /// range (bilinear interpolation is a convex combination).
    #[test]
    fn prolongation_is_monotone_bounded(
        values in prop::collection::vec(-5.0..5.0f64, 25)
    ) {
        let from = Grid2::new(1, 1, 1); // 4x4 cells → 25 nodes
        let to = Grid2::new(1, 2, 2);
        let lo = values.iter().copied().fold(f64::MAX, f64::min);
        let hi = values.iter().copied().fold(f64::MIN, f64::max);
        let p = prolong_bilinear(&from, &values, &to);
        for v in &p {
            prop_assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12);
        }
    }

    /// Combination of constant fields is the constant (the weights sum to
    /// one), at any level.
    #[test]
    fn combination_partition_of_unity(level in 0u32..5, k in -3.0..3.0f64) {
        let root = 2;
        let sols: Vec<(GridIndex, Vec<f64>)> = Grid2::combination_indices(level)
            .into_iter()
            .map(|idx| {
                let g = Grid2::new(root, idx.l, idx.m);
                (idx, g.sample(|_, _| k))
            })
            .collect();
        let mut w = WorkCounter::new();
        let c = combine(root, level, &sols, &mut w);
        for v in &c {
            prop_assert!((v - k).abs() < 1e-10);
        }
    }

    /// Restrict ∘ expand is the identity on interiors for any boundary.
    #[test]
    fn interior_round_trip(
        interior in prop::collection::vec(-4.0..4.0f64, 9),
        bval in -2.0..2.0f64
    ) {
        let g = Grid2::new(2, 0, 0); // 4x4 cells → 3x3 interior
        let full = g.expand_interior(&interior, |_, _| bval);
        prop_assert_eq!(g.restrict_interior(&full), interior);
    }
}

// ------------------------------------------------------------ discretize

proptest! {
    /// The assembled operator annihilates constants (consistency) for any
    /// velocity/diffusion combination.
    #[test]
    fn stencil_consistency(
        ax in -3.0..3.0f64,
        ay in -3.0..3.0f64,
        eps in 1e-4..1.0f64
    ) {
        let p = Problem {
            ax,
            ay,
            eps,
            t0: 0.0,
            t_end: 1.0,
            kind: solver::problem::ProblemKind::Manufactured,
        };
        let g = Grid2::new(2, 1, 0);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let ones = vec![1.0; d.n()];
        let mut au = d.a.matvec(&ones);
        for &(row, _, _, c) in d.boundary_couplings() {
            au[row] += c;
        }
        prop_assert!(linf_norm(&au) < 1e-8, "residual {}", linf_norm(&au));
    }
}
