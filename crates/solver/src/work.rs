//! Work accounting.
//!
//! The original program is compute-bound: "In this routine, a linear system
//! of equations (Ax = b) is solved for every time step. Moreover, this A
//! matrix must be built up in the program which takes a lot of time."
//! The [`WorkCounter`] tallies an architecture-independent flop estimate of
//! all of that. The cluster simulator divides these flops by a host's
//! effective speed to obtain virtual compute times, which is how Table 1's
//! large levels are reproduced without a 32-machine cluster.

use serde::{Deserialize, Serialize};

/// Tally of the computational work performed by solver components.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkCounter {
    /// Estimated floating-point operations.
    pub flops: u64,
    /// Accepted time steps.
    pub steps: u64,
    /// Rejected (error-controlled) time steps.
    pub rejected: u64,
    /// Linear-solver iterations.
    pub lin_iters: u64,
    /// Preconditioner factorizations built from scratch (pattern + values).
    pub factorizations: u64,
    /// In-place preconditioner refactorizations (values rewritten on the
    /// cached pattern — same float work as a factorization, no allocation).
    #[serde(default)]
    pub refactorizations: u64,
    /// Matrix assemblies.
    pub assemblies: u64,
    /// Batched-RHS dimension: the summed cohort widths of the batched stage
    /// solves this counter's work went through (0 for a purely sequential
    /// run). Batched solves charge *exactly* the flops of their sequential
    /// counterparts — the cost model's ~300 flops/unknown/step calibration
    /// (see [`MEASURED_FLOPS_PER_UNKNOWN_STEP`]) is unaffected — so this
    /// field exists to keep that honest: it records how much of the work
    /// ran k-wide, where wall-clock per flop is lower than the scalar
    /// calibration assumes.
    #[serde(default)]
    pub batched_rhs: u64,
}

impl WorkCounter {
    /// Fresh, zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge a sparse matrix-vector product with `nnz` stored entries.
    pub fn add_matvec(&mut self, nnz: usize) {
        self.flops += 2 * nnz as u64;
    }

    /// Charge a triangular solve pair (ILU preconditioner application).
    pub fn add_precond_apply(&mut self, nnz: usize) {
        self.flops += 2 * nnz as u64;
    }

    /// Charge an ILU(0) factorization.
    pub fn add_factorization(&mut self, nnz: usize) {
        self.factorizations += 1;
        // Each entry participates in a few multiply-subtract updates.
        self.flops += 5 * nnz as u64;
    }

    /// Charge an in-place ILU(0) refactorization: the elimination work is
    /// the same as a full factorization (the savings are allocation and
    /// pattern discovery, which the flop model never counted), but the
    /// event is tallied separately so full vs. in-place rebuilds can be
    /// distinguished in benchmarks and cost calibration.
    pub fn add_refactorization(&mut self, nnz: usize) {
        self.refactorizations += 1;
        self.flops += 5 * nnz as u64;
    }

    /// Charge vector operations over `n` entries (`k` BLAS-1 passes).
    pub fn add_vector_ops(&mut self, n: usize, k: usize) {
        self.flops += (2 * n * k) as u64;
    }

    /// Charge a matrix assembly over `n` unknowns.
    pub fn add_assembly(&mut self, n: usize) {
        self.assemblies += 1;
        // Stencil coefficient computation + triplet handling per node.
        self.flops += 40 * n as u64;
    }

    /// Charge one linear-solver iteration.
    pub fn add_lin_iter(&mut self) {
        self.lin_iters += 1;
    }

    /// Record that one batched stage solve processed this member alongside
    /// `width − 1` others (charge the cohort width). No flops: the batched
    /// kernels are charged per member exactly like the sequential path.
    pub fn add_batched_rhs(&mut self, width: usize) {
        self.batched_rhs += width as u64;
    }

    /// Charge an accepted step.
    pub fn add_step(&mut self) {
        self.steps += 1;
    }

    /// Charge a rejected step.
    pub fn add_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Fold another counter into this one.
    pub fn merge(&mut self, other: &WorkCounter) {
        self.flops += other.flops;
        self.steps += other.steps;
        self.rejected += other.rejected;
        self.lin_iters += other.lin_iters;
        self.factorizations += other.factorizations;
        self.refactorizations += other.refactorizations;
        self.assemblies += other.assemblies;
        self.batched_rhs += other.batched_rhs;
    }
}

/// A-priori flop estimate for `subsolve(l, m)` on a grid rooted at
/// `root` with integrator tolerance `tol` — *before* running it.
///
/// Used by cost-aware dispatch policies to order jobs longest-first. It
/// only needs to rank jobs correctly, not predict absolute cost: per
/// accepted step the solver assembles, factorizes and iterates over
/// O(unknowns) entries, and the step count grows with the sharper of the
/// two mesh widths (advection CFL-like behavior of the error controller)
/// and with tighter tolerances.
pub fn estimate_subsolve_flops(root: u32, l: u32, m: u32, tol: f64) -> f64 {
    let nx = (1u64 << (root + l)) as f64;
    let ny = (1u64 << (root + m)) as f64;
    let unknowns = (nx - 1.0).max(1.0) * (ny - 1.0).max(1.0);
    // Steps scale like the finer direction's resolution; the tolerance
    // term mirrors the ~tol^-1/3 behavior of a second-order controller.
    let steps = nx.max(ny) * (1e-3 / tol.max(1e-12)).powf(1.0 / 3.0);
    MEASURED_FLOPS_PER_UNKNOWN_STEP * unknowns * steps
}

/// Measured flop intensity of the production solver: counted flops per
/// unknown per accepted step, averaged over the combination grids of a
/// level-6 run at `tol = 1e-4` (`BENCH_solver.json`, regenerated by
/// `cargo run -p bench --release --bin solver_bench -- --json`): 301.9.
/// Level-3 runs measure ≈233 — the intensity creeps up with refinement as
/// the ILU-preconditioned BiCGSTAB iteration count grows, so a single
/// constant is an approximation; 300 keeps the a-priori estimate within a
/// few percent of the counters on the grids the dispatch policies actually
/// rank.
pub const MEASURED_FLOPS_PER_UNKNOWN_STEP: f64 = 300.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_ranks_grids_sensibly() {
        // Bigger grids cost more.
        assert!(estimate_subsolve_flops(2, 3, 3, 1e-3) > estimate_subsolve_flops(2, 1, 1, 1e-3));
        // The estimate is symmetric in (l, m) — both diagonals rank alike.
        assert_eq!(
            estimate_subsolve_flops(2, 4, 1, 1e-3),
            estimate_subsolve_flops(2, 1, 4, 1e-3)
        );
        // Tighter tolerance costs more.
        assert!(estimate_subsolve_flops(2, 2, 2, 1e-4) > estimate_subsolve_flops(2, 2, 2, 1e-3));
        // Same shape, one diagonal finer: the finer grid costs more, so
        // LPT ordering fronts the l+m = level diagonal.
        assert!(estimate_subsolve_flops(2, 3, 3, 1e-3) > estimate_subsolve_flops(2, 3, 2, 1e-3));
        // All estimates are positive and finite, even degenerate ones.
        let e = estimate_subsolve_flops(0, 0, 0, 1e-3);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn charges_accumulate() {
        let mut w = WorkCounter::new();
        w.add_matvec(100);
        w.add_matvec(100);
        assert_eq!(w.flops, 400);
        w.add_step();
        w.add_rejected();
        w.add_lin_iter();
        assert_eq!((w.steps, w.rejected, w.lin_iters), (1, 1, 1));
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = WorkCounter::new();
        a.add_factorization(10);
        let mut b = WorkCounter::new();
        b.add_assembly(5);
        b.add_step();
        b.add_refactorization(10);
        a.merge(&b);
        assert_eq!(a.factorizations, 1);
        assert_eq!(a.refactorizations, 1);
        assert_eq!(a.assemblies, 1);
        assert_eq!(a.steps, 1);
        assert_eq!(a.flops, 50 + 200 + 50);
    }

    #[test]
    fn refactorization_charges_factorization_flops() {
        // Same float work, separate event counter: the cost model's flop
        // totals must not depend on which rebuild path ran.
        let mut full = WorkCounter::new();
        full.add_factorization(123);
        let mut inplace = WorkCounter::new();
        inplace.add_refactorization(123);
        assert_eq!(full.flops, inplace.flops);
        assert_eq!(full.factorizations, 1);
        assert_eq!(inplace.refactorizations, 1);
        assert_eq!(inplace.factorizations, 0);
    }

    #[test]
    fn default_is_zero() {
        let w = WorkCounter::default();
        assert_eq!(w.flops, 0);
        assert_eq!(w.steps, 0);
    }
}
