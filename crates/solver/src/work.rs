//! Work accounting.
//!
//! The original program is compute-bound: "In this routine, a linear system
//! of equations (Ax = b) is solved for every time step. Moreover, this A
//! matrix must be built up in the program which takes a lot of time."
//! The [`WorkCounter`] tallies an architecture-independent flop estimate of
//! all of that. The cluster simulator divides these flops by a host's
//! effective speed to obtain virtual compute times, which is how Table 1's
//! large levels are reproduced without a 32-machine cluster.

use serde::{Deserialize, Serialize};

/// Tally of the computational work performed by solver components.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkCounter {
    /// Estimated floating-point operations.
    pub flops: u64,
    /// Accepted time steps.
    pub steps: u64,
    /// Rejected (error-controlled) time steps.
    pub rejected: u64,
    /// Linear-solver iterations.
    pub lin_iters: u64,
    /// Preconditioner factorizations.
    pub factorizations: u64,
    /// Matrix assemblies.
    pub assemblies: u64,
}

impl WorkCounter {
    /// Fresh, zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge a sparse matrix-vector product with `nnz` stored entries.
    pub fn add_matvec(&mut self, nnz: usize) {
        self.flops += 2 * nnz as u64;
    }

    /// Charge a triangular solve pair (ILU preconditioner application).
    pub fn add_precond_apply(&mut self, nnz: usize) {
        self.flops += 2 * nnz as u64;
    }

    /// Charge an ILU(0) factorization.
    pub fn add_factorization(&mut self, nnz: usize) {
        self.factorizations += 1;
        // Each entry participates in a few multiply-subtract updates.
        self.flops += 5 * nnz as u64;
    }

    /// Charge vector operations over `n` entries (`k` BLAS-1 passes).
    pub fn add_vector_ops(&mut self, n: usize, k: usize) {
        self.flops += (2 * n * k) as u64;
    }

    /// Charge a matrix assembly over `n` unknowns.
    pub fn add_assembly(&mut self, n: usize) {
        self.assemblies += 1;
        // Stencil coefficient computation + triplet handling per node.
        self.flops += 40 * n as u64;
    }

    /// Charge one linear-solver iteration.
    pub fn add_lin_iter(&mut self) {
        self.lin_iters += 1;
    }

    /// Charge an accepted step.
    pub fn add_step(&mut self) {
        self.steps += 1;
    }

    /// Charge a rejected step.
    pub fn add_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Fold another counter into this one.
    pub fn merge(&mut self, other: &WorkCounter) {
        self.flops += other.flops;
        self.steps += other.steps;
        self.rejected += other.rejected;
        self.lin_iters += other.lin_iters;
        self.factorizations += other.factorizations;
        self.assemblies += other.assemblies;
    }
}

/// A-priori flop estimate for `subsolve(l, m)` on a grid rooted at
/// `root` with integrator tolerance `tol` — *before* running it.
///
/// Used by cost-aware dispatch policies to order jobs longest-first. It
/// only needs to rank jobs correctly, not predict absolute cost: per
/// accepted step the solver assembles, factorizes and iterates over
/// O(unknowns) entries, and the step count grows with the sharper of the
/// two mesh widths (advection CFL-like behavior of the error controller)
/// and with tighter tolerances.
pub fn estimate_subsolve_flops(root: u32, l: u32, m: u32, tol: f64) -> f64 {
    let nx = (1u64 << (root + l)) as f64;
    let ny = (1u64 << (root + m)) as f64;
    let unknowns = (nx - 1.0).max(1.0) * (ny - 1.0).max(1.0);
    // Steps scale like the finer direction's resolution; the tolerance
    // term mirrors the ~tol^-1/3 behavior of a second-order controller.
    let steps = nx.max(ny) * (1e-3 / tol.max(1e-12)).powf(1.0 / 3.0);
    // ~100 flops per unknown per step (assembly + ILU + BiCGSTAB sweeps).
    100.0 * unknowns * steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_ranks_grids_sensibly() {
        // Bigger grids cost more.
        assert!(estimate_subsolve_flops(2, 3, 3, 1e-3) > estimate_subsolve_flops(2, 1, 1, 1e-3));
        // The estimate is symmetric in (l, m) — both diagonals rank alike.
        assert_eq!(
            estimate_subsolve_flops(2, 4, 1, 1e-3),
            estimate_subsolve_flops(2, 1, 4, 1e-3)
        );
        // Tighter tolerance costs more.
        assert!(estimate_subsolve_flops(2, 2, 2, 1e-4) > estimate_subsolve_flops(2, 2, 2, 1e-3));
        // Same shape, one diagonal finer: the finer grid costs more, so
        // LPT ordering fronts the l+m = level diagonal.
        assert!(estimate_subsolve_flops(2, 3, 3, 1e-3) > estimate_subsolve_flops(2, 3, 2, 1e-3));
        // All estimates are positive and finite, even degenerate ones.
        let e = estimate_subsolve_flops(0, 0, 0, 1e-3);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn charges_accumulate() {
        let mut w = WorkCounter::new();
        w.add_matvec(100);
        w.add_matvec(100);
        assert_eq!(w.flops, 400);
        w.add_step();
        w.add_rejected();
        w.add_lin_iter();
        assert_eq!((w.steps, w.rejected, w.lin_iters), (1, 1, 1));
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = WorkCounter::new();
        a.add_factorization(10);
        let mut b = WorkCounter::new();
        b.add_assembly(5);
        b.add_step();
        a.merge(&b);
        assert_eq!(a.factorizations, 1);
        assert_eq!(a.assemblies, 1);
        assert_eq!(a.steps, 1);
        assert_eq!(a.flops, 50 + 200);
    }

    #[test]
    fn default_is_zero() {
        let w = WorkCounter::default();
        assert_eq!(w.flops, 0);
        assert_eq!(w.steps, 0);
    }
}
