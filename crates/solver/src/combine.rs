//! Prolongation and the sparse-grid combination formula.
//!
//! After the per-grid solves, "the coarse approximations on the visited
//! grids are known and are prolongated onto the finest grid used in the
//! application to obtain a more accurate solution for it" (§3). The
//! combination technique evaluates
//!
//! ```text
//! u_c  =  Σ_{l+m = L} P u_{l,m}  −  Σ_{l+m = L−1} P u_{l,m}
//! ```
//!
//! on the isotropic finest grid `(L, L)`, where `P` is bilinear
//! prolongation. Because the grids are nested dyadic refinements, coarse
//! nodes coincide exactly with fine nodes and the interpolation is exact
//! for bilinear functions.

use crate::grid::{Grid2, GridIndex};
use crate::work::WorkCounter;

/// Bilinearly interpolate `values` (full node vector on `from`) onto the
/// nodes of `to`. Both grids span the unit square.
pub fn prolong_bilinear(from: &Grid2, values: &[f64], to: &Grid2) -> Vec<f64> {
    assert_eq!(values.len(), from.node_count());
    // Locate the cell containing coordinate `c` along an axis with `n`
    // cells of width `h`; returns (cell index, barycentric weight). Exact
    // at coinciding nodes, including the far boundary.
    fn locate(c: f64, h: f64, n: usize) -> (usize, f64) {
        let f = (c / h).max(0.0);
        let i0 = f.floor() as usize;
        if i0 >= n {
            (n - 1, 1.0)
        } else {
            (i0, f - i0 as f64)
        }
    }
    let mut out = Vec::with_capacity(to.node_count());
    for j in 0..=to.ny {
        let y = to.y(j);
        let (j0, ty) = locate(y, from.hy, from.ny);
        for i in 0..=to.nx {
            let x = to.x(i);
            let (i0, tx) = locate(x, from.hx, from.nx);
            let v00 = values[from.node_idx(i0, j0)];
            let v10 = values[from.node_idx(i0 + 1, j0)];
            let v01 = values[from.node_idx(i0, j0 + 1)];
            let v11 = values[from.node_idx(i0 + 1, j0 + 1)];
            out.push(
                v00 * (1.0 - tx) * (1.0 - ty)
                    + v10 * tx * (1.0 - ty)
                    + v01 * (1.0 - tx) * ty
                    + v11 * tx * ty,
            );
        }
    }
    out
}

/// Apply the combination formula at `level` over per-grid solutions (full
/// node vectors, keyed by their grid index). Returns the combined full node
/// vector on the finest grid `(level, level)`.
///
/// Panics when a required grid of the two diagonals is missing.
///
/// Generic over the solution storage (`Vec<f64>`, `&[f64]`, …) so shared
/// buffers can be combined without first deep-copying them into owned
/// vectors.
pub fn combine<S: AsRef<[f64]>>(
    root: u32,
    level: u32,
    solutions: &[(GridIndex, S)],
    work: &mut WorkCounter,
) -> Vec<f64> {
    let fine = Grid2::finest(root, level);
    let mut acc = vec![0.0; fine.node_count()];
    let lookup = |idx: GridIndex| -> &[f64] {
        solutions
            .iter()
            .find(|(g, _)| *g == idx)
            .map(|(_, v)| v.as_ref())
            .unwrap_or_else(|| panic!("combination: missing grid {idx}"))
    };
    // Positive diagonal l+m = level.
    for l in 0..=level {
        let idx = GridIndex::new(l, level - l);
        let g = Grid2::new(root, idx.l, idx.m);
        let p = prolong_bilinear(&g, lookup(idx), &fine);
        for (a, v) in acc.iter_mut().zip(&p) {
            *a += v;
        }
        work.add_vector_ops(fine.node_count(), 5);
    }
    // Negative diagonal l+m = level-1 (absent at level 0).
    if level >= 1 {
        for l in 0..level {
            let idx = GridIndex::new(l, level - 1 - l);
            let g = Grid2::new(root, idx.l, idx.m);
            let p = prolong_bilinear(&g, lookup(idx), &fine);
            for (a, v) in acc.iter_mut().zip(&p) {
                *a -= v;
            }
            work.add_vector_ops(fine.node_count(), 5);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l2_norm;
    use crate::problem::Problem;

    #[test]
    fn prolongation_is_exact_for_bilinear_functions() {
        let coarse = Grid2::new(2, 0, 1);
        let fine = Grid2::new(2, 2, 2);
        let f = |x: f64, y: f64| 2.0 + 3.0 * x - 1.5 * y + 0.25 * x * y;
        let cv = coarse.sample(f);
        let fv = prolong_bilinear(&coarse, &cv, &fine);
        let want = fine.sample(f);
        for (a, b) in fv.iter().zip(&want) {
            assert!((a - b).abs() < 1e-13, "{a} vs {b}");
        }
    }

    #[test]
    fn prolongation_preserves_constants() {
        let coarse = Grid2::new(2, 1, 0);
        let fine = Grid2::new(2, 3, 3);
        let cv = coarse.sample(|_, _| 7.0);
        let fv = prolong_bilinear(&coarse, &cv, &fine);
        assert!(fv.iter().all(|v| (v - 7.0).abs() < 1e-13));
    }

    #[test]
    fn prolongation_to_same_grid_is_identity() {
        let g = Grid2::new(2, 1, 1);
        let v = g.sample(|x, y| (x * 7.0).sin() + y);
        let p = prolong_bilinear(&g, &v, &g);
        for (a, b) in p.iter().zip(&v) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn nested_coarse_nodes_coincide_with_fine() {
        let coarse = Grid2::new(2, 0, 0);
        let fine = Grid2::new(2, 1, 1);
        let v = coarse.sample(|x, y| x * x + y); // not bilinear
        let p = prolong_bilinear(&coarse, &v, &fine);
        // Every even fine node coincides with a coarse node: value must be
        // exactly the coarse one.
        for j in (0..=fine.ny).step_by(2) {
            for i in (0..=fine.nx).step_by(2) {
                let pc = v[coarse.node_idx(i / 2, j / 2)];
                let pf = p[fine.node_idx(i, j)];
                assert!((pc - pf).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn combination_weights_sum_to_one() {
        // Combining constant-1 fields must give constant 1: (level+1) - level.
        let root = 2;
        let level = 3;
        let mut sols = Vec::new();
        for idx in Grid2::combination_indices(level) {
            let g = Grid2::new(root, idx.l, idx.m);
            sols.push((idx, g.sample(|_, _| 1.0)));
        }
        let mut w = WorkCounter::new();
        let c = combine(root, level, &sols, &mut w);
        assert!(c.iter().all(|v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn combination_level_zero_is_single_grid() {
        let root = 2;
        let g = Grid2::new(root, 0, 0);
        let v = g.sample(|x, y| x + y);
        let mut w = WorkCounter::new();
        let c = combine(root, 0, &[(GridIndex::new(0, 0), v.clone())], &mut w);
        for (a, b) in c.iter().zip(&v) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn combination_beats_equal_cost_single_grids() {
        // The headline property of the combination technique: combining the
        // anisotropic level-L grids approximates the smooth field better
        // than any single member grid of the same cell count.
        let root = 2;
        let level = 3;
        let p = Problem::transport_benchmark();
        let t = 0.1;
        let f = |x: f64, y: f64| p.exact(x, y, t);
        let fine = Grid2::finest(root, level);
        let want = fine.sample(f);

        let mut sols = Vec::new();
        for idx in Grid2::combination_indices(level) {
            let g = Grid2::new(root, idx.l, idx.m);
            sols.push((idx, g.sample(f)));
        }
        let mut w = WorkCounter::new();
        let combined = combine(root, level, &sols, &mut w);
        let comb_err = {
            let d: Vec<f64> = combined.iter().zip(&want).map(|(a, b)| a - b).collect();
            l2_norm(&d)
        };
        // Worst single level-L grid error (same cell count as each member).
        let mut best_single = f64::INFINITY;
        for l in 0..=level {
            let g = Grid2::new(root, l, level - l);
            let v = prolong_bilinear(&g, &g.sample(f), &fine);
            let d: Vec<f64> = v.iter().zip(&want).map(|(a, b)| a - b).collect();
            best_single = best_single.min(l2_norm(&d));
        }
        assert!(
            comb_err < best_single,
            "combination ({comb_err:.3e}) should beat the best single \
             level-{level} grid ({best_single:.3e})"
        );
    }

    #[test]
    #[should_panic(expected = "missing grid")]
    fn combine_panics_on_missing_grid() {
        let mut w = WorkCounter::new();
        let g = Grid2::new(2, 0, 1);
        let _ = combine(
            2,
            1,
            &[(GridIndex::new(0, 1), g.sample(|_, _| 0.0))],
            &mut w,
        );
    }
}
