//! Multi-RHS batched subsolves: one worker, one sparsity pattern, `k`
//! grids integrated in lockstep.
//!
//! The combination technique hands a worker many grids of the *same shape*
//! (same `(root, l, m)`, hence the same matrix pattern) whenever jobs are
//! bundled — differing only in time window, tolerance, or initial data.
//! The sequential path re-runs the whole ROS2 machinery per grid; the
//! batched path here factors each stage matrix once per distinct step size
//! and sweeps all members through the triangular solves, matvecs and
//! BLAS-1 updates in an SoA layout ([`MultiVec`], member-major rows), where
//! the member axis vectorizes perfectly — including through the
//! level-scheduled ILU(0) sweeps, whose *row* dependencies do not couple
//! members at all.
//!
//! **Bitwise contract.** For every member, the batched integrator performs
//! exactly the floating-point operations of the sequential
//! [`integrate_with`] path, in the same order:
//!
//! * elementwise kernels touch each member's element with the same
//!   expression tree the scalar kernels use (lanes never interact);
//! * per-member reductions accumulate in node order on [`Tier::Exact`]
//!   (matching `dot_exact`) and in the fixed stride-8 / stride-4 patterns
//!   of `dot_fast` / the fast error norm on [`Tier::Fast`];
//! * the adaptive controller, dead band, and (re)factorization decisions
//!   are mirrored per member, keyed on exact step/time bits.
//!
//! So `subsolve_batch` is bit-identical to running `subsolve_with` per
//! request on its tier — the batching is purely a wall-clock optimization.
//!
//! **Cohorts.** Members advance on their own adaptive clocks, so after the
//! first rejected step they can disagree on `t` and `dt`. Each pass groups
//! the unfinished members into cohorts with equal `(t, dt)` bits (the
//! forcing is evaluated once per cohort and the stage matrix depends only
//! on `dt`), steps every cohort once, and repeats. Identical requests stay
//! in one cohort for the whole run; divergent ones gracefully degrade
//! toward sequential stepping without ever changing their results.
//!
//! **Work accounting.** Every member is charged *exactly* what a fresh
//! sequential run would charge (flops, steps, iterations, assembly; the
//! factorization/refactorization split may differ but both charge the same
//! flops). The stage-matrix pool's own factor/refactor work — the batching
//! overhead amortized across members — is deliberately uncharged so the
//! cost model stays comparable to the sequential calibration; the new
//! [`WorkCounter::batched_rhs`] dimension records the cohort widths a
//! member's solves ran at.

use std::sync::Arc;

use crate::assemble::{assemble, Discretization};
use crate::linsolve::{Ilu0, SolveError, SolveStats};
use crate::rosenbrock::{IntegrateError, Ros2Options, Ros2Stats, Ros2Workspace, GAMMA};
use crate::simd::Tier;
use crate::sparse::{CachedStage, Csr, MultiVec};
use crate::subsolve::{subsolve_tiered, SubsolveRequest, SubsolveResult};
use crate::work::WorkCounter;

// ---------------------------------------------------------------------------
// Per-member reductions over the SoA layout.
//
// `a` and `b` are member-major (`data[i*k + j]` = node i, member j). The
// exact tier accumulates each member in node order — the same sequence of
// adds `dot_exact` performs on a single vector. The fast tier reproduces
// `dot_fast`'s fixed pattern per member: eight partial sums (positions
// congruent mod 8), lanewise combine `c_l = s_l + s_{l+4}`, final
// `(c0+c1)+(c2+c3)`, sequential tail.
// ---------------------------------------------------------------------------

fn dot_multi(
    tier: Tier,
    k: usize,
    a: &[f64],
    b: &[f64],
    out: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % k.max(1), 0);
    out.clear();
    out.resize(k, 0.0);
    match tier {
        Tier::Exact => {
            for (ra, rb) in a.chunks_exact(k).zip(b.chunks_exact(k)) {
                for ((o, &x), &y) in out.iter_mut().zip(ra).zip(rb) {
                    *o += x * y;
                }
            }
        }
        Tier::Fast => {
            let n = a.len() / k;
            scratch.clear();
            scratch.resize(8 * k, 0.0);
            let mut i = 0;
            while i + 8 <= n {
                for l in 0..8 {
                    let base = (i + l) * k;
                    let row = &mut scratch[l * k..(l + 1) * k];
                    for (j, s) in row.iter_mut().enumerate() {
                        *s += a[base + j] * b[base + j];
                    }
                }
                i += 8;
            }
            for (j, o) in out.iter_mut().enumerate() {
                let c0 = scratch[j] + scratch[4 * k + j];
                let c1 = scratch[k + j] + scratch[5 * k + j];
                let c2 = scratch[2 * k + j] + scratch[6 * k + j];
                let c3 = scratch[3 * k + j] + scratch[7 * k + j];
                *o = (c0 + c1) + (c2 + c3);
            }
            while i < n {
                let base = i * k;
                for (j, o) in out.iter_mut().enumerate() {
                    *o += a[base + j] * b[base + j];
                }
                i += 1;
            }
        }
    }
}

/// Per-member weighted RMS error norm (the batched `error_norm`). The
/// per-element term `(e / (tol·(1+|u|)))²` is the scalar expression tree;
/// the exact tier sums in node order, the fast tier in the fixed stride-4
/// pattern of the sequential fast error norm (`(s0+s1)+(s2+s3)` combine,
/// sequential tail).
fn error_norm_multi(
    tier: Tier,
    k: usize,
    err: &[f64],
    u: &[f64],
    tol: &[f64],
    out: &mut Vec<f64>,
    scratch: &mut Vec<f64>,
) {
    debug_assert_eq!(err.len(), u.len());
    debug_assert_eq!(tol.len(), k);
    let n = err.len() / k.max(1);
    out.clear();
    out.resize(k, 0.0);
    match tier {
        Tier::Exact => {
            for (re, ru) in err.chunks_exact(k).zip(u.chunks_exact(k)) {
                for (((o, &e), &ui), &tj) in out.iter_mut().zip(re).zip(ru).zip(tol) {
                    let w = tj * (1.0 + ui.abs());
                    let r = e / w;
                    *o += r * r;
                }
            }
        }
        Tier::Fast => {
            scratch.clear();
            scratch.resize(4 * k, 0.0);
            let mut i = 0;
            while i + 4 <= n {
                for l in 0..4 {
                    let base = (i + l) * k;
                    let row = &mut scratch[l * k..(l + 1) * k];
                    for (j, s) in row.iter_mut().enumerate() {
                        let w = tol[j] * (1.0 + u[base + j].abs());
                        let r = err[base + j] / w;
                        *s += r * r;
                    }
                }
                i += 4;
            }
            for (j, o) in out.iter_mut().enumerate() {
                *o = (scratch[j] + scratch[k + j]) + (scratch[2 * k + j] + scratch[3 * k + j]);
            }
            while i < n {
                let base = i * k;
                for (j, o) in out.iter_mut().enumerate() {
                    let w = tol[j] * (1.0 + u[base + j].abs());
                    let r = err[base + j] / w;
                    *o += r * r;
                }
                i += 1;
            }
        }
    }
    for o in out.iter_mut() {
        *o = (*o / n.max(1) as f64).sqrt();
    }
}

// ---------------------------------------------------------------------------
// Elementwise SoA kernels. Flat over `k*n` where every member shares the
// scalar coefficient, member-major where each member has its own. Per
// element these are the exact expression trees of the sequential loops and
// the `simd` update kernels, so results are bit-identical per member on
// every tier. The member axis is contiguous, so the compiler's
// autovectorizer gets stride-1 loads for free.
// ---------------------------------------------------------------------------

/// `r[i] = b[i] - r[i]` — the initial BiCGSTAB residual from `r = A·x`.
fn residual_from_b(b: &[f64], r: &mut [f64]) {
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
}

/// `u_stage = u + dt·k1` (ROS2 stage-2 state).
fn stage_u_multi(dt_step: f64, u: &[f64], k1: &[f64], out: &mut [f64]) {
    for ((o, ui), k1i) in out.iter_mut().zip(u).zip(k1) {
        *o = ui + dt_step * k1i;
    }
}

/// `f2 -= 2·k1` (ROS2 stage-2 right-hand side).
fn stage_f2_multi(f2: &mut [f64], k1: &[f64]) {
    for (f2i, k1i) in f2.iter_mut().zip(k1) {
        *f2i -= 2.0 * k1i;
    }
}

/// `u_new = u + dt·(1.5·k1 + 0.5·k2)` (ROS2 candidate).
fn unew_multi(dt_step: f64, u: &[f64], k1: &[f64], k2: &[f64], out: &mut [f64]) {
    for (((o, ui), k1i), k2i) in out.iter_mut().zip(u).zip(k1).zip(k2) {
        *o = ui + dt_step * (1.5 * k1i + 0.5 * k2i);
    }
}

/// `err = 0.5·dt·(k1 + k2)` (embedded error estimate).
fn errvec_multi(dt_step: f64, k1: &[f64], k2: &[f64], out: &mut [f64]) {
    for ((o, k1i), k2i) in out.iter_mut().zip(k1).zip(k2) {
        *o = 0.5 * dt_step * (k1i + k2i);
    }
}

/// Per-member `p = r + beta_j·(p − omega_j·v)` (`simd::p_update`).
fn p_update_multi(k: usize, p: &mut [f64], r: &[f64], beta: &[f64], omega: &[f64], v: &[f64]) {
    for ((rp, rr), rv) in p
        .chunks_exact_mut(k)
        .zip(r.chunks_exact(k))
        .zip(v.chunks_exact(k))
    {
        for ((((pi, &ri), &vi), &bj), &oj) in rp.iter_mut().zip(rr).zip(rv).zip(beta).zip(omega) {
            *pi = ri + bj * (*pi - oj * vi);
        }
    }
}

/// Per-member `s = r − alpha_j·v` (`simd::s_update`).
fn s_update_multi(k: usize, s: &mut [f64], r: &[f64], alpha: &[f64], v: &[f64]) {
    for ((rs, rr), rv) in s
        .chunks_exact_mut(k)
        .zip(r.chunks_exact(k))
        .zip(v.chunks_exact(k))
    {
        for (((si, &ri), &vi), &aj) in rs.iter_mut().zip(rr).zip(rv).zip(alpha) {
            *si = ri - aj * vi;
        }
    }
}

/// Per-member `x += alpha_j·p + omega_j·s` (`simd::x_update`).
fn x_update_multi(k: usize, x: &mut [f64], alpha: &[f64], p: &[f64], omega: &[f64], s: &[f64]) {
    for ((rx, rp), rs) in x
        .chunks_exact_mut(k)
        .zip(p.chunks_exact(k))
        .zip(s.chunks_exact(k))
    {
        for ((((xi, &pi), &si), &aj), &oj) in rx.iter_mut().zip(rp).zip(rs).zip(alpha).zip(omega) {
            *xi += aj * pi + oj * si;
        }
    }
}

/// Single-column `y_j += a·x_j` (`simd::axpy` on one member).
fn axpy_col(k: usize, j: usize, y: &mut [f64], a: f64, x: &[f64]) {
    for (ry, rx) in y.chunks_exact_mut(k).zip(x.chunks_exact(k)) {
        ry[j] += a * rx[j];
    }
}

/// Copy member column `j` from `src` to `dst`.
fn copy_col(k: usize, j: usize, dst: &mut [f64], src: &[f64]) {
    for (rd, rs) in dst.chunks_exact_mut(k).zip(src.chunks_exact(k)) {
        rd[j] = rs[j];
    }
}

// ---------------------------------------------------------------------------
// Batched BiCGSTAB.
// ---------------------------------------------------------------------------

/// Krylov scratch for [`bicgstab_multi`]: the eight stage vectors as
/// [`MultiVec`]s plus per-member scalar state. Reused across cohorts and
/// steps; warm calls allocate nothing.
#[derive(Default)]
struct BatchKrylov {
    r: MultiVec,
    r_hat: MultiVec,
    v: MultiVec,
    p: MultiVec,
    p_hat: MultiVec,
    s: MultiVec,
    s_hat: MultiVec,
    t: MultiVec,
    /// Converged columns of `x`, snapshotted the moment their member exits
    /// so later full-batch updates cannot disturb them.
    x_done: MultiVec,
    rho: Vec<f64>,
    alpha: Vec<f64>,
    omega: Vec<f64>,
    beta: Vec<f64>,
    bnorm: Vec<f64>,
    resid: Vec<f64>,
    rho_new: Vec<f64>,
    aux: Vec<f64>,
    ts: Vec<f64>,
    live: Vec<bool>,
    have: Vec<bool>,
    scratch: Vec<f64>,
    out: Vec<Option<Result<SolveStats, SolveError>>>,
}

impl BatchKrylov {
    fn ensure(&mut self, k: usize, n: usize) {
        for mv in [
            &mut self.r,
            &mut self.r_hat,
            &mut self.v,
            &mut self.p,
            &mut self.p_hat,
            &mut self.s,
            &mut self.s_hat,
            &mut self.t,
            &mut self.x_done,
        ] {
            mv.ensure(k, n);
        }
        for sv in [
            &mut self.rho,
            &mut self.alpha,
            &mut self.omega,
            &mut self.beta,
            &mut self.bnorm,
            &mut self.resid,
            &mut self.rho_new,
            &mut self.aux,
            &mut self.ts,
        ] {
            sv.clear();
            sv.resize(k, 0.0);
        }
        self.live.clear();
        self.live.resize(k, false);
        self.have.clear();
        self.have.resize(k, false);
        self.out.clear();
        self.out.resize(k, None);
    }
}

/// Preconditioned BiCGSTAB over `k` right-hand sides sharing one matrix and
/// one ILU(0) factorization. Per member this replays `bicgstab_tiered`
/// exactly: the same reductions (in the member's node order), the same
/// update kernels, the same breakdown tests at the same iteration numbers.
/// Members converge (or fail) independently: a finished member's solution
/// column is snapshotted and its lanes free-run as garbage — IEEE arithmetic
/// never traps and columns never mix, so the survivors are unaffected — and
/// every snapshot is restored before returning.
///
/// Outcomes are left in `kws.out[j]` (`None` for members not in `active`).
/// Work is charged per *live* member exactly as the sequential solver
/// charges its single counter.
#[allow(clippy::too_many_arguments)] // a solver signature, mirrors bicgstab_tiered
fn bicgstab_multi(
    a: &Csr,
    ilu: &Ilu0,
    b: &MultiVec,
    x: &mut MultiVec,
    rel_tol: f64,
    max_iters: usize,
    tier: Tier,
    kws: &mut BatchKrylov,
    active: &[bool],
    works: &mut [WorkCounter],
) {
    let n = a.n();
    let k = b.k();
    debug_assert_eq!(x.k(), k);
    debug_assert_eq!(b.n(), n);
    debug_assert_eq!(active.len(), k);
    debug_assert_eq!(works.len(), k);
    kws.ensure(k, n);

    for (w, &act) in works.iter_mut().zip(active) {
        if act {
            w.add_batched_rhs(k);
        }
    }

    // bnorm_j = ||b_j||.max(1e-300)
    dot_multi(
        tier,
        k,
        b.as_slice(),
        b.as_slice(),
        &mut kws.aux,
        &mut kws.scratch,
    );
    for (bn, &d) in kws.bnorm.iter_mut().zip(&kws.aux) {
        *bn = d.sqrt().max(1e-300);
    }

    a.matvec_multi_into(x, &mut kws.r);
    for (w, &act) in works.iter_mut().zip(active) {
        if act {
            w.add_matvec(a.nnz());
        }
    }
    residual_from_b(b.as_slice(), kws.r.as_mut_slice());
    kws.r_hat.as_mut_slice().copy_from_slice(kws.r.as_slice());
    kws.rho.fill(1.0);
    kws.alpha.fill(1.0);
    kws.omega.fill(1.0);
    kws.v.fill(0.0);
    kws.p.fill(0.0);
    for (l, &act) in kws.live.iter_mut().zip(active) {
        *l = act;
    }

    dot_multi(
        tier,
        k,
        kws.r.as_slice(),
        kws.r.as_slice(),
        &mut kws.aux,
        &mut kws.scratch,
    );
    for j in 0..k {
        kws.resid[j] = kws.aux[j].sqrt() / kws.bnorm[j];
        if kws.live[j] && kws.resid[j] <= rel_tol {
            kws.out[j] = Some(Ok(SolveStats {
                iterations: 0,
                residual: kws.resid[j],
            }));
            kws.live[j] = false;
            copy_col(k, j, kws.x_done.as_mut_slice(), x.as_slice());
            kws.have[j] = true;
        }
    }

    for it in 1..=max_iters {
        if !kws.live.iter().any(|&l| l) {
            break;
        }
        for (w, &l) in works.iter_mut().zip(&kws.live) {
            if l {
                w.add_lin_iter();
            }
        }
        dot_multi(
            tier,
            k,
            kws.r_hat.as_slice(),
            kws.r.as_slice(),
            &mut kws.rho_new,
            &mut kws.scratch,
        );
        for j in 0..k {
            if kws.live[j] && kws.rho_new[j].abs() < 1e-300 {
                kws.out[j] = Some(Err(SolveError::Breakdown { iterations: it - 1 }));
                kws.live[j] = false;
                copy_col(k, j, kws.x_done.as_mut_slice(), x.as_slice());
                kws.have[j] = true;
            }
        }
        // Dead members compute garbage coefficients; their columns are dead
        // and every live column only ever sees its own coefficient.
        for j in 0..k {
            kws.beta[j] = (kws.rho_new[j] / kws.rho[j]) * (kws.alpha[j] / kws.omega[j]);
        }
        p_update_multi(
            k,
            kws.p.as_mut_slice(),
            kws.r.as_slice(),
            &kws.beta,
            &kws.omega,
            kws.v.as_slice(),
        );
        ilu.apply_multi(&kws.p, &mut kws.p_hat);
        for (w, &l) in works.iter_mut().zip(&kws.live) {
            if l {
                w.add_precond_apply(a.nnz());
            }
        }
        a.matvec_multi_into(&kws.p_hat, &mut kws.v);
        for (w, &l) in works.iter_mut().zip(&kws.live) {
            if l {
                w.add_matvec(a.nnz());
            }
        }
        dot_multi(
            tier,
            k,
            kws.r_hat.as_slice(),
            kws.v.as_slice(),
            &mut kws.aux,
            &mut kws.scratch,
        );
        for j in 0..k {
            if kws.live[j] && kws.aux[j].abs() < 1e-300 {
                kws.out[j] = Some(Err(SolveError::Breakdown { iterations: it }));
                kws.live[j] = false;
                copy_col(k, j, kws.x_done.as_mut_slice(), x.as_slice());
                kws.have[j] = true;
            }
        }
        for j in 0..k {
            kws.alpha[j] = kws.rho_new[j] / kws.aux[j];
        }
        s_update_multi(
            k,
            kws.s.as_mut_slice(),
            kws.r.as_slice(),
            &kws.alpha,
            kws.v.as_slice(),
        );
        dot_multi(
            tier,
            k,
            kws.s.as_slice(),
            kws.s.as_slice(),
            &mut kws.aux,
            &mut kws.scratch,
        );
        for (j, work) in works.iter_mut().enumerate().take(k) {
            if !kws.live[j] {
                continue;
            }
            let snorm = kws.aux[j].sqrt() / kws.bnorm[j];
            if snorm <= rel_tol {
                axpy_col(k, j, x.as_mut_slice(), kws.alpha[j], kws.p_hat.as_slice());
                work.add_vector_ops(n, 6);
                kws.out[j] = Some(Ok(SolveStats {
                    iterations: it,
                    residual: snorm,
                }));
                kws.live[j] = false;
                copy_col(k, j, kws.x_done.as_mut_slice(), x.as_slice());
                kws.have[j] = true;
            }
        }
        if !kws.live.iter().any(|&l| l) {
            break;
        }
        ilu.apply_multi(&kws.s, &mut kws.s_hat);
        for (w, &l) in works.iter_mut().zip(&kws.live) {
            if l {
                w.add_precond_apply(a.nnz());
            }
        }
        a.matvec_multi_into(&kws.s_hat, &mut kws.t);
        for (w, &l) in works.iter_mut().zip(&kws.live) {
            if l {
                w.add_matvec(a.nnz());
            }
        }
        dot_multi(
            tier,
            k,
            kws.t.as_slice(),
            kws.t.as_slice(),
            &mut kws.aux,
            &mut kws.scratch,
        );
        for j in 0..k {
            if kws.live[j] && kws.aux[j].abs() < 1e-300 {
                kws.out[j] = Some(Err(SolveError::Breakdown { iterations: it }));
                kws.live[j] = false;
                copy_col(k, j, kws.x_done.as_mut_slice(), x.as_slice());
                kws.have[j] = true;
            }
        }
        dot_multi(
            tier,
            k,
            kws.t.as_slice(),
            kws.s.as_slice(),
            &mut kws.ts,
            &mut kws.scratch,
        );
        for j in 0..k {
            kws.omega[j] = kws.ts[j] / kws.aux[j];
        }
        for j in 0..k {
            if kws.live[j] && kws.omega[j].abs() < 1e-300 {
                kws.out[j] = Some(Err(SolveError::Breakdown { iterations: it }));
                kws.live[j] = false;
                copy_col(k, j, kws.x_done.as_mut_slice(), x.as_slice());
                kws.have[j] = true;
            }
        }
        x_update_multi(
            k,
            x.as_mut_slice(),
            &kws.alpha,
            kws.p_hat.as_slice(),
            &kws.omega,
            kws.s_hat.as_slice(),
        );
        // r = s - omega * t, the same expression shape as the s-update.
        s_update_multi(
            k,
            kws.r.as_mut_slice(),
            kws.s.as_slice(),
            &kws.omega,
            kws.t.as_slice(),
        );
        for (w, &l) in works.iter_mut().zip(&kws.live) {
            if l {
                w.add_vector_ops(n, 10);
            }
        }
        dot_multi(
            tier,
            k,
            kws.r.as_slice(),
            kws.r.as_slice(),
            &mut kws.aux,
            &mut kws.scratch,
        );
        for j in 0..k {
            if !kws.live[j] {
                continue;
            }
            kws.resid[j] = kws.aux[j].sqrt() / kws.bnorm[j];
            if kws.resid[j] <= rel_tol {
                kws.out[j] = Some(Ok(SolveStats {
                    iterations: it,
                    residual: kws.resid[j],
                }));
                kws.live[j] = false;
                copy_col(k, j, kws.x_done.as_mut_slice(), x.as_slice());
                kws.have[j] = true;
            }
        }
        std::mem::swap(&mut kws.rho, &mut kws.rho_new);
    }

    for j in 0..k {
        if kws.live[j] {
            kws.out[j] = Some(Err(SolveError::MaxIterations {
                residual: kws.resid[j],
            }));
            kws.live[j] = false;
        }
    }
    for j in 0..k {
        if kws.have[j] {
            copy_col(k, j, x.as_mut_slice(), kws.x_done.as_slice());
        }
    }
}

// ---------------------------------------------------------------------------
// The batched integrator.
// ---------------------------------------------------------------------------

/// A pooled stage system `I − γ·dt·A` with its ILU(0) factors, keyed on the
/// exact bits of `dt`.
struct BatchStage {
    dt: f64,
    stamp: u64,
    cache: CachedStage,
    ilu: Ilu0,
}

/// Find (or build) the pool entry for `dt_step`, returning its index. Pool
/// maintenance work is charged to a throwaway counter: members are charged
/// the factorizations *their* sequential runs would perform (see the module
/// docs), not the pool's amortized upkeep.
fn acquire_stage(
    stages: &mut Vec<BatchStage>,
    clock: &mut u64,
    a: &Csr,
    dt_step: f64,
    cap: usize,
) -> usize {
    *clock += 1;
    if let Some(i) = stages.iter().position(|s| s.dt == dt_step) {
        stages[i].stamp = *clock;
        return i;
    }
    let mut dummy = WorkCounter::new();
    if stages.len() < cap.max(1) {
        let cache = CachedStage::new(a, GAMMA * dt_step);
        let ilu = Ilu0::new(cache.matrix(), &mut dummy);
        stages.push(BatchStage {
            dt: dt_step,
            stamp: *clock,
            cache,
            ilu,
        });
        return stages.len() - 1;
    }
    let i = stages
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.stamp)
        .map(|(i, _)| i)
        .expect("cap >= 1");
    let st = &mut stages[i];
    st.cache.rewrite(a, GAMMA * dt_step);
    st.ilu.refactor(st.cache.matrix(), &mut dummy);
    st.dt = dt_step;
    st.stamp = *clock;
    i
}

/// Reusable state for [`integrate_batch`] and [`subsolve_batch`]: the SoA
/// stage vectors, the batched Krylov scratch, the stage-matrix pool, the
/// per-member integrator state, and a sequential [`Ros2Workspace`] for
/// singleton groups. After the first cohort at a given shape the step loop
/// performs zero heap allocations.
#[derive(Default)]
pub struct BatchWorkspace {
    u: MultiVec,
    f1: MultiVec,
    f2: MultiVec,
    k1: MultiVec,
    k2: MultiVec,
    u_stage: MultiVec,
    u_new: MultiVec,
    err: MultiVec,
    g: Vec<f64>,
    krylov: BatchKrylov,
    stages: Vec<BatchStage>,
    clock: u64,
    stage_nnz: usize,
    order: Vec<(u64, u64, usize)>,
    ids: Vec<usize>,
    cw: Vec<WorkCounter>,
    active: Vec<bool>,
    enorm: Vec<f64>,
    tolv: Vec<f64>,
    nscratch: Vec<f64>,
    t: Vec<f64>,
    dt: Vec<f64>,
    stage_dt: Vec<f64>,
    steps: Vec<usize>,
    rejected: Vec<usize>,
    refacts: Vec<usize>,
    done: Vec<bool>,
    errors: Vec<Option<IntegrateError>>,
    seq: Ros2Workspace,
}

impl BatchWorkspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Integrate `k` interior vectors over `[t0, t1]` on one shared
/// [`Discretization`], each under its own tolerance, stepping equal-`(t,
/// dt)` cohorts together. Per member the results (solution bits, step
/// sequence, work counters up to the factorization/refactorization split
/// and [`WorkCounter::batched_rhs`]) are exactly those of a fresh
/// sequential [`crate::rosenbrock::integrate`] run at the same tier.
///
/// `us[m]` is updated in place to the solution at `t1` (on success);
/// `results` is cleared and refilled with one outcome per member. Warm
/// repeated calls at the same shape perform no heap allocation.
#[allow(clippy::too_many_arguments)] // batched mirror of integrate_with
pub fn integrate_batch(
    disc: &Discretization,
    us: &mut [Vec<f64>],
    t0: f64,
    t1: f64,
    tols: &[f64],
    tier: Tier,
    ws: &mut BatchWorkspace,
    works: &mut [WorkCounter],
    results: &mut Vec<Result<Ros2Stats, IntegrateError>>,
) {
    let k_total = us.len();
    assert_eq!(tols.len(), k_total);
    assert_eq!(works.len(), k_total);
    let n = disc.n();
    for u in us.iter() {
        assert_eq!(u.len(), n);
    }
    let span = t1 - t0;
    assert!(span > 0.0, "empty integration interval");
    results.clear();
    if k_total == 0 {
        return;
    }

    // Shared controller constants (Ros2Options defaults are tol-independent).
    let opts = Ros2Options::with_tol(1.0);
    let max_steps = opts.max_steps;
    let lin_tol = opts.lin_tol;
    let lin_max_iters = opts.lin_max_iters;
    let dt_init = (span / 64.0).min(span);
    let dt_floor = span * 1e-12;
    let t_end_thresh = t1 - 1e-14 * span;

    for sv in [&mut ws.t, &mut ws.dt, &mut ws.stage_dt] {
        sv.clear();
    }
    ws.t.resize(k_total, t0);
    ws.dt.resize(k_total, dt_init);
    ws.stage_dt.resize(k_total, dt_init);
    for sv in [&mut ws.steps, &mut ws.rejected, &mut ws.refacts] {
        sv.clear();
    }
    ws.steps.resize(k_total, 0);
    ws.rejected.resize(k_total, 0);
    ws.refacts.resize(k_total, 1);
    ws.done.clear();
    ws.done.resize(k_total, false);
    ws.errors.clear();
    ws.errors.resize(k_total, None);

    // Entry stage build: drop pool entries from other sparsity patterns,
    // build the initial-dt system, and charge each member the full
    // factorization its fresh sequential run performs here.
    ws.stages.retain(|s| s.cache.matches(&disc.a));
    let cap = k_total.max(1);
    let si0 = acquire_stage(&mut ws.stages, &mut ws.clock, &disc.a, dt_init, cap);
    ws.stage_nnz = ws.stages[si0].cache.matrix().nnz();
    for w in works.iter_mut() {
        w.add_factorization(ws.stage_nnz);
    }

    loop {
        let mut order = std::mem::take(&mut ws.order);
        order.clear();
        for m in 0..k_total {
            if !ws.done[m] {
                order.push((ws.t[m].to_bits(), ws.dt[m].to_bits(), m));
            }
        }
        if order.is_empty() {
            ws.order = order;
            break;
        }
        order.sort_unstable();

        let mut ids = std::mem::take(&mut ws.ids);
        let mut pos = 0;
        while pos < order.len() {
            let key = (order[pos].0, order[pos].1);
            let mut end = pos;
            while end < order.len() && (order[end].0, order[end].1) == key {
                end += 1;
            }
            let t_c = f64::from_bits(key.0);
            let dt_c = f64::from_bits(key.1);

            ids.clear();
            for &(_, _, m) in &order[pos..end] {
                if ws.steps[m] + ws.rejected[m] >= max_steps {
                    ws.done[m] = true;
                    ws.errors[m] = Some(IntegrateError::MaxSteps { t: t_c });
                } else {
                    ids.push(m);
                }
            }
            pos = end;
            let kc = ids.len();
            if kc == 0 {
                continue;
            }

            let dt_step = dt_c.min(t1 - t_c);
            for &m in ids.iter() {
                let sd = ws.stage_dt[m];
                if (dt_step - sd).abs() > 1e-14 * dt_step.max(sd) {
                    works[m].add_refactorization(ws.stage_nnz);
                    ws.refacts[m] += 1;
                    ws.stage_dt[m] = dt_step;
                }
            }
            let si = acquire_stage(&mut ws.stages, &mut ws.clock, &disc.a, dt_step, cap);

            for mv in [
                &mut ws.u,
                &mut ws.f1,
                &mut ws.f2,
                &mut ws.k1,
                &mut ws.k2,
                &mut ws.u_stage,
                &mut ws.u_new,
                &mut ws.err,
            ] {
                mv.ensure(kc, n);
            }
            ws.g.resize(n, 0.0);
            for (jj, &m) in ids.iter().enumerate() {
                ws.u.pack_member(jj, &us[m]);
            }
            ws.cw.clear();
            ws.cw.extend(ids.iter().map(|&m| works[m]));
            ws.active.clear();
            ws.active.resize(kc, true);
            ws.tolv.clear();
            ws.tolv.extend(ids.iter().map(|&m| tols[m]));

            // Stage 1.
            disc.rhs_into_multi_with(t_c, &ws.u, &mut ws.f1, &mut ws.g);
            for w in ws.cw.iter_mut() {
                w.add_matvec(disc.a.nnz());
            }
            ws.k1.fill(0.0);
            {
                let st = &ws.stages[si];
                bicgstab_multi(
                    st.cache.matrix(),
                    &st.ilu,
                    &ws.f1,
                    &mut ws.k1,
                    lin_tol,
                    lin_max_iters,
                    tier,
                    &mut ws.krylov,
                    &ws.active,
                    &mut ws.cw,
                );
            }
            for (jj, &m) in ids.iter().enumerate() {
                if !ws.active[jj] {
                    continue;
                }
                if let Some(Err(e)) = ws.krylov.out[jj].take() {
                    ws.active[jj] = false;
                    ws.done[m] = true;
                    ws.errors[m] = Some(IntegrateError::Linear(e));
                }
            }

            if ws.active.iter().any(|&a| a) {
                // Stage 2.
                stage_u_multi(
                    dt_step,
                    ws.u.as_slice(),
                    ws.k1.as_slice(),
                    ws.u_stage.as_mut_slice(),
                );
                disc.rhs_into_multi_with(t_c + dt_step, &ws.u_stage, &mut ws.f2, &mut ws.g);
                for (w, &act) in ws.cw.iter_mut().zip(&ws.active) {
                    if act {
                        w.add_matvec(disc.a.nnz());
                    }
                }
                stage_f2_multi(ws.f2.as_mut_slice(), ws.k1.as_slice());
                ws.k2.fill(0.0);
                {
                    let st = &ws.stages[si];
                    bicgstab_multi(
                        st.cache.matrix(),
                        &st.ilu,
                        &ws.f2,
                        &mut ws.k2,
                        lin_tol,
                        lin_max_iters,
                        tier,
                        &mut ws.krylov,
                        &ws.active,
                        &mut ws.cw,
                    );
                }
                for (jj, &m) in ids.iter().enumerate() {
                    if !ws.active[jj] {
                        continue;
                    }
                    if let Some(Err(e)) = ws.krylov.out[jj].take() {
                        ws.active[jj] = false;
                        ws.done[m] = true;
                        ws.errors[m] = Some(IntegrateError::Linear(e));
                    }
                }
            }

            if ws.active.iter().any(|&a| a) {
                unew_multi(
                    dt_step,
                    ws.u.as_slice(),
                    ws.k1.as_slice(),
                    ws.k2.as_slice(),
                    ws.u_new.as_mut_slice(),
                );
                errvec_multi(
                    dt_step,
                    ws.k1.as_slice(),
                    ws.k2.as_slice(),
                    ws.err.as_mut_slice(),
                );
                error_norm_multi(
                    tier,
                    kc,
                    ws.err.as_slice(),
                    ws.u.as_slice(),
                    &ws.tolv,
                    &mut ws.enorm,
                    &mut ws.nscratch,
                );
                for (w, &act) in ws.cw.iter_mut().zip(&ws.active) {
                    if act {
                        w.add_vector_ops(n, 8);
                    }
                }
                for (jj, &m) in ids.iter().enumerate() {
                    if !ws.active[jj] {
                        continue;
                    }
                    let enorm = ws.enorm[jj];
                    if enorm <= 1.0 {
                        ws.u_new.unpack_member(jj, &mut us[m]);
                        ws.t[m] = t_c + dt_step;
                        ws.steps[m] += 1;
                        ws.cw[jj].add_step();
                    } else {
                        ws.rejected[m] += 1;
                        ws.cw[jj].add_rejected();
                    }
                    let factor = (0.8 / enorm.sqrt()).clamp(0.2, 2.0);
                    let dt_proposed = (dt_step * factor).min(span);
                    if !(0.9..=1.1).contains(&(dt_proposed / dt_c)) || enorm > 1.0 {
                        ws.dt[m] = dt_proposed;
                    }
                    if ws.dt[m] < dt_floor {
                        ws.done[m] = true;
                        ws.errors[m] = Some(IntegrateError::StepSizeUnderflow { t: ws.t[m] });
                        continue;
                    }
                    if ws.t[m] >= t_end_thresh {
                        ws.done[m] = true;
                    }
                }
            }

            for (jj, &m) in ids.iter().enumerate() {
                works[m] = ws.cw[jj];
            }
        }
        ws.ids = ids;
        ws.order = order;
    }

    for m in 0..k_total {
        match ws.errors[m].take() {
            Some(e) => results.push(Err(e)),
            None => results.push(Ok(Ros2Stats {
                steps: ws.steps[m],
                rejected: ws.rejected[m],
                final_dt: ws.dt[m],
                refactorizations: ws.refacts[m],
            })),
        }
    }
}

// ---------------------------------------------------------------------------
// Batched subsolves.
// ---------------------------------------------------------------------------

/// Run a bundle of subsolve requests, batching the ones that share a grid
/// shape and time window through [`integrate_batch`] and falling back to
/// the sequential path for singletons. Results are returned in input
/// order; every result is bit-identical to `subsolve_with` on the same
/// request.
pub fn subsolve_batch(
    reqs: &[SubsolveRequest],
    ws: &mut BatchWorkspace,
) -> Vec<Result<SubsolveResult, IntegrateError>> {
    subsolve_batch_tiered(reqs, Tier::Exact, ws)
}

/// [`subsolve_batch`] with an explicit numerical [`Tier`]: per request
/// bit-identical to [`subsolve_tiered`] at the same tier.
pub fn subsolve_batch_tiered(
    reqs: &[SubsolveRequest],
    tier: Tier,
    ws: &mut BatchWorkspace,
) -> Vec<Result<SubsolveResult, IntegrateError>> {
    let mut results: Vec<Option<Result<SubsolveResult, IntegrateError>>> =
        (0..reqs.len()).map(|_| None).collect();
    let mut idx: Vec<usize> = (0..reqs.len()).collect();
    idx.sort_by_key(|&i| {
        let r = &reqs[i];
        (r.root, r.l, r.m, r.t0.to_bits(), r.t1.to_bits())
    });

    let mut pos = 0;
    while pos < idx.len() {
        let first = &reqs[idx[pos]];
        let mut end = pos;
        while end < idx.len() {
            let r = &reqs[idx[end]];
            if (r.root, r.l, r.m, r.t0.to_bits(), r.t1.to_bits())
                != (
                    first.root,
                    first.l,
                    first.m,
                    first.t0.to_bits(),
                    first.t1.to_bits(),
                )
                || r.problem != first.problem
            {
                break;
            }
            end += 1;
        }
        let group = &idx[pos..end];
        pos = end;

        if group.len() < 2 {
            let i = group[0];
            results[i] = Some(subsolve_tiered(&reqs[i], tier, &mut ws.seq));
            continue;
        }

        let grid = first.grid();
        let p = first.problem;
        let mut dummy = WorkCounter::new();
        let disc = assemble(&grid, &p, &mut dummy);
        let mut mw: Vec<WorkCounter> = group
            .iter()
            .map(|_| {
                let mut w = WorkCounter::new();
                w.add_assembly(disc.n());
                w
            })
            .collect();
        let mut u0s: Vec<Vec<f64>> = group
            .iter()
            .map(|&i| match &reqs[i].initial_interior {
                Some(v) => {
                    assert_eq!(v.len(), grid.interior_count(), "bad initial data size");
                    v.as_ref().clone()
                }
                None => disc.exact_interior(reqs[i].t0),
            })
            .collect();
        let tols: Vec<f64> = group.iter().map(|&i| reqs[i].tol).collect();
        let mut outs = Vec::new();
        integrate_batch(
            &disc, &mut u0s, first.t0, first.t1, &tols, tier, ws, &mut mw, &mut outs,
        );
        let t1 = first.t1;
        for (gg, &i) in group.iter().enumerate() {
            results[i] = Some(match &outs[gg] {
                Ok(stats) => {
                    let values =
                        Arc::new(grid.expand_interior(&u0s[gg], |x, y| p.boundary(x, y, t1)));
                    Ok(SubsolveResult {
                        l: reqs[i].l,
                        m: reqs[i].m,
                        values,
                        work: mw[gg],
                        steps: stats.steps,
                        rejected: stats.rejected,
                    })
                }
                Err(e) => Err(e.clone()),
            });
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every request processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    /// Compare a batched result against its sequential oracle. Flops (which
    /// fold the factorization/refactorization split into one number), steps
    /// and iteration counts must agree exactly; `batched_rhs` is the one
    /// counter that legitimately differs.
    fn assert_matches_sequential(batch: &SubsolveResult, seq: &SubsolveResult) {
        assert_eq!(batch.values, seq.values, "solution bits differ");
        assert_eq!(batch.steps, seq.steps);
        assert_eq!(batch.rejected, seq.rejected);
        assert_eq!(batch.work.flops, seq.work.flops);
        assert_eq!(batch.work.steps, seq.work.steps);
        assert_eq!(batch.work.rejected, seq.work.rejected);
        assert_eq!(batch.work.lin_iters, seq.work.lin_iters);
        assert_eq!(batch.work.assemblies, seq.work.assemblies);
        assert_eq!(
            batch.work.factorizations + batch.work.refactorizations,
            seq.work.factorizations + seq.work.refactorizations
        );
    }

    fn oracle(req: &SubsolveRequest, tier: Tier) -> Result<SubsolveResult, IntegrateError> {
        let mut ws = Ros2Workspace::new();
        subsolve_tiered(req, tier, &mut ws)
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut ws = BatchWorkspace::new();
        assert!(subsolve_batch(&[], &mut ws).is_empty());
    }

    #[test]
    fn identical_requests_match_sequential_bitwise() {
        let p = Problem::transport_benchmark();
        let req = SubsolveRequest::for_grid(2, 1, 1, 1e-3, p);
        let reqs = vec![req.clone(); 4];
        let mut ws = BatchWorkspace::new();
        let batch = subsolve_batch(&reqs, &mut ws);
        let seq = oracle(&req, Tier::Exact).unwrap();
        assert!(batch[0].as_ref().unwrap().work.batched_rhs > 0);
        for b in &batch {
            assert_matches_sequential(b.as_ref().unwrap(), &seq);
        }
    }

    #[test]
    fn differing_tolerances_split_cohorts_and_stay_exact() {
        // Different tolerances diverge the adaptive clocks after the first
        // controller decision, exercising cohort splits, the stage pool and
        // mixed accept/reject — every member must still match its oracle.
        let p = Problem::manufactured_benchmark();
        let tols = [1e-3, 1e-4, 1e-3, 3e-4, 2e-3];
        let reqs: Vec<SubsolveRequest> = tols
            .iter()
            .map(|&tol| SubsolveRequest::for_grid(2, 1, 1, tol, p))
            .collect();
        let mut ws = BatchWorkspace::new();
        let batch = subsolve_batch(&reqs, &mut ws);
        for (b, r) in batch.iter().zip(&reqs) {
            let seq = oracle(r, Tier::Exact).unwrap();
            assert_matches_sequential(b.as_ref().unwrap(), &seq);
        }
    }

    #[test]
    fn differing_initial_data_stays_exact() {
        let p = Problem::manufactured_benchmark();
        let g = crate::grid::Grid2::new(2, 1, 1);
        let base = SubsolveRequest::for_grid(2, 1, 1, 1e-3, p);
        let mut shifted = base.clone();
        shifted.initial_interior = Some(Arc::new(
            g.restrict_interior(&g.sample(|x, y| p.exact(x, y, p.t0) + 0.01 * x * y)),
        ));
        let reqs = vec![base.clone(), shifted.clone(), base.clone()];
        let mut ws = BatchWorkspace::new();
        let batch = subsolve_batch(&reqs, &mut ws);
        for (b, r) in batch.iter().zip(&reqs) {
            let seq = oracle(r, Tier::Exact).unwrap();
            assert_matches_sequential(b.as_ref().unwrap(), &seq);
        }
    }

    #[test]
    fn mixed_shapes_group_and_preserve_input_order() {
        // Three shapes interleaved: (1,1) x3 batched, (0,2) x2 batched,
        // (2,0) singleton through the sequential path.
        let p = Problem::transport_benchmark();
        let shapes = [(1, 1), (0, 2), (2, 0), (1, 1), (0, 2), (1, 1)];
        let reqs: Vec<SubsolveRequest> = shapes
            .iter()
            .map(|&(l, m)| SubsolveRequest::for_grid(2, l, m, 1e-3, p))
            .collect();
        let mut ws = BatchWorkspace::new();
        let batch = subsolve_batch(&reqs, &mut ws);
        assert_eq!(batch.len(), reqs.len());
        for (b, r) in batch.iter().zip(&reqs) {
            let res = b.as_ref().unwrap();
            assert_eq!((res.l, res.m), (r.l, r.m), "order not preserved");
            let seq = oracle(r, Tier::Exact).unwrap();
            assert_matches_sequential(res, &seq);
        }
        // The singleton went through the sequential path: no batched work.
        assert_eq!(batch[2].as_ref().unwrap().work.batched_rhs, 0);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // A renovation worker keeps one BatchWorkspace across bundles,
        // including bundles of different shapes that force pool rebuilds.
        let p = Problem::transport_benchmark();
        let mut ws = BatchWorkspace::new();
        for (l, m) in [(1, 1), (1, 1), (0, 2), (1, 1)] {
            let reqs = vec![SubsolveRequest::for_grid(2, l, m, 1e-3, p); 3];
            let batch = subsolve_batch(&reqs, &mut ws);
            let seq = oracle(&reqs[0], Tier::Exact).unwrap();
            for b in &batch {
                assert_matches_sequential(b.as_ref().unwrap(), &seq);
            }
        }
    }

    #[test]
    fn fast_tier_batch_matches_fast_tier_sequential() {
        // The fast tier reassociates reductions, so it differs from the
        // exact tier — but batched-fast must still be bit-identical to
        // sequential-fast per member.
        let p = Problem::transport_benchmark();
        let tols = [1e-3, 1e-4, 1e-3];
        let reqs: Vec<SubsolveRequest> = tols
            .iter()
            .map(|&tol| SubsolveRequest::for_grid(2, 1, 1, tol, p))
            .collect();
        let mut ws = BatchWorkspace::new();
        let batch = subsolve_batch_tiered(&reqs, Tier::Fast, &mut ws);
        for (b, r) in batch.iter().zip(&reqs) {
            let seq = oracle(r, Tier::Fast).unwrap();
            assert_matches_sequential(b.as_ref().unwrap(), &seq);
        }
    }

    #[test]
    fn non_lane_multiple_group_sizes_stay_exact() {
        // Group widths 3 and 5: neither is a multiple of the SIMD lane
        // width, exercising every member-remainder path in the batched
        // kernels.
        let p = Problem::manufactured_benchmark();
        for width in [3usize, 5] {
            let req = SubsolveRequest::for_grid(2, 1, 2, 1e-3, p);
            let reqs = vec![req.clone(); width];
            let mut ws = BatchWorkspace::new();
            let batch = subsolve_batch(&reqs, &mut ws);
            let seq = oracle(&req, Tier::Exact).unwrap();
            for b in &batch {
                assert_matches_sequential(b.as_ref().unwrap(), &seq);
            }
        }
    }

    #[test]
    fn batched_rhs_counter_records_cohort_widths() {
        let p = Problem::transport_benchmark();
        let reqs = vec![SubsolveRequest::for_grid(2, 1, 1, 1e-3, p); 4];
        let mut ws = BatchWorkspace::new();
        let batch = subsolve_batch(&reqs, &mut ws);
        // Identical requests never diverge: every stage solve ran 4 wide,
        // two solves per step attempt.
        let b = batch[0].as_ref().unwrap();
        let attempts = (b.steps + b.rejected) as u64;
        assert_eq!(b.work.batched_rhs, 8 * attempts);
    }

    #[test]
    fn integrate_batch_reports_per_member_stats() {
        let p = Problem::manufactured_benchmark();
        let g = crate::grid::Grid2::new(2, 1, 1);
        let mut w0 = WorkCounter::new();
        let disc = assemble(&g, &p, &mut w0);
        let u0 = disc.exact_interior(p.t0);
        let mut us = vec![u0.clone(), u0];
        let tols = [1e-3, 1e-4];
        let mut works = [WorkCounter::new(), WorkCounter::new()];
        let mut ws = BatchWorkspace::new();
        let mut outs = Vec::new();
        integrate_batch(
            &disc,
            &mut us,
            p.t0,
            p.t_end,
            &tols,
            Tier::Exact,
            &mut ws,
            &mut works,
            &mut outs,
        );
        let tight = outs[1].as_ref().unwrap();
        let loose = outs[0].as_ref().unwrap();
        assert!(tight.steps > loose.steps, "tight {tight:?} loose {loose:?}");
        assert!(works[1].flops > works[0].flops);
    }
}
