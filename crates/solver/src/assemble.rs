//! Finite-difference discretization of the advection-diffusion operator.
//!
//! On grid `(l, m)` the PDE `u_t + a·∇u = ε Δu + s` is discretized in space
//! into the linear ODE system
//!
//! ```text
//! du/dt = A u + g(t)
//! ```
//!
//! over the interior nodes, where `A` is the pentadiagonal operator matrix
//! and `g(t)` collects the source term and the (time-dependent Dirichlet)
//! boundary contributions.
//!
//! Diffusion uses second-order central differences. Advection uses a
//! per-direction **hybrid** scheme, the standard choice for transport
//! problems on possibly very anisotropic sparse-grid members: central
//! differences when the mesh Péclet number `|a|·h/(2ε)` is at most 1
//! (second-order, non-oscillatory in that regime) and first-order upwind
//! otherwise (unconditionally monotone).

use crate::grid::Grid2;
use crate::problem::Problem;
use crate::sparse::{Csr, MultiVec};
use crate::work::WorkCounter;

/// Which advection scheme was chosen in a direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvectionScheme {
    /// Second-order central differences.
    Central,
    /// First-order upwind.
    Upwind,
}

/// The spatially discretized problem on one grid.
#[derive(Clone, Debug)]
pub struct Discretization {
    /// The grid.
    pub grid: Grid2,
    /// The problem instance.
    pub problem: Problem,
    /// Interior operator matrix (`interior_count × interior_count`).
    pub a: Csr,
    /// Advection scheme chosen in x.
    pub scheme_x: AdvectionScheme,
    /// Advection scheme chosen in y.
    pub scheme_y: AdvectionScheme,
    /// Boundary couplings: `(interior_row, boundary_i, boundary_j, coeff)` —
    /// the stencil weight with which boundary node `(i,j)` feeds interior
    /// row `row`.
    boundary: Vec<(usize, usize, usize, f64)>,
}

/// Pick the advection scheme for one direction.
pub fn choose_scheme(a: f64, h: f64, eps: f64) -> AdvectionScheme {
    let peclet = a.abs() * h / (2.0 * eps.max(1e-300));
    if peclet <= 1.0 {
        AdvectionScheme::Central
    } else {
        AdvectionScheme::Upwind
    }
}

/// One-dimensional stencil weights `(west, center, east)` for
/// `-a·d/dx + ε·d²/dx²` with mesh width `h`.
fn stencil_1d(a: f64, h: f64, eps: f64, scheme: AdvectionScheme) -> (f64, f64, f64) {
    let d = eps / (h * h);
    match scheme {
        AdvectionScheme::Central => {
            let c = a / (2.0 * h);
            (d + c, -2.0 * d, d - c)
        }
        AdvectionScheme::Upwind => {
            if a >= 0.0 {
                // -a (u_i - u_{i-1})/h
                (d + a / h, -2.0 * d - a / h, d)
            } else {
                // -a (u_{i+1} - u_i)/h
                (d, -2.0 * d + a / h, d - a / h)
            }
        }
    }
}

/// Assemble the interior operator and boundary coupling table for `problem`
/// on `grid`. Work is charged to `work`.
///
/// The 5-point stencil's sparsity pattern is known a priori, so the CSR
/// arrays are written directly in sorted-column order (south, west, center,
/// east, north — interior indices are row-major with `j` outer) with no
/// triplet buffer and no sort. The result is identical — entry for entry —
/// to the triplet path retained in [`assemble_reference`].
pub fn assemble(grid: &Grid2, problem: &Problem, work: &mut WorkCounter) -> Discretization {
    let scheme_x = choose_scheme(problem.ax, grid.hx, problem.eps);
    let scheme_y = choose_scheme(problem.ay, grid.hy, problem.eps);
    let (wx, cx, ex) = stencil_1d(problem.ax, grid.hx, problem.eps, scheme_x);
    let (wy, cy, ey) = stencil_1d(problem.ay, grid.hy, problem.eps, scheme_y);

    let n = grid.interior_count();
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::with_capacity(5 * n);
    let mut vals = Vec::with_capacity(5 * n);
    let mut boundary = Vec::new();
    row_ptr.push(0);

    for j in 1..grid.ny {
        for i in 1..grid.nx {
            let row = grid.interior_idx(i, j);
            // Matrix entries in sorted-column order: south (row − (nx−1)),
            // west (row − 1), center, east (row + 1), north (row + (nx−1)).
            if j - 1 != 0 {
                col_idx.push(grid.interior_idx(i, j - 1));
                vals.push(wy);
            }
            if i - 1 != 0 {
                col_idx.push(grid.interior_idx(i - 1, j));
                vals.push(wx);
            }
            col_idx.push(row);
            vals.push(cx + cy);
            if i + 1 != grid.nx {
                col_idx.push(grid.interior_idx(i + 1, j));
                vals.push(ex);
            }
            if j + 1 != grid.ny {
                col_idx.push(grid.interior_idx(i, j + 1));
                vals.push(ey);
            }
            row_ptr.push(col_idx.len());
            // Boundary couplings, in the same table order as the reference
            // path (west, east, south, north) so `forcing_into` accumulates
            // Dirichlet terms in the identical sequence.
            if i - 1 == 0 {
                boundary.push((row, 0, j, wx));
            }
            if i + 1 == grid.nx {
                boundary.push((row, grid.nx, j, ex));
            }
            if j - 1 == 0 {
                boundary.push((row, i, 0, wy));
            }
            if j + 1 == grid.ny {
                boundary.push((row, i, grid.ny, ey));
            }
        }
    }

    work.add_assembly(n);
    Discretization {
        grid: grid.clone(),
        problem: *problem,
        a: Csr::from_parts(n, row_ptr, col_idx, vals),
        scheme_x,
        scheme_y,
        boundary,
    }
}

/// The pre-optimization assembly path, retained verbatim: build (row, col,
/// value) triplets in visit order and let [`Csr::from_triplets`] sort and
/// merge them. Used by `solver::reference` (the bit-identity baseline) and
/// by `bench`'s `solver_bench` to measure the assembly speedup; tests
/// assert the two paths produce equal matrices and boundary tables.
pub fn assemble_reference(
    grid: &Grid2,
    problem: &Problem,
    work: &mut WorkCounter,
) -> Discretization {
    let scheme_x = choose_scheme(problem.ax, grid.hx, problem.eps);
    let scheme_y = choose_scheme(problem.ay, grid.hy, problem.eps);
    let (wx, cx, ex) = stencil_1d(problem.ax, grid.hx, problem.eps, scheme_x);
    let (wy, cy, ey) = stencil_1d(problem.ay, grid.hy, problem.eps, scheme_y);

    let n = grid.interior_count();
    let mut triplets = Vec::with_capacity(5 * n);
    let mut boundary = Vec::new();

    for j in 1..grid.ny {
        for i in 1..grid.nx {
            let row = grid.interior_idx(i, j);
            triplets.push((row, row, cx + cy));
            // West neighbour (i-1, j).
            if i - 1 == 0 {
                boundary.push((row, 0, j, wx));
            } else {
                triplets.push((row, grid.interior_idx(i - 1, j), wx));
            }
            // East neighbour (i+1, j).
            if i + 1 == grid.nx {
                boundary.push((row, grid.nx, j, ex));
            } else {
                triplets.push((row, grid.interior_idx(i + 1, j), ex));
            }
            // South neighbour (i, j-1).
            if j - 1 == 0 {
                boundary.push((row, i, 0, wy));
            } else {
                triplets.push((row, grid.interior_idx(i, j - 1), wy));
            }
            // North neighbour (i, j+1).
            if j + 1 == grid.ny {
                boundary.push((row, i, grid.ny, ey));
            } else {
                triplets.push((row, grid.interior_idx(i, j + 1), ey));
            }
        }
    }

    work.add_assembly(n);
    Discretization {
        grid: grid.clone(),
        problem: *problem,
        a: Csr::from_triplets(n, &triplets),
        scheme_x,
        scheme_y,
        boundary,
    }
}

impl Discretization {
    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.a.n()
    }

    /// The boundary coupling table: `(interior_row, boundary_i,
    /// boundary_j, coefficient)` entries feeding Dirichlet data into the
    /// interior equations.
    pub fn boundary_couplings(&self) -> &[(usize, usize, usize, f64)] {
        &self.boundary
    }

    /// Evaluate the forcing `g(t)` (source + boundary couplings) into `out`.
    pub fn forcing_into(&self, t: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.n());
        // Source term at interior nodes.
        for j in 1..self.grid.ny {
            let y = self.grid.y(j);
            for i in 1..self.grid.nx {
                out[self.grid.interior_idx(i, j)] = self.problem.source(self.grid.x(i), y, t);
            }
        }
        // Dirichlet boundary contributions.
        for &(row, bi, bj, coeff) in &self.boundary {
            out[row] += coeff * self.problem.boundary(self.grid.x(bi), self.grid.y(bj), t);
        }
    }

    /// Evaluate the semi-discrete right-hand side `f(t, u) = A u + g(t)`
    /// into `out`. Allocates forcing scratch; the integrator's hot loop
    /// uses [`Discretization::rhs_into_with`] instead.
    pub fn rhs_into(&self, t: f64, u: &[f64], out: &mut [f64], work: &mut WorkCounter) {
        let mut g = vec![0.0; self.n()];
        self.rhs_into_with(t, u, out, &mut g, work);
    }

    /// [`Discretization::rhs_into`] on a caller-owned forcing scratch `g`
    /// (fully overwritten; length `n`). Allocation-free and bit-identical
    /// to the allocating entry point.
    pub fn rhs_into_with(
        &self,
        t: f64,
        u: &[f64],
        out: &mut [f64],
        g: &mut [f64],
        work: &mut WorkCounter,
    ) {
        self.a.matvec_into(u, out);
        self.forcing_into(t, g);
        for (o, gi) in out.iter_mut().zip(g.iter()) {
            *o += gi;
        }
        work.add_matvec(self.a.nnz());
    }

    /// Batched [`Discretization::rhs_into_with`]: evaluate `A u_j + g(t)`
    /// for every member `j` of `u` at one shared time `t`. The forcing is
    /// evaluated once into `g` and broadcast across members, which is
    /// exactly why the batched integrator groups members into equal-`t`
    /// cohorts. Per member the result is bit-identical to the scalar path
    /// (`A u` row products in CSR order, then `+ g_i`). No work accounting:
    /// the batched integrator charges `add_matvec` per *live* member,
    /// mirroring the sequential control flow.
    pub fn rhs_into_multi_with(&self, t: f64, u: &MultiVec, out: &mut MultiVec, g: &mut [f64]) {
        let k = u.k();
        assert_eq!(out.k(), k);
        assert_eq!(u.n(), self.n());
        self.a.matvec_multi_into(u, out);
        self.forcing_into(t, g);
        let data = out.as_mut_slice();
        for (gi, row) in g.iter().zip(data.chunks_exact_mut(k)) {
            for o in row {
                *o += gi;
            }
        }
    }

    /// Interior vector of the exact solution at time `t` (for initial
    /// conditions and error measurement).
    pub fn exact_interior(&self, t: f64) -> Vec<f64> {
        self.grid
            .sample_interior(|x, y| self.problem.exact(x, y, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l2_norm;

    #[test]
    fn scheme_selection_by_peclet() {
        // eps large → central; eps tiny → upwind.
        assert_eq!(choose_scheme(1.0, 0.1, 1.0), AdvectionScheme::Central);
        assert_eq!(choose_scheme(1.0, 0.1, 1e-4), AdvectionScheme::Upwind);
        assert_eq!(choose_scheme(0.0, 0.1, 1e-12), AdvectionScheme::Central);
    }

    #[test]
    fn pure_diffusion_matrix_is_laplacian() {
        // With zero velocity the operator must be the standard 5-point
        // Laplacian scaled by eps.
        let p = Problem {
            ax: 0.0,
            ay: 0.0,
            eps: 1.0,
            t0: 0.0,
            t_end: 1.0,
            kind: crate::problem::ProblemKind::Manufactured,
        };
        let g = Grid2::new(2, 0, 0); // 4x4 cells, h = 1/4
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let h2 = 16.0; // 1/h² = 16
        let row = g.interior_idx(2, 2);
        assert!((d.a.get(row, row).unwrap() + 4.0 * h2).abs() < 1e-12);
        assert!((d.a.get(row, g.interior_idx(1, 2)).unwrap() - h2).abs() < 1e-12);
        assert!((d.a.get(row, g.interior_idx(2, 1)).unwrap() - h2).abs() < 1e-12);
    }

    #[test]
    fn row_sums_vanish_for_constant_state() {
        // A·1 + (boundary couplings)·1 must be ~0 when velocity and source
        // structure allow a constant: the stencil is consistent (sums to 0).
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 1, 0);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let ones = vec![1.0; d.n()];
        let mut au = vec![0.0; d.n()];
        d.a.matvec_into(&ones, &mut au);
        // Add boundary couplings as if boundary were also 1.
        for &(row, _, _, c) in &d.boundary {
            au[row] += c;
        }
        assert!(
            l2_norm(&au) < 1e-9,
            "stencil not consistent: {}",
            l2_norm(&au)
        );
    }

    #[test]
    fn spatial_discretization_residual_is_small() {
        // For the manufactured solution, A u + g(t) should approximate u_t.
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 2, 2); // 16x16
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let t = 0.1;
        let u = d.exact_interior(t);
        let mut f = vec![0.0; d.n()];
        d.rhs_into(t, &u, &mut f, &mut w);
        // u_t = -u for the manufactured solution.
        let resid: Vec<f64> = f.iter().zip(&u).map(|(fi, ui)| fi + ui).collect();
        assert!(
            l2_norm(&resid) < 0.05,
            "spatial residual too large: {}",
            l2_norm(&resid)
        );
    }

    #[test]
    fn spatial_residual_shrinks_with_refinement() {
        let p = Problem::manufactured_benchmark();
        let mut errs = Vec::new();
        for lvl in 0..3 {
            let g = Grid2::new(2, lvl, lvl);
            let mut w = WorkCounter::new();
            let d = assemble(&g, &p, &mut w);
            let t = 0.1;
            let u = d.exact_interior(t);
            let mut f = vec![0.0; d.n()];
            d.rhs_into(t, &u, &mut f, &mut w);
            let resid: Vec<f64> = f.iter().zip(&u).map(|(fi, ui)| fi + ui).collect();
            errs.push(l2_norm(&resid));
        }
        // Second-order scheme: each refinement should cut the residual ~4x.
        assert!(errs[1] < errs[0] / 2.5);
        assert!(errs[2] < errs[1] / 2.5);
    }

    #[test]
    fn direct_assembly_equals_triplet_reference() {
        // The sorted-order direct CSR build must reproduce the triplet path
        // entry for entry — matrix (bitwise, via Csr's PartialEq), boundary
        // table, and scheme choices — on isotropic, anisotropic and
        // degenerate (nx == 2 or ny == 2) grids.
        for p in [
            Problem::manufactured_benchmark(),
            Problem::transport_benchmark(),
        ] {
            for root in [1u32, 2] {
                for l in 0..3u32 {
                    for m in 0..3u32 {
                        let g = Grid2::new(root, l, m);
                        let mut w1 = WorkCounter::new();
                        let mut w2 = WorkCounter::new();
                        let fast = assemble(&g, &p, &mut w1);
                        let slow = assemble_reference(&g, &p, &mut w2);
                        assert_eq!(fast.a, slow.a, "matrix mismatch on ({root},{l},{m})");
                        assert_eq!(
                            fast.boundary, slow.boundary,
                            "boundary mismatch on ({root},{l},{m})"
                        );
                        assert_eq!(fast.scheme_x, slow.scheme_x);
                        assert_eq!(fast.scheme_y, slow.scheme_y);
                        assert_eq!(w1.flops, w2.flops);
                    }
                }
            }
        }
    }

    #[test]
    fn rhs_into_with_matches_allocating_path() {
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 1, 2);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let u = d.exact_interior(0.2);
        let mut f1 = vec![0.0; d.n()];
        let mut f2 = vec![7.0; d.n()]; // junk: must be fully overwritten
        let mut scratch = vec![-3.0; d.n()]; // junk scratch too
        d.rhs_into(0.2, &u, &mut f1, &mut w);
        d.rhs_into_with(0.2, &u, &mut f2, &mut scratch, &mut w);
        assert_eq!(f1, f2);
    }

    #[test]
    fn boundary_couplings_count() {
        let g = Grid2::new(2, 0, 0); // 4x4: interior 3x3
        let p = Problem::transport_benchmark();
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        // Each interior node adjacent to the boundary contributes one
        // coupling per adjacent side: 3x3 interior → edge nodes: 8 have at
        // least one; corners have two. Total = 12 (3 per side).
        assert_eq!(d.boundary.len(), 12);
    }

    #[test]
    fn upwind_respects_flow_direction() {
        // Strong advection in +x with tiny eps: upwind means the east
        // neighbour coefficient carries only diffusion (≈ tiny), the west
        // neighbour carries a/h.
        let p = Problem {
            ax: 1.0,
            ay: 0.0,
            eps: 1e-8,
            t0: 0.0,
            t_end: 1.0,
            kind: crate::problem::ProblemKind::Manufactured,
        };
        let g = Grid2::new(2, 0, 0);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        assert_eq!(d.scheme_x, AdvectionScheme::Upwind);
        let row = g.interior_idx(2, 2);
        let west = d.a.get(row, g.interior_idx(1, 2)).unwrap();
        let east = d.a.get(row, g.interior_idx(3, 2)).unwrap();
        assert!(west > 3.9, "west should carry a/h = 4: {west}");
        assert!(east.abs() < 1e-3, "east should be ~0: {east}");
    }
}
