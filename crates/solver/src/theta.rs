//! θ-scheme time integrators: the classical fixed-step baselines.
//!
//! The production integrator is the adaptive ROS2 Rosenbrock method
//! ([`crate::rosenbrock`]); implicit Euler (θ = 1) and Crank-Nicolson
//! (θ = 1/2) provide the reference points a numerical library owes its
//! users — and the benches use them to show what the adaptive Rosenbrock
//! buys on the transport problem.
//!
//! For the semi-discrete system `du/dt = A u + g(t)` one θ-step solves
//!
//! ```text
//! (I − θ·dt·A) uₙ₊₁ = (I + (1−θ)·dt·A) uₙ + dt·[θ·g(tₙ₊₁) + (1−θ)·g(tₙ)]
//! ```

use crate::assemble::Discretization;
use crate::linsolve::{bicgstab, Ilu0, SolveError};
use crate::work::WorkCounter;

/// Which θ-scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThetaScheme {
    /// θ = 1: first order, L-stable.
    ImplicitEuler,
    /// θ = 1/2: second order, A-stable.
    CrankNicolson,
}

impl ThetaScheme {
    /// The θ value.
    pub fn theta(&self) -> f64 {
        match self {
            ThetaScheme::ImplicitEuler => 1.0,
            ThetaScheme::CrankNicolson => 0.5,
        }
    }
}

/// Integrate with a fixed step `dt` from `t0` to `t1` (the last step is
/// shortened to land exactly on `t1`).
pub fn integrate_theta(
    disc: &Discretization,
    mut u: Vec<f64>,
    t0: f64,
    t1: f64,
    dt: f64,
    scheme: ThetaScheme,
    work: &mut WorkCounter,
) -> Result<(Vec<f64>, usize), SolveError> {
    assert!(dt > 0.0 && t1 > t0);
    let theta = scheme.theta();
    let n = disc.n();
    let mut g0 = vec![0.0; n];
    let mut g1 = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut au = vec![0.0; n];
    let mut steps = 0usize;

    let mut t = t0;
    let mut stage: Option<(f64, crate::sparse::Csr, Ilu0)> = None;
    while t < t1 - 1e-14 * (t1 - t0) {
        let h = dt.min(t1 - t);
        // (Re)factor when the step changes (only at the final clip).
        let needs = match &stage {
            Some((hh, _, _)) => (hh - h).abs() > 1e-14 * h,
            None => true,
        };
        if needs {
            let m = disc.a.identity_minus_scaled(theta * h);
            let ilu = Ilu0::new(&m, work);
            stage = Some((h, m, ilu));
        }
        let (_, m, ilu) = stage.as_ref().unwrap();

        disc.forcing_into(t, &mut g0);
        disc.forcing_into(t + h, &mut g1);
        disc.a.matvec_into(&u, &mut au);
        work.add_matvec(disc.a.nnz());
        for i in 0..n {
            rhs[i] = u[i] + (1.0 - theta) * h * au[i] + h * (theta * g1[i] + (1.0 - theta) * g0[i]);
        }
        // Warm start from the current state.
        bicgstab(m, ilu, &rhs, &mut u, 1e-10, 500, work)?;
        work.add_vector_ops(n, 4);
        t += h;
        steps += 1;
        work.add_step();
    }
    Ok((u, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use crate::grid::Grid2;
    use crate::l2_norm;
    use crate::problem::Problem;
    use crate::rosenbrock::{integrate, Ros2Options};

    fn theta_error(scheme: ThetaScheme, dt: f64) -> f64 {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1); // small grid: isolates the time error
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let u0 = d.exact_interior(p.t0);
        let (u1, _) = integrate_theta(&d, u0, p.t0, p.t_end, dt, scheme, &mut w).unwrap();
        // Compare against a tight reference (not the exact solution, to
        // isolate the *time* error from the spatial error).
        let (uref, _) = integrate(
            &d,
            d.exact_interior(p.t0),
            p.t0,
            p.t_end,
            &Ros2Options::with_tol(1e-8),
            &mut w,
        )
        .unwrap();
        let diff: Vec<f64> = u1.iter().zip(&uref).map(|(a, b)| a - b).collect();
        l2_norm(&diff)
    }

    #[test]
    fn implicit_euler_is_first_order() {
        let e1 = theta_error(ThetaScheme::ImplicitEuler, 0.05);
        let e2 = theta_error(ThetaScheme::ImplicitEuler, 0.025);
        let order = (e1 / e2).log2();
        assert!(
            (0.7..1.4).contains(&order),
            "IE order {order} (e1={e1}, e2={e2})"
        );
    }

    #[test]
    fn crank_nicolson_is_second_order() {
        let e1 = theta_error(ThetaScheme::CrankNicolson, 0.05);
        let e2 = theta_error(ThetaScheme::CrankNicolson, 0.025);
        let order = (e1 / e2).log2();
        assert!(
            (1.6..2.4).contains(&order),
            "CN order {order} (e1={e1}, e2={e2})"
        );
    }

    #[test]
    fn cn_beats_ie_at_equal_step() {
        let dt = 0.025;
        assert!(
            theta_error(ThetaScheme::CrankNicolson, dt)
                < theta_error(ThetaScheme::ImplicitEuler, dt)
        );
    }

    #[test]
    fn stable_at_large_steps() {
        // Implicit schemes take dt far beyond any explicit stability limit.
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 2, 2);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let u0 = d.exact_interior(p.t0);
        let (u1, steps) = integrate_theta(
            &d,
            u0,
            p.t0,
            p.t_end,
            0.25,
            ThetaScheme::ImplicitEuler,
            &mut w,
        )
        .unwrap();
        assert_eq!(steps, 2);
        assert!(u1.iter().all(|v| v.is_finite() && v.abs() < 10.0));
    }

    #[test]
    fn lands_exactly_on_t_end() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let u0 = d.exact_interior(p.t0);
        // dt that does not divide the interval: the last step is clipped.
        let (u1, steps) =
            integrate_theta(&d, u0, 0.0, 0.5, 0.3, ThetaScheme::CrankNicolson, &mut w).unwrap();
        assert_eq!(steps, 2);
        let exact = d.exact_interior(0.5);
        let diff: Vec<f64> = u1.iter().zip(&exact).map(|(a, b)| a - b).collect();
        assert!(l2_norm(&diff) < 0.05);
    }

    #[test]
    fn adaptive_ros2_matches_fine_cn() {
        // The adaptive Rosenbrock at 1e-6 and a fine Crank-Nicolson agree.
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let (ros, _) = integrate(
            &d,
            d.exact_interior(p.t0),
            p.t0,
            p.t_end,
            &Ros2Options::with_tol(1e-6),
            &mut w,
        )
        .unwrap();
        let (cn, _) = integrate_theta(
            &d,
            d.exact_interior(p.t0),
            p.t0,
            p.t_end,
            2.5e-3,
            ThetaScheme::CrankNicolson,
            &mut w,
        )
        .unwrap();
        let diff: Vec<f64> = ros.iter().zip(&cn).map(|(a, b)| a - b).collect();
        assert!(l2_norm(&diff) < 1e-4, "disagreement {}", l2_norm(&diff));
    }
}
