//! The adaptive Rosenbrock (ROS2) time integrator.
//!
//! The paper: "the adaptive time step in the time integrator (a so-called
//! Rosenbrock solver) is something that must be computed again and again."
//!
//! We implement the classic two-stage, second-order, L-stable ROS2 scheme
//! (γ = 1 + 1/√2), the workhorse for advection-diffusion problems at CWI:
//!
//! ```text
//! (I - γ·dt·A) k₁ = f(tₙ, uₙ)
//! (I - γ·dt·A) k₂ = f(tₙ + dt, uₙ + dt·k₁) - 2·k₁
//! uₙ₊₁ = uₙ + (3/2)·dt·k₁ + (1/2)·dt·k₂
//! ```
//!
//! The embedded first-order result `ûₙ₊₁ = uₙ + dt·k₁` yields the local
//! error estimate `dt·(k₁ + k₂)/2`, which drives the adaptive step
//! controller against the user tolerance (`le_tol` in the paper's command
//! line). The stage matrix depends only on `dt`, so the ILU factorization
//! is reused across steps and only recomputed when the controller actually
//! changes the step — with a ±10% dead band to avoid refactoring on noise.

use crate::assemble::Discretization;
use crate::linsolve::{bicgstab, Ilu0, SolveError};
use crate::sparse::Csr;
use crate::work::WorkCounter;

/// γ for L-stable ROS2.
pub const GAMMA: f64 = 1.0 + std::f64::consts::FRAC_1_SQRT_2;

/// Integration failure modes.
#[derive(Clone, Debug, PartialEq)]
pub enum IntegrateError {
    /// Step size driven below the representable floor.
    StepSizeUnderflow {
        /// Time at which the controller gave up.
        t: f64,
    },
    /// The stage linear solve failed.
    Linear(SolveError),
    /// Step budget exhausted before reaching `t1`.
    MaxSteps {
        /// Time reached.
        t: f64,
    },
}

impl std::fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrateError::StepSizeUnderflow { t } => {
                write!(f, "step size underflow at t = {t}")
            }
            IntegrateError::Linear(e) => write!(f, "linear solve failed: {e}"),
            IntegrateError::MaxSteps { t } => write!(f, "max steps reached at t = {t}"),
        }
    }
}

impl std::error::Error for IntegrateError {}

/// Options for [`integrate`].
#[derive(Clone, Copy, Debug)]
pub struct Ros2Options {
    /// Local error tolerance (used as both absolute and relative weight) —
    /// the paper's `le_tol`.
    pub tol: f64,
    /// Initial step (default: 1/64 of the interval).
    pub dt0: Option<f64>,
    /// Step budget.
    pub max_steps: usize,
    /// Relative tolerance for the stage linear solves.
    pub lin_tol: f64,
    /// Iteration cap for the stage linear solves.
    pub lin_max_iters: usize,
}

impl Ros2Options {
    /// Defaults for a given `le_tol`.
    pub fn with_tol(tol: f64) -> Self {
        Ros2Options {
            tol,
            dt0: None,
            max_steps: 200_000,
            lin_tol: 1e-10,
            lin_max_iters: 500,
        }
    }
}

/// Outcome statistics of an integration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ros2Stats {
    /// Accepted steps.
    pub steps: usize,
    /// Rejected steps.
    pub rejected: usize,
    /// Final step size.
    pub final_dt: f64,
    /// Number of stage-matrix refactorizations performed.
    pub refactorizations: usize,
}

/// Weighted RMS norm of the error estimate against `tol·(1 + |u|)`.
fn error_norm(err: &[f64], u: &[f64], tol: f64) -> f64 {
    let n = err.len().max(1);
    let sum: f64 = err
        .iter()
        .zip(u)
        .map(|(e, ui)| {
            let w = tol * (1.0 + ui.abs());
            let r = e / w;
            r * r
        })
        .sum();
    (sum / n as f64).sqrt()
}

struct StageMatrix {
    dt: f64,
    m: Csr,
    ilu: Ilu0,
}

impl StageMatrix {
    fn build(a: &Csr, dt: f64, work: &mut WorkCounter) -> Self {
        let m = a.identity_minus_scaled(GAMMA * dt);
        let ilu = Ilu0::new(&m, work);
        StageMatrix { dt, m, ilu }
    }
}

/// Integrate `du/dt = A u + g(t)` from `t0` to `t1` starting from the
/// interior vector `u0`, with adaptive ROS2. Returns the solution at `t1`
/// and run statistics; all work is charged to `work`.
pub fn integrate(
    disc: &Discretization,
    mut u: Vec<f64>,
    t0: f64,
    t1: f64,
    opts: &Ros2Options,
    work: &mut WorkCounter,
) -> Result<(Vec<f64>, Ros2Stats), IntegrateError> {
    assert_eq!(u.len(), disc.n());
    let span = t1 - t0;
    assert!(span > 0.0, "empty integration interval");
    let mut t = t0;
    let mut dt = opts.dt0.unwrap_or(span / 64.0).min(span);
    let dt_floor = span * 1e-12;

    let mut stats = Ros2Stats {
        steps: 0,
        rejected: 0,
        final_dt: dt,
        refactorizations: 0,
    };

    let n = disc.n();
    let mut f1 = vec![0.0; n];
    let mut f2 = vec![0.0; n];
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut u_stage = vec![0.0; n];
    let mut u_new = vec![0.0; n];

    let mut stage = StageMatrix::build(&disc.a, dt, work);
    stats.refactorizations += 1;

    while t < t1 - 1e-14 * span {
        if stats.steps + stats.rejected >= opts.max_steps {
            return Err(IntegrateError::MaxSteps { t });
        }
        // Clip the step to land exactly on t1, but avoid refactoring for a
        // sub-10% end adjustment by allowing a slightly longer last step to
        // be split evenly — simplest correct policy: clip and refactor when
        // needed.
        let dt_step = dt.min(t1 - t);
        if (dt_step - stage.dt).abs() > 1e-14 * dt_step.max(stage.dt) {
            stage = StageMatrix::build(&disc.a, dt_step, work);
            stats.refactorizations += 1;
        }

        // Stage 1.
        disc.rhs_into(t, &u, &mut f1, work);
        k1.fill(0.0);
        bicgstab(
            &stage.m,
            &stage.ilu,
            &f1,
            &mut k1,
            opts.lin_tol,
            opts.lin_max_iters,
            work,
        )
        .map_err(IntegrateError::Linear)?;

        // Stage 2.
        for i in 0..n {
            u_stage[i] = u[i] + dt_step * k1[i];
        }
        disc.rhs_into(t + dt_step, &u_stage, &mut f2, work);
        for i in 0..n {
            f2[i] -= 2.0 * k1[i];
        }
        k2.fill(0.0);
        bicgstab(
            &stage.m,
            &stage.ilu,
            &f2,
            &mut k2,
            opts.lin_tol,
            opts.lin_max_iters,
            work,
        )
        .map_err(IntegrateError::Linear)?;

        // Candidate solution and error estimate.
        for i in 0..n {
            u_new[i] = u[i] + dt_step * (1.5 * k1[i] + 0.5 * k2[i]);
        }
        let err: Vec<f64> = (0..n).map(|i| 0.5 * dt_step * (k1[i] + k2[i])).collect();
        let enorm = error_norm(&err, &u, opts.tol);
        work.add_vector_ops(n, 8);

        if enorm <= 1.0 {
            // Accept.
            std::mem::swap(&mut u, &mut u_new);
            t += dt_step;
            stats.steps += 1;
            work.add_step();
        } else {
            stats.rejected += 1;
            work.add_rejected();
        }

        // PI-less elementary controller with safety factor and dead band.
        let factor = (0.8 / enorm.sqrt()).clamp(0.2, 2.0);
        let dt_proposed = (dt_step * factor).min(span);
        if !(0.9..=1.1).contains(&(dt_proposed / dt)) || enorm > 1.0 {
            dt = dt_proposed;
        }
        if dt < dt_floor {
            return Err(IntegrateError::StepSizeUnderflow { t });
        }
    }

    stats.final_dt = dt;
    Ok((u, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use crate::grid::Grid2;
    use crate::l2_norm;
    use crate::problem::Problem;

    fn solve_error(p: &Problem, grid: &Grid2, tol: f64) -> (f64, Ros2Stats, WorkCounter) {
        let mut work = WorkCounter::new();
        let disc = assemble(grid, p, &mut work);
        let u0 = disc.exact_interior(p.t0);
        let (u1, stats) = integrate(
            &disc,
            u0,
            p.t0,
            p.t_end,
            &Ros2Options::with_tol(tol),
            &mut work,
        )
        .unwrap();
        let exact = disc.exact_interior(p.t_end);
        let diff: Vec<f64> = u1.iter().zip(&exact).map(|(a, b)| a - b).collect();
        (l2_norm(&diff), stats, work)
    }

    #[test]
    fn integrates_manufactured_problem_accurately() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 2, 2);
        let (err, stats, _) = solve_error(&p, &g, 1e-5);
        assert!(err < 5e-3, "error too large: {err}");
        assert!(stats.steps > 0);
    }

    #[test]
    fn integrates_transport_benchmark() {
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 3, 3); // 32x32
        let (err, _, _) = solve_error(&p, &g, 1e-4);
        // The sharp Gaussian (width ~0.1) dominates the spatial error on a
        // 32x32 grid; ~2% L2 error is the expected discretization level.
        assert!(err < 3e-2, "error too large: {err}");
    }

    #[test]
    fn tighter_tolerance_costs_more_steps() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let (_, s3, _) = solve_error(&p, &g, 1e-3);
        let (_, s5, _) = solve_error(&p, &g, 1e-5);
        assert!(
            s5.steps > s3.steps,
            "1e-5 ({}) should need more steps than 1e-3 ({})",
            s5.steps,
            s3.steps
        );
    }

    #[test]
    fn tighter_tolerance_reduces_time_error() {
        // Use a fine grid so spatial error does not dominate.
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 3, 3);
        let (e_loose, _, _) = solve_error(&p, &g, 1e-2);
        let (e_tight, _, _) = solve_error(&p, &g, 1e-6);
        assert!(
            e_tight <= e_loose,
            "tight {e_tight} should be <= loose {e_loose}"
        );
    }

    #[test]
    fn dead_band_limits_refactorizations() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let (_, stats, _) = solve_error(&p, &g, 1e-4);
        assert!(
            stats.refactorizations < stats.steps + stats.rejected,
            "refactorizations {} should be below step count {}",
            stats.refactorizations,
            stats.steps
        );
    }

    #[test]
    fn work_is_charged() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let (_, stats, work) = solve_error(&p, &g, 1e-4);
        assert!(work.flops > 0);
        assert_eq!(work.steps as usize, stats.steps);
        assert!(work.lin_iters > 0);
        assert!(work.factorizations as usize >= stats.refactorizations);
    }

    #[test]
    fn max_steps_is_enforced() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let mut work = WorkCounter::new();
        let disc = assemble(&g, &p, &mut work);
        let u0 = disc.exact_interior(p.t0);
        let mut opts = Ros2Options::with_tol(1e-10);
        opts.max_steps = 3;
        let err = integrate(&disc, u0, p.t0, p.t_end, &opts, &mut work).unwrap_err();
        assert!(matches!(err, IntegrateError::MaxSteps { .. }));
    }

    #[test]
    fn lands_exactly_on_t_end() {
        // The error vs. the exact solution at t_end implicitly checks this,
        // but verify the stats too: integrating a *tiny* interval works.
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 0, 0);
        let mut work = WorkCounter::new();
        let disc = assemble(&g, &p, &mut work);
        let u0 = disc.exact_interior(0.0);
        let (u1, stats) = integrate(
            &disc,
            u0,
            0.0,
            1e-3,
            &Ros2Options::with_tol(1e-4),
            &mut work,
        )
        .unwrap();
        assert!(stats.steps >= 1);
        let exact = disc.exact_interior(1e-3);
        let diff: Vec<f64> = u1.iter().zip(&exact).map(|(a, b)| a - b).collect();
        assert!(l2_norm(&diff) < 1e-4);
    }
}
