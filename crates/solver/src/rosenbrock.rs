//! The adaptive Rosenbrock (ROS2) time integrator.
//!
//! The paper: "the adaptive time step in the time integrator (a so-called
//! Rosenbrock solver) is something that must be computed again and again."
//!
//! We implement the classic two-stage, second-order, L-stable ROS2 scheme
//! (γ = 1 + 1/√2), the workhorse for advection-diffusion problems at CWI:
//!
//! ```text
//! (I - γ·dt·A) k₁ = f(tₙ, uₙ)
//! (I - γ·dt·A) k₂ = f(tₙ + dt, uₙ + dt·k₁) - 2·k₁
//! uₙ₊₁ = uₙ + (3/2)·dt·k₁ + (1/2)·dt·k₂
//! ```
//!
//! The embedded first-order result `ûₙ₊₁ = uₙ + dt·k₁` yields the local
//! error estimate `dt·(k₁ + k₂)/2`, which drives the adaptive step
//! controller against the user tolerance (`le_tol` in the paper's command
//! line). The stage matrix depends only on `dt`, so the ILU factorization
//! is reused across steps and only recomputed when the controller actually
//! changes the step — with a ±10% dead band to avoid refactoring on noise.
//!
//! **Zero-allocation hot path.** The step loop performs no heap allocation
//! once the workspace is warm: the stage matrix `I − γ·dt·A` lives in a
//! pattern-reusing [`CachedStage`] whose values are rewritten in place when
//! `dt` changes, the ILU(0) factors are refreshed via
//! [`Ilu0::refactor`] on the cached combined-LU pattern, the Krylov scratch
//! is a reused [`KrylovWorkspace`], and the ROS2 stage vectors live in a
//! per-subsolve [`Ros2Workspace`]. The optimized path is bit-identical to
//! the retained reference implementation in [`crate::reference`] — same
//! floating-point results, same adaptive step sequence, same
//! (re)factorization counts.

use crate::assemble::Discretization;
use crate::linsolve::{bicgstab_tiered, Ilu0, KrylovWorkspace, SolveError};
use crate::simd::{F64x4, Tier, LANES};
use crate::sparse::CachedStage;
use crate::work::WorkCounter;

/// γ for L-stable ROS2.
pub const GAMMA: f64 = 1.0 + std::f64::consts::FRAC_1_SQRT_2;

/// Integration failure modes.
#[derive(Clone, Debug, PartialEq)]
pub enum IntegrateError {
    /// Step size driven below the representable floor.
    StepSizeUnderflow {
        /// Time at which the controller gave up.
        t: f64,
    },
    /// The stage linear solve failed.
    Linear(SolveError),
    /// Step budget exhausted before reaching `t1`.
    MaxSteps {
        /// Time reached.
        t: f64,
    },
}

impl std::fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrateError::StepSizeUnderflow { t } => {
                write!(f, "step size underflow at t = {t}")
            }
            IntegrateError::Linear(e) => write!(f, "linear solve failed: {e}"),
            IntegrateError::MaxSteps { t } => write!(f, "max steps reached at t = {t}"),
        }
    }
}

impl std::error::Error for IntegrateError {}

/// Options for [`integrate`].
#[derive(Clone, Copy, Debug)]
pub struct Ros2Options {
    /// Local error tolerance (used as both absolute and relative weight) —
    /// the paper's `le_tol`.
    pub tol: f64,
    /// Initial step (default: 1/64 of the interval).
    pub dt0: Option<f64>,
    /// Step budget.
    pub max_steps: usize,
    /// Relative tolerance for the stage linear solves.
    pub lin_tol: f64,
    /// Iteration cap for the stage linear solves.
    pub lin_max_iters: usize,
    /// Numerical tier for the reductions inside the stage solves and the
    /// error norm. [`Tier::Exact`] (the default) is bit-identical to
    /// [`crate::reference`]; [`Tier::Fast`] reassociates them (see
    /// [`crate::simd`]) for speed with a measured error bound.
    pub tier: Tier,
}

impl Ros2Options {
    /// Defaults for a given `le_tol`.
    pub fn with_tol(tol: f64) -> Self {
        Ros2Options {
            tol,
            dt0: None,
            max_steps: 200_000,
            lin_tol: 1e-10,
            lin_max_iters: 500,
            tier: Tier::Exact,
        }
    }

    /// Builder-style tier override.
    pub fn with_tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }
}

/// Outcome statistics of an integration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ros2Stats {
    /// Accepted steps.
    pub steps: usize,
    /// Rejected steps.
    pub rejected: usize,
    /// Final step size.
    pub final_dt: f64,
    /// Number of stage-matrix refactorizations performed.
    pub refactorizations: usize,
}

/// Weighted RMS norm of the error estimate against `tol·(1 + |u|)`.
pub(crate) fn error_norm(err: &[f64], u: &[f64], tol: f64) -> f64 {
    let n = err.len().max(1);
    let sum: f64 = err
        .iter()
        .zip(u)
        .map(|(e, ui)| {
            let w = tol * (1.0 + ui.abs());
            let r = e / w;
            r * r
        })
        .sum();
    (sum / n as f64).sqrt()
}

/// Fast-tier [`error_norm`]: the same per-element term, accumulated in four
/// lanes (stride 4, combined `(a0+a1)+(a2+a3)`, sequential tail). The
/// per-step reduction is one of the latency-bound scalar chains the fast
/// tier exists to break; like [`crate::simd::dot_fast`] the pattern is
/// fixed, so the result is deterministic across backends.
fn error_norm_fast(err: &[f64], u: &[f64], tol: f64) -> f64 {
    debug_assert_eq!(err.len(), u.len());
    let n = err.len();
    let tolv = F64x4::splat(tol);
    let onev = F64x4::splat(1.0);
    let mut acc = F64x4::zero();
    let mut i = 0;
    // SAFETY: i + 4 <= n inside the loop.
    unsafe {
        while i + LANES <= n {
            let w = tolv.mul(onev.add(F64x4::load(u, i).abs()));
            let r = F64x4::load(err, i).div(w);
            acc = acc.add(r.mul(r));
            i += LANES;
        }
    }
    let mut sum = (acc.0[0] + acc.0[1]) + (acc.0[2] + acc.0[3]);
    while i < n {
        let w = tol * (1.0 + u[i].abs());
        let r = err[i] / w;
        sum += r * r;
        i += 1;
    }
    (sum / n.max(1) as f64).sqrt()
}

pub(crate) fn error_norm_tiered(tier: Tier, err: &[f64], u: &[f64], tol: f64) -> f64 {
    match tier {
        Tier::Exact => error_norm(err, u, tol),
        Tier::Fast => error_norm_fast(err, u, tol),
    }
}

/// The cached stage system: `I − γ·dt·A` with pattern-reusing values and
/// in-place-refreshable ILU(0) factors.
struct StageState {
    dt: f64,
    cache: CachedStage,
    ilu: Ilu0,
}

/// Reusable per-subsolve scratch for [`integrate_with`]: the six ROS2 stage
/// vectors, the error-estimate and forcing buffers, the Krylov workspace,
/// and the cached stage matrix + ILU(0) factors. After the workspace is
/// warm (first stage build at a given sparsity pattern), the integrate loop
/// performs zero heap allocations.
#[derive(Default)]
pub struct Ros2Workspace {
    f1: Vec<f64>,
    f2: Vec<f64>,
    k1: Vec<f64>,
    k2: Vec<f64>,
    u_stage: Vec<f64>,
    u_new: Vec<f64>,
    err: Vec<f64>,
    g: Vec<f64>,
    krylov: KrylovWorkspace,
    stage: Option<StageState>,
}

impl Ros2Workspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        for buf in [
            &mut self.f1,
            &mut self.f2,
            &mut self.k1,
            &mut self.k2,
            &mut self.u_stage,
            &mut self.u_new,
            &mut self.err,
            &mut self.g,
        ] {
            buf.resize(n, 0.0);
        }
    }
}

/// Integrate `du/dt = A u + g(t)` from `t0` to `t1` starting from the
/// interior vector `u0`, with adaptive ROS2. Returns the solution at `t1`
/// and run statistics; all work is charged to `work`. Allocates its own
/// scratch; repeated integrations should reuse a [`Ros2Workspace`] via
/// [`integrate_with`].
pub fn integrate(
    disc: &Discretization,
    u: Vec<f64>,
    t0: f64,
    t1: f64,
    opts: &Ros2Options,
    work: &mut WorkCounter,
) -> Result<(Vec<f64>, Ros2Stats), IntegrateError> {
    let mut ws = Ros2Workspace::new();
    integrate_with(disc, u, t0, t1, opts, &mut ws, work)
}

/// [`integrate`] on a caller-owned [`Ros2Workspace`]. Bit-identical to the
/// allocating entry point (and to the retained [`crate::reference`]
/// implementation): the same floating-point operations run in the same
/// order, only the buffers and the stage matrix pattern are reused.
pub fn integrate_with(
    disc: &Discretization,
    mut u: Vec<f64>,
    t0: f64,
    t1: f64,
    opts: &Ros2Options,
    ws: &mut Ros2Workspace,
    work: &mut WorkCounter,
) -> Result<(Vec<f64>, Ros2Stats), IntegrateError> {
    assert_eq!(u.len(), disc.n());
    let span = t1 - t0;
    assert!(span > 0.0, "empty integration interval");
    let mut t = t0;
    let mut dt = opts.dt0.unwrap_or(span / 64.0).min(span);
    let dt_floor = span * 1e-12;

    let mut stats = Ros2Stats {
        steps: 0,
        rejected: 0,
        final_dt: dt,
        refactorizations: 0,
    };

    let n = disc.n();
    ws.ensure(n);

    // Initial stage system: reuse the cached pattern when the workspace was
    // warmed on a matrix with the same sparsity structure (in-place value
    // rewrite + refactorization), build it once otherwise.
    match ws.stage.as_mut() {
        Some(st) if st.cache.matches(&disc.a) => {
            st.cache.rewrite(&disc.a, GAMMA * dt);
            st.ilu.refactor(st.cache.matrix(), work);
            st.dt = dt;
        }
        _ => {
            let cache = CachedStage::new(&disc.a, GAMMA * dt);
            let ilu = Ilu0::new(cache.matrix(), work);
            ws.stage = Some(StageState { dt, cache, ilu });
        }
    }
    stats.refactorizations += 1;

    while t < t1 - 1e-14 * span {
        if stats.steps + stats.rejected >= opts.max_steps {
            return Err(IntegrateError::MaxSteps { t });
        }
        // Clip the step to land exactly on t1, but avoid refactoring for a
        // sub-10% end adjustment by allowing a slightly longer last step to
        // be split evenly — simplest correct policy: clip and refactor when
        // needed.
        let dt_step = dt.min(t1 - t);
        {
            let st = ws.stage.as_mut().expect("stage built above");
            if (dt_step - st.dt).abs() > 1e-14 * dt_step.max(st.dt) {
                st.cache.rewrite(&disc.a, GAMMA * dt_step);
                st.ilu.refactor(st.cache.matrix(), work);
                st.dt = dt_step;
                stats.refactorizations += 1;
            }
        }
        let st = ws.stage.as_ref().expect("stage built above");

        // Stage 1.
        disc.rhs_into_with(t, &u, &mut ws.f1, &mut ws.g, work);
        ws.k1.fill(0.0);
        bicgstab_tiered(
            st.cache.matrix(),
            &st.ilu,
            &ws.f1,
            &mut ws.k1,
            opts.lin_tol,
            opts.lin_max_iters,
            opts.tier,
            &mut ws.krylov,
            work,
        )
        .map_err(IntegrateError::Linear)?;

        // Stage 2.
        for ((usi, ui), k1i) in ws.u_stage.iter_mut().zip(&u).zip(&ws.k1) {
            *usi = ui + dt_step * k1i;
        }
        disc.rhs_into_with(t + dt_step, &ws.u_stage, &mut ws.f2, &mut ws.g, work);
        for (f2i, k1i) in ws.f2.iter_mut().zip(&ws.k1) {
            *f2i -= 2.0 * k1i;
        }
        ws.k2.fill(0.0);
        bicgstab_tiered(
            st.cache.matrix(),
            &st.ilu,
            &ws.f2,
            &mut ws.k2,
            opts.lin_tol,
            opts.lin_max_iters,
            opts.tier,
            &mut ws.krylov,
            work,
        )
        .map_err(IntegrateError::Linear)?;

        // Candidate solution and error estimate.
        for (((uni, ui), k1i), k2i) in ws.u_new.iter_mut().zip(&u).zip(&ws.k1).zip(&ws.k2) {
            *uni = ui + dt_step * (1.5 * k1i + 0.5 * k2i);
        }
        for ((ei, k1i), k2i) in ws.err.iter_mut().zip(&ws.k1).zip(&ws.k2) {
            *ei = 0.5 * dt_step * (k1i + k2i);
        }
        let enorm = error_norm_tiered(opts.tier, &ws.err, &u, opts.tol);
        work.add_vector_ops(n, 8);

        if enorm <= 1.0 {
            // Accept.
            std::mem::swap(&mut u, &mut ws.u_new);
            t += dt_step;
            stats.steps += 1;
            work.add_step();
        } else {
            stats.rejected += 1;
            work.add_rejected();
        }

        // PI-less elementary controller with safety factor and dead band.
        let factor = (0.8 / enorm.sqrt()).clamp(0.2, 2.0);
        let dt_proposed = (dt_step * factor).min(span);
        if !(0.9..=1.1).contains(&(dt_proposed / dt)) || enorm > 1.0 {
            dt = dt_proposed;
        }
        if dt < dt_floor {
            return Err(IntegrateError::StepSizeUnderflow { t });
        }
    }

    stats.final_dt = dt;
    Ok((u, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use crate::grid::Grid2;
    use crate::l2_norm;
    use crate::problem::Problem;

    fn solve_error(p: &Problem, grid: &Grid2, tol: f64) -> (f64, Ros2Stats, WorkCounter) {
        let mut work = WorkCounter::new();
        let disc = assemble(grid, p, &mut work);
        let u0 = disc.exact_interior(p.t0);
        let (u1, stats) = integrate(
            &disc,
            u0,
            p.t0,
            p.t_end,
            &Ros2Options::with_tol(tol),
            &mut work,
        )
        .unwrap();
        let exact = disc.exact_interior(p.t_end);
        let diff: Vec<f64> = u1.iter().zip(&exact).map(|(a, b)| a - b).collect();
        (l2_norm(&diff), stats, work)
    }

    #[test]
    fn integrates_manufactured_problem_accurately() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 2, 2);
        let (err, stats, _) = solve_error(&p, &g, 1e-5);
        assert!(err < 5e-3, "error too large: {err}");
        assert!(stats.steps > 0);
    }

    #[test]
    fn integrates_transport_benchmark() {
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 3, 3); // 32x32
        let (err, _, _) = solve_error(&p, &g, 1e-4);
        // The sharp Gaussian (width ~0.1) dominates the spatial error on a
        // 32x32 grid; ~2% L2 error is the expected discretization level.
        assert!(err < 3e-2, "error too large: {err}");
    }

    #[test]
    fn tighter_tolerance_costs_more_steps() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let (_, s3, _) = solve_error(&p, &g, 1e-3);
        let (_, s5, _) = solve_error(&p, &g, 1e-5);
        assert!(
            s5.steps > s3.steps,
            "1e-5 ({}) should need more steps than 1e-3 ({})",
            s5.steps,
            s3.steps
        );
    }

    #[test]
    fn tighter_tolerance_reduces_time_error() {
        // Use a fine grid so spatial error does not dominate.
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 3, 3);
        let (e_loose, _, _) = solve_error(&p, &g, 1e-2);
        let (e_tight, _, _) = solve_error(&p, &g, 1e-6);
        assert!(
            e_tight <= e_loose,
            "tight {e_tight} should be <= loose {e_loose}"
        );
    }

    #[test]
    fn dead_band_limits_refactorizations() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let (_, stats, _) = solve_error(&p, &g, 1e-4);
        assert!(
            stats.refactorizations < stats.steps + stats.rejected,
            "refactorizations {} should be below step count {}",
            stats.refactorizations,
            stats.steps
        );
    }

    #[test]
    fn work_is_charged() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let (_, stats, work) = solve_error(&p, &g, 1e-4);
        assert!(work.flops > 0);
        assert_eq!(work.steps as usize, stats.steps);
        assert!(work.lin_iters > 0);
        // The first stage build is a full factorization; every dead-band
        // triggered rebuild afterwards is an in-place refactorization.
        assert_eq!(work.factorizations, 1);
        assert_eq!(
            (work.factorizations + work.refactorizations) as usize,
            stats.refactorizations
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // A second integration on a warmed workspace (same matrix pattern)
        // must reproduce the fresh-workspace run exactly, including the
        // step sequence, and must take the refactor-in-place path.
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 2, 1);
        let mut work = WorkCounter::new();
        let disc = assemble(&g, &p, &mut work);
        let u0 = disc.exact_interior(p.t0);
        let opts = Ros2Options::with_tol(1e-4);

        let (u_fresh, s_fresh) =
            integrate(&disc, u0.clone(), p.t0, p.t_end, &opts, &mut work).unwrap();

        let mut ws = Ros2Workspace::new();
        let mut w1 = WorkCounter::new();
        let (u_cold, s_cold) =
            integrate_with(&disc, u0.clone(), p.t0, p.t_end, &opts, &mut ws, &mut w1).unwrap();
        let mut w2 = WorkCounter::new();
        let (u_warm, s_warm) =
            integrate_with(&disc, u0, p.t0, p.t_end, &opts, &mut ws, &mut w2).unwrap();

        assert_eq!(u_fresh, u_cold);
        assert_eq!(u_fresh, u_warm);
        assert_eq!(s_fresh, s_cold);
        assert_eq!(s_fresh, s_warm);
        // Cold: one full factorization; warm: none at all.
        assert_eq!(w1.factorizations, 1);
        assert_eq!(w2.factorizations, 0);
        assert_eq!(w2.refactorizations as usize, s_warm.refactorizations);
    }

    #[test]
    fn max_steps_is_enforced() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let mut work = WorkCounter::new();
        let disc = assemble(&g, &p, &mut work);
        let u0 = disc.exact_interior(p.t0);
        let mut opts = Ros2Options::with_tol(1e-10);
        opts.max_steps = 3;
        let err = integrate(&disc, u0, p.t0, p.t_end, &opts, &mut work).unwrap_err();
        assert!(matches!(err, IntegrateError::MaxSteps { .. }));
    }

    #[test]
    fn lands_exactly_on_t_end() {
        // The error vs. the exact solution at t_end implicitly checks this,
        // but verify the stats too: integrating a *tiny* interval works.
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 0, 0);
        let mut work = WorkCounter::new();
        let disc = assemble(&g, &p, &mut work);
        let u0 = disc.exact_interior(0.0);
        let (u1, stats) = integrate(
            &disc,
            u0,
            0.0,
            1e-3,
            &Ros2Options::with_tol(1e-4),
            &mut work,
        )
        .unwrap();
        assert!(stats.steps >= 1);
        let exact = disc.exact_interior(1e-3);
        let diff: Vec<f64> = u1.iter().zip(&exact).map(|(a, b)| a - b).collect();
        assert!(l2_norm(&diff) < 1e-4);
    }
}
