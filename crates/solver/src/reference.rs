//! Retained pre-optimization solver path, kept as a bit-identity oracle.
//!
//! This module preserves the original allocating hot path exactly as it
//! was before the zero-allocation rework of the `subsolve` inner loop:
//! triplet-based matrix assembly ([`crate::assemble::assemble_reference`]),
//! the bounds-checked sparse kernels (matvec and ILU(0) triangular solves
//! as originally written), full stage-matrix rebuilds
//! (`identity_minus_scaled` + a fresh factorization per dead-band trigger
//! — including the original factorization's per-row temporary copies), a
//! BiCGSTAB that allocates its scratch vectors on every call, an
//! allocating right-hand-side evaluation, and a per-step heap-allocated
//! error vector.
//!
//! It exists so that the optimized path can be *proven* equivalent, not
//! just believed: `tests/bit_identity.rs` runs both on the same grids and
//! asserts bitwise-equal solution values plus identical step, rejection,
//! iteration and flop counts. Any rewrite of the hot loops that changes a
//! floating-point operation order will trip that test. Keep this module
//! frozen — it is the oracle, not a second production path.

use crate::assemble::{assemble_reference, Discretization};
use crate::linsolve::{SolveError, SolveStats};
use crate::rosenbrock::{error_norm, IntegrateError, Ros2Options, Ros2Stats, GAMMA};
use crate::sparse::Csr;
use crate::subsolve::{SubsolveRequest, SubsolveResult};
use crate::work::WorkCounter;

/// The original bounds-checked CSR matvec, row slices and all.
fn ref_matvec_into(a: &Csr, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.n());
    assert_eq!(y.len(), a.n());
    #[allow(clippy::needless_range_loop)] // verbatim original kernel
    for r in 0..a.n() {
        let (cols, vals) = a.row(r);
        let mut acc = 0.0;
        for (c, v) in cols.iter().zip(vals) {
            acc += v * x[*c];
        }
        y[r] = acc;
    }
}

/// The original `Discretization::rhs_into`: matvec plus an allocating
/// forcing evaluation.
fn ref_rhs_into(disc: &Discretization, t: f64, u: &[f64], out: &mut [f64], work: &mut WorkCounter) {
    ref_matvec_into(&disc.a, u, out);
    let mut g = vec![0.0; disc.n()];
    disc.forcing_into(t, &mut g);
    for (o, gi) in out.iter_mut().zip(&g) {
        *o += gi;
    }
    work.add_matvec(disc.a.nnz());
}

/// The original ILU(0): factorization with per-row index/value copies to
/// satisfy the borrow checker, and the branch-per-entry triangular solves.
struct RefIlu0 {
    lu: Csr,
    diag_pos: Vec<usize>,
}

impl RefIlu0 {
    fn new(a: &Csr, work: &mut WorkCounter) -> Self {
        let n = a.n();
        let mut lu = a.clone();
        let mut diag_pos = vec![0usize; n];
        #[allow(clippy::needless_range_loop)] // row index drives two arrays
        for r in 0..n {
            let (cols, _) = lu.row(r);
            diag_pos[r] = cols
                .iter()
                .position(|&c| c == r)
                .unwrap_or_else(|| panic!("ILU(0): row {r} has no diagonal entry"));
        }
        // IKJ-variant ILU(0).
        for i in 0..n {
            // We need row i (mutable) and rows k < i (immutable). Copy row
            // i's indices first to appease the borrow checker cheaply.
            let (icols, _) = lu.row(i);
            let icols: Vec<usize> = icols.to_vec();
            for (ki, &k) in icols.iter().enumerate() {
                if k >= i {
                    break;
                }
                // pivot = a[i][k] / a[k][k]
                let akk = {
                    let (_, kvals) = lu.row(k);
                    kvals[diag_pos[k]]
                };
                let akk = if akk.abs() < 1e-300 {
                    1e-300_f64.copysign(akk)
                } else {
                    akk
                };
                let pivot = {
                    let ivals = lu.row_vals_mut(i);
                    ivals[ki] /= akk;
                    ivals[ki]
                };
                // Row update: a[i][j] -= pivot * a[k][j] for j > k in both
                // patterns.
                let (kcols, kvals) = {
                    let (c, v) = lu.row(k);
                    (c.to_vec(), v.to_vec())
                };
                let ivals = lu.row_vals_mut(i);
                let mut ji = ki + 1;
                for (kc, kv) in kcols.iter().zip(&kvals) {
                    if *kc <= k {
                        continue;
                    }
                    // advance ji to the first column >= kc
                    while ji < icols.len() && icols[ji] < *kc {
                        ji += 1;
                    }
                    if ji == icols.len() {
                        break;
                    }
                    if icols[ji] == *kc {
                        ivals[ji] -= pivot * kv;
                    }
                }
            }
        }
        work.add_factorization(lu.nnz());
        RefIlu0 { lu, diag_pos }
    }

    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter) {
        let n = self.lu.n();
        // Forward solve L y = r (unit diagonal), y stored in z.
        for i in 0..n {
            let (cols, vals) = self.lu.row(i);
            let mut acc = r[i];
            for (c, v) in cols.iter().zip(vals) {
                if *c >= i {
                    break;
                }
                acc -= v * z[*c];
            }
            z[i] = acc;
        }
        // Backward solve U z = y.
        for i in (0..n).rev() {
            let (cols, vals) = self.lu.row(i);
            let mut acc = z[i];
            let dp = self.diag_pos[i];
            for k in (dp + 1)..cols.len() {
                acc -= vals[k] * z[cols[k]];
            }
            z[i] = acc / vals[dp];
        }
        work.add_precond_apply(self.lu.nnz());
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// The original BiCGSTAB: scratch vectors allocated on every call, the
/// original kernels underneath.
fn ref_bicgstab(
    a: &Csr,
    precond: &RefIlu0,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
    work: &mut WorkCounter,
) -> Result<SolveStats, SolveError> {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = norm2(b).max(1e-300);

    let mut r = vec![0.0; n];
    ref_matvec_into(a, x, &mut r);
    work.add_matvec(a.nnz());
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let r_hat = r.clone();
    let mut rho = 1.0_f64;
    let mut alpha = 1.0_f64;
    let mut omega = 1.0_f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut p_hat = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut s_hat = vec![0.0; n];
    let mut t = vec![0.0; n];

    let mut resid = norm2(&r) / bnorm;
    if resid <= rel_tol {
        return Ok(SolveStats {
            iterations: 0,
            residual: resid,
        });
    }

    for it in 1..=max_iters {
        work.add_lin_iter();
        let rho_new = dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it - 1 });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        precond.apply(&p, &mut p_hat, work);
        ref_matvec_into(a, &p_hat, &mut v);
        work.add_matvec(a.nnz());
        let rv = dot(&r_hat, &v);
        if rv.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        alpha = rho_new / rv;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm2(&s) / bnorm <= rel_tol {
            for i in 0..n {
                x[i] += alpha * p_hat[i];
            }
            work.add_vector_ops(n, 6);
            return Ok(SolveStats {
                iterations: it,
                residual: norm2(&s) / bnorm,
            });
        }
        precond.apply(&s, &mut s_hat, work);
        ref_matvec_into(a, &s_hat, &mut t);
        work.add_matvec(a.nnz());
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        omega = dot(&t, &s) / tt;
        if omega.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        for i in 0..n {
            x[i] += alpha * p_hat[i] + omega * s_hat[i];
            r[i] = s[i] - omega * t[i];
        }
        work.add_vector_ops(n, 10);
        resid = norm2(&r) / bnorm;
        if resid <= rel_tol {
            return Ok(SolveStats {
                iterations: it,
                residual: resid,
            });
        }
        rho = rho_new;
    }
    Err(SolveError::MaxIterations { residual: resid })
}

struct StageMatrix {
    dt: f64,
    m: Csr,
    ilu: RefIlu0,
}

impl StageMatrix {
    fn build(a: &Csr, dt: f64, work: &mut WorkCounter) -> Self {
        let m = a.identity_minus_scaled(GAMMA * dt);
        let ilu = RefIlu0::new(&m, work);
        StageMatrix { dt, m, ilu }
    }
}

/// The original allocating ROS2 integrator, verbatim. See the module docs:
/// this is the oracle for `crate::rosenbrock::integrate` and must stay
/// bit-identical to the state of the code before the zero-allocation
/// rework.
pub fn integrate_reference(
    disc: &Discretization,
    mut u: Vec<f64>,
    t0: f64,
    t1: f64,
    opts: &Ros2Options,
    work: &mut WorkCounter,
) -> Result<(Vec<f64>, Ros2Stats), IntegrateError> {
    assert_eq!(u.len(), disc.n());
    let span = t1 - t0;
    assert!(span > 0.0, "empty integration interval");
    let mut t = t0;
    let mut dt = opts.dt0.unwrap_or(span / 64.0).min(span);
    let dt_floor = span * 1e-12;

    let mut stats = Ros2Stats {
        steps: 0,
        rejected: 0,
        final_dt: dt,
        refactorizations: 0,
    };

    let n = disc.n();
    let mut f1 = vec![0.0; n];
    let mut f2 = vec![0.0; n];
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut u_stage = vec![0.0; n];
    let mut u_new = vec![0.0; n];

    let mut stage = StageMatrix::build(&disc.a, dt, work);
    stats.refactorizations += 1;

    while t < t1 - 1e-14 * span {
        if stats.steps + stats.rejected >= opts.max_steps {
            return Err(IntegrateError::MaxSteps { t });
        }
        let dt_step = dt.min(t1 - t);
        if (dt_step - stage.dt).abs() > 1e-14 * dt_step.max(stage.dt) {
            stage = StageMatrix::build(&disc.a, dt_step, work);
            stats.refactorizations += 1;
        }

        // Stage 1.
        ref_rhs_into(disc, t, &u, &mut f1, work);
        k1.fill(0.0);
        ref_bicgstab(
            &stage.m,
            &stage.ilu,
            &f1,
            &mut k1,
            opts.lin_tol,
            opts.lin_max_iters,
            work,
        )
        .map_err(IntegrateError::Linear)?;

        // Stage 2.
        for i in 0..n {
            u_stage[i] = u[i] + dt_step * k1[i];
        }
        ref_rhs_into(disc, t + dt_step, &u_stage, &mut f2, work);
        for i in 0..n {
            f2[i] -= 2.0 * k1[i];
        }
        k2.fill(0.0);
        ref_bicgstab(
            &stage.m,
            &stage.ilu,
            &f2,
            &mut k2,
            opts.lin_tol,
            opts.lin_max_iters,
            work,
        )
        .map_err(IntegrateError::Linear)?;

        // Candidate solution and error estimate.
        for i in 0..n {
            u_new[i] = u[i] + dt_step * (1.5 * k1[i] + 0.5 * k2[i]);
        }
        let err: Vec<f64> = (0..n).map(|i| 0.5 * dt_step * (k1[i] + k2[i])).collect();
        let enorm = error_norm(&err, &u, opts.tol);
        work.add_vector_ops(n, 8);

        if enorm <= 1.0 {
            std::mem::swap(&mut u, &mut u_new);
            t += dt_step;
            stats.steps += 1;
            work.add_step();
        } else {
            stats.rejected += 1;
            work.add_rejected();
        }

        let factor = (0.8 / enorm.sqrt()).clamp(0.2, 2.0);
        let dt_proposed = (dt_step * factor).min(span);
        if !(0.9..=1.1).contains(&(dt_proposed / dt)) || enorm > 1.0 {
            dt = dt_proposed;
        }
        if dt < dt_floor {
            return Err(IntegrateError::StepSizeUnderflow { t });
        }
    }

    stats.final_dt = dt;
    Ok((u, stats))
}

/// The original allocating `subsolve`, verbatim: triplet assembly plus
/// [`integrate_reference`]. Oracle for [`crate::subsolve::subsolve`].
pub fn subsolve_reference(req: &SubsolveRequest) -> Result<SubsolveResult, IntegrateError> {
    let grid = req.grid();
    let mut work = WorkCounter::new();
    let disc = assemble_reference(&grid, &req.problem, &mut work);
    let u0 = match &req.initial_interior {
        Some(v) => {
            assert_eq!(v.len(), grid.interior_count(), "bad initial data size");
            v.as_ref().clone()
        }
        None => disc.exact_interior(req.t0),
    };
    let (u1, stats) = integrate_reference(
        &disc,
        u0,
        req.t0,
        req.t1,
        &Ros2Options::with_tol(req.tol),
        &mut work,
    )?;
    let p = req.problem;
    let t1 = req.t1;
    let values = std::sync::Arc::new(grid.expand_interior(&u1, |x, y| p.boundary(x, y, t1)));
    Ok(SubsolveResult {
        l: req.l,
        m: req.m,
        values,
        work,
        steps: stats.steps,
        rejected: stats.rejected,
    })
}

/// The grid set the bit-identity regression covers: anisotropic and
/// isotropic members of a combination-technique level, exercising both
/// tall and wide pentadiagonal layouts (including rows with no east/west
/// or no north/south interior neighbors).
pub fn bit_identity_grids() -> Vec<(u32, u32)> {
    vec![(0, 4), (4, 0), (1, 3), (3, 1), (2, 2)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;

    #[test]
    fn reference_subsolve_runs_and_counts_work() {
        let p = Problem::manufactured_benchmark();
        let req = SubsolveRequest::for_grid(2, 1, 1, 1e-4, p);
        let res = subsolve_reference(&req).unwrap();
        assert!(res.steps > 0);
        assert!(res.work.flops > 0);
        // The reference path only ever performs full factorizations.
        assert_eq!(res.work.refactorizations, 0);
        assert!(res.work.factorizations > 0);
    }

    #[test]
    fn reference_kernels_match_production_kernels() {
        // The retained kernels and the optimized ones must agree bitwise on
        // the same inputs — matvec, ILU factors, and preconditioner solve.
        let p = Problem::transport_benchmark();
        let g = crate::grid::Grid2::new(2, 2, 1);
        let mut w = WorkCounter::new();
        let d = crate::assemble::assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(GAMMA * 0.013);

        let x: Vec<f64> = (0..m.n()).map(|i| ((i % 13) as f64) - 6.0).collect();
        let mut y_ref = vec![0.0; m.n()];
        let mut y_opt = vec![0.0; m.n()];
        ref_matvec_into(&m, &x, &mut y_ref);
        m.matvec_into(&x, &mut y_opt);
        assert_eq!(y_ref, y_opt);

        let ref_ilu = RefIlu0::new(&m, &mut w);
        let opt_ilu = crate::linsolve::Ilu0::new(&m, &mut w);
        let mut z_ref = vec![0.0; m.n()];
        let mut z_opt = vec![0.0; m.n()];
        ref_ilu.apply(&x, &mut z_ref, &mut w);
        use crate::linsolve::Preconditioner;
        opt_ilu.apply(&x, &mut z_opt, &mut w);
        assert_eq!(z_ref, z_opt);
    }

    #[test]
    fn grid_set_is_anisotropic_and_nonempty() {
        let grids = bit_identity_grids();
        assert!(grids.len() >= 3);
        assert!(grids.iter().any(|&(l, m)| l != m));
        assert!(grids.iter().any(|&(l, m)| l < m));
        assert!(grids.iter().any(|&(l, m)| l > m));
    }
}
