//! Restriction operators: fine grid → coarse grid.
//!
//! The inverse direction of [`crate::combine::prolong_bilinear`]. Used for
//! transferring a known field onto the anisotropic member grids (e.g. when
//! the master distributes an already-computed fine-grid state to the
//! workers) and by the convergence studies in [`crate::study`]. Two
//! standard operators:
//!
//! * **injection** — sample the fine field at the coarse nodes (exact for
//!   nested dyadic grids, where every coarse node coincides with a fine
//!   node);
//! * **full weighting** — the adjoint of bilinear prolongation (per
//!   direction `[1/4, 1/2, 1/4]`), restricted to factor-2-per-direction
//!   nestings; second-order accurate and smoothing.

use crate::grid::Grid2;

/// Injection: take the fine value at each coarse node. Requires the
/// coarse grid's nodes to be a subset of the fine grid's (dyadic nesting:
/// `coarse.l ≤ fine.l` and `coarse.m ≤ fine.m` with the same root).
pub fn restrict_inject(fine: &Grid2, values: &[f64], coarse: &Grid2) -> Vec<f64> {
    assert_eq!(values.len(), fine.node_count());
    assert_eq!(fine.root, coarse.root, "grids must share the root level");
    assert!(
        fine.index.l >= coarse.index.l && fine.index.m >= coarse.index.m,
        "injection requires a nested coarse grid"
    );
    let fx = 1usize << (fine.index.l - coarse.index.l);
    let fy = 1usize << (fine.index.m - coarse.index.m);
    let mut out = Vec::with_capacity(coarse.node_count());
    for j in 0..=coarse.ny {
        for i in 0..=coarse.nx {
            out.push(values[fine.node_idx(i * fx, j * fy)]);
        }
    }
    out
}

/// Full weighting for a factor-2 coarsening in both directions. Boundary
/// nodes are injected (Dirichlet data is exact there anyway).
pub fn restrict_full_weighting(fine: &Grid2, values: &[f64], coarse: &Grid2) -> Vec<f64> {
    assert_eq!(values.len(), fine.node_count());
    assert_eq!(fine.root, coarse.root);
    assert_eq!(
        (fine.index.l, fine.index.m),
        (coarse.index.l + 1, coarse.index.m + 1),
        "full weighting is defined for one dyadic level in each direction"
    );
    let mut out = Vec::with_capacity(coarse.node_count());
    for j in 0..=coarse.ny {
        for i in 0..=coarse.nx {
            let (fi, fj) = (2 * i, 2 * j);
            if coarse.is_boundary(i, j) {
                out.push(values[fine.node_idx(fi, fj)]);
                continue;
            }
            let v = |di: isize, dj: isize| {
                values[fine.node_idx((fi as isize + di) as usize, (fj as isize + dj) as usize)]
            };
            let center = v(0, 0);
            let edges = v(-1, 0) + v(1, 0) + v(0, -1) + v(0, 1);
            let corners = v(-1, -1) + v(-1, 1) + v(1, -1) + v(1, 1);
            out.push(0.25 * center + 0.125 * edges + 0.0625 * corners);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::prolong_bilinear;

    #[test]
    fn injection_is_exact_at_coincident_nodes() {
        let fine = Grid2::new(2, 2, 3);
        let coarse = Grid2::new(2, 0, 1);
        let f = |x: f64, y: f64| (3.0 * x).sin() + y * y;
        let fv = fine.sample(f);
        let cv = restrict_inject(&fine, &fv, &coarse);
        let want = coarse.sample(f);
        for (a, b) in cv.iter().zip(&want) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn injection_after_prolongation_is_identity() {
        let coarse = Grid2::new(2, 1, 0);
        let fine = Grid2::new(2, 3, 2);
        let cv = coarse.sample(|x, y| x * 2.0 - y);
        let fv = prolong_bilinear(&coarse, &cv, &fine);
        let back = restrict_inject(&fine, &fv, &coarse);
        for (a, b) in back.iter().zip(&cv) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn full_weighting_preserves_bilinear_fields() {
        let fine = Grid2::new(2, 2, 2);
        let coarse = Grid2::new(2, 1, 1);
        let f = |x: f64, y: f64| 1.0 + 2.0 * x - 0.5 * y + x * y;
        let fv = fine.sample(f);
        let cv = restrict_full_weighting(&fine, &fv, &coarse);
        let want = coarse.sample(f);
        for (a, b) in cv.iter().zip(&want) {
            assert!((a - b).abs() < 1e-13, "{a} vs {b}");
        }
    }

    #[test]
    fn full_weighting_smooths_noise() {
        // Alternating ±1 noise on interior fine nodes must be strongly
        // damped by full weighting; injection keeps it at full amplitude.
        let fine = Grid2::new(2, 2, 2);
        let coarse = Grid2::new(2, 1, 1);
        let mut fv = vec![0.0; fine.node_count()];
        for j in 0..=fine.ny {
            for i in 0..=fine.nx {
                if !fine.is_boundary(i, j) {
                    fv[fine.node_idx(i, j)] = if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
                }
            }
        }
        let fw = restrict_full_weighting(&fine, &fv, &coarse);
        let inj = restrict_inject(&fine, &fv, &coarse);
        let max_fw = crate::linf_norm(&coarse.restrict_interior(&fw));
        let max_inj = crate::linf_norm(&coarse.restrict_interior(&inj));
        assert!(max_fw < 0.3 * max_inj, "fw {max_fw} vs inj {max_inj}");
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn injection_rejects_non_nested_grids() {
        let fine = Grid2::new(2, 0, 2);
        let coarse = Grid2::new(2, 1, 0); // finer in x than `fine`
        let fv = fine.sample(|_, _| 0.0);
        let _ = restrict_inject(&fine, &fv, &coarse);
    }
}
