//! Convergence studies: the quantitative case *for* the sparse-grid
//! method.
//!
//! The paper's motivation is that the developers "found their algorithms
//! to be effective (good convergence rates) but inefficient (long
//! computing times)". This module measures both halves on the benchmark
//! problems: error vs level for the combination technique against the
//! full isotropic grid of equal finest mesh width, and the corresponding
//! work, yielding the accuracy-per-flop tables quoted in EXPERIMENTS.md.

use crate::combine::combine;
use crate::grid::{Grid2, GridIndex};
use crate::l2_norm;
use crate::problem::Problem;
use crate::rosenbrock::IntegrateError;
use crate::subsolve::{subsolve, SubsolveRequest};
use crate::work::WorkCounter;

/// One row of a convergence table.
#[derive(Clone, Debug)]
pub struct ConvergenceRow {
    /// Additional refinement level.
    pub level: u32,
    /// L2 error of the combination-technique solution on the finest grid.
    pub combination_error: f64,
    /// Work (flops) of all combination member solves.
    pub combination_flops: u64,
    /// L2 error of the single full isotropic grid `(level, level)`.
    pub full_grid_error: f64,
    /// Work of the full-grid solve.
    pub full_grid_flops: u64,
}

impl ConvergenceRow {
    /// Accuracy per flop advantage of the combination technique:
    /// `(full_error / comb_error) · (full_flops / comb_flops)` — > 1 means
    /// the sparse-grid method wins.
    pub fn advantage(&self) -> f64 {
        (self.full_grid_error / self.combination_error.max(1e-300))
            * (self.full_grid_flops as f64 / self.combination_flops.max(1) as f64)
    }
}

/// Run the study over `levels` at tolerance `tol` on `problem`.
pub fn convergence_study(
    root: u32,
    levels: impl IntoIterator<Item = u32>,
    tol: f64,
    problem: Problem,
) -> Result<Vec<ConvergenceRow>, IntegrateError> {
    let mut rows = Vec::new();
    for level in levels {
        let fine = Grid2::finest(root, level);
        let exact = fine.sample(|x, y| problem.exact(x, y, problem.t_end));

        // Combination members (shared buffers straight from the results).
        let mut sols: Vec<(GridIndex, std::sync::Arc<Vec<f64>>)> = Vec::new();
        let mut comb_flops = 0u64;
        for idx in Grid2::combination_indices(level) {
            let res = subsolve(&SubsolveRequest::for_grid(root, idx.l, idx.m, tol, problem))?;
            comb_flops += res.work.flops;
            sols.push((idx, res.values));
        }
        let views: Vec<(GridIndex, &[f64])> =
            sols.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        let mut w = WorkCounter::new();
        let combined = combine(root, level, &views, &mut w);
        let comb_err = {
            let d: Vec<f64> = combined.iter().zip(&exact).map(|(a, b)| a - b).collect();
            l2_norm(&d)
        };

        // The full isotropic grid of the same finest mesh width.
        let full = subsolve(&SubsolveRequest::for_grid(root, level, level, tol, problem))?;
        let full_err = {
            let d: Vec<f64> = full.values.iter().zip(&exact).map(|(a, b)| a - b).collect();
            l2_norm(&d)
        };

        rows.push(ConvergenceRow {
            level,
            combination_error: comb_err,
            combination_flops: comb_flops,
            full_grid_error: full_err,
            full_grid_flops: full.work.flops,
        });
    }
    Ok(rows)
}

/// Estimated order of accuracy from consecutive rows (log2 of the error
/// ratio per level).
pub fn observed_orders(rows: &[ConvergenceRow]) -> Vec<f64> {
    rows.windows(2)
        .map(|w| (w[0].combination_error / w[1].combination_error).log2())
        .collect()
}

/// Pretty-print a study as an aligned text table.
pub fn format_study(rows: &[ConvergenceRow]) -> String {
    let mut out =
        String::from("level   comb error     comb Mflop   full error     full Mflop   advantage\n");
    for r in rows {
        out.push_str(&format!(
            "{:>5}   {:>10.4e}   {:>10.2}   {:>10.4e}   {:>10.2}   {:>8.2}\n",
            r.level,
            r.combination_error,
            r.combination_flops as f64 / 1e6,
            r.full_grid_error,
            r.full_grid_flops as f64 / 1e6,
            r.advantage()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_decrease_with_level() {
        let rows = convergence_study(2, 0..=2, 1e-5, Problem::manufactured_benchmark()).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[1].combination_error < rows[0].combination_error);
        assert!(rows[2].combination_error < rows[1].combination_error);
        assert!(rows[2].full_grid_error < rows[1].full_grid_error);
    }

    #[test]
    fn combination_is_cheaper_than_full_grid() {
        let rows = convergence_study(2, 2..=3, 1e-4, Problem::manufactured_benchmark()).unwrap();
        for r in &rows {
            assert!(
                r.combination_flops < r.full_grid_flops,
                "level {}: comb {} vs full {}",
                r.level,
                r.combination_flops,
                r.full_grid_flops
            );
        }
        // The cost gap widens with level — the whole point of the method.
        let gap = |r: &ConvergenceRow| r.full_grid_flops as f64 / r.combination_flops as f64;
        assert!(gap(&rows[1]) > gap(&rows[0]));
    }

    #[test]
    fn observed_order_is_positive() {
        let rows = convergence_study(2, 1..=3, 1e-6, Problem::manufactured_benchmark()).unwrap();
        let orders = observed_orders(&rows);
        assert!(orders.iter().all(|o| *o > 0.4), "orders {orders:?}");
    }

    #[test]
    fn formatting_contains_all_levels() {
        let rows = convergence_study(2, 0..=1, 1e-4, Problem::manufactured_benchmark()).unwrap();
        let s = format_study(&rows);
        assert!(s.contains("advantage"));
        assert_eq!(s.lines().count(), 1 + rows.len());
    }
}
