//! `subsolve(l, m)` — the unit of work the renovation delegates to workers.
//!
//! "In this routine, a linear system of equations (Ax = b) is solved for
//! every time step" (§3). A subsolve owns one grid `(l, m)` completely: it
//! reads and writes data only from and to its own grid, which is the
//! concurrency property that makes it safe to run all subsolves of the
//! nested loop in parallel.
//!
//! The request/result types below are deliberately *plain data*: in the
//! renovated application they are serialized into stream units and travel
//! from the master to a worker and back.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::assemble::assemble;
use crate::grid::Grid2;
use crate::problem::Problem;
use crate::rosenbrock::{integrate_with, IntegrateError, Ros2Options, Ros2Workspace};
use crate::simd::Tier;
use crate::work::WorkCounter;

/// Everything a worker needs to run one subsolve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubsolveRequest {
    /// Root refinement level (coarsest grid), the paper's first argument.
    pub root: u32,
    /// Extra x-refinement of this grid.
    pub l: u32,
    /// Extra y-refinement of this grid.
    pub m: u32,
    /// Integration start time.
    pub t0: f64,
    /// Integration end time.
    pub t1: f64,
    /// The integrator tolerance, the paper's `le_tol`.
    pub tol: f64,
    /// The problem instance.
    pub problem: Problem,
    /// Initial interior values; `None` means "sample the problem's initial
    /// condition", which is what the paper's application does. Shared
    /// (`Arc`) so the master → worker hand-off never deep-copies the field.
    pub initial_interior: Option<Arc<Vec<f64>>>,
}

impl SubsolveRequest {
    /// Standard request for the paper's application: integrate grid
    /// `(l, m)` over the whole problem horizon from the analytic initial
    /// condition.
    pub fn for_grid(root: u32, l: u32, m: u32, tol: f64, problem: Problem) -> Self {
        SubsolveRequest {
            root,
            l,
            m,
            t0: problem.t0,
            t1: problem.t_end,
            tol,
            problem,
            initial_interior: None,
        }
    }

    /// The grid this request addresses.
    pub fn grid(&self) -> Grid2 {
        Grid2::new(self.root, self.l, self.m)
    }

    /// Size in bytes of the request as it would travel to a remote worker:
    /// parameters plus the initial data (if any). Used by the cluster
    /// simulator's network model.
    pub fn wire_size(&self) -> usize {
        64 + self.initial_interior.as_ref().map_or(0, |v| 8 * v.len())
    }
}

/// What a worker sends back.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SubsolveResult {
    /// Which grid was solved.
    pub l: u32,
    /// Which grid was solved (y index).
    pub m: u32,
    /// Full node vector (boundary included) at `t1`. Shared (`Arc`) so the
    /// worker → master → prolongation path passes one buffer by reference.
    pub values: Arc<Vec<f64>>,
    /// Work performed.
    pub work: WorkCounter,
    /// Accepted integrator steps.
    pub steps: usize,
    /// Rejected integrator steps.
    pub rejected: usize,
}

impl SubsolveResult {
    /// Wire size of the result (the full node field).
    pub fn wire_size(&self) -> usize {
        64 + 8 * self.values.len()
    }
}

/// Run one subsolve to completion. This is the computational heart the
/// paper's workers wrap. Allocates a fresh [`Ros2Workspace`]; workers that
/// process many requests should keep one workspace per thread and call
/// [`subsolve_with`] so the integrator's hot loop stays allocation-free
/// across jobs with matching sparsity patterns.
pub fn subsolve(req: &SubsolveRequest) -> Result<SubsolveResult, IntegrateError> {
    let mut ws = Ros2Workspace::new();
    subsolve_with(req, &mut ws)
}

/// [`subsolve`] on a caller-owned integrator workspace. Bit-identical to
/// [`subsolve`]; repeated calls reuse the stage-matrix pattern, ILU(0)
/// factors and Krylov scratch whenever consecutive requests share a grid
/// shape.
pub fn subsolve_with(
    req: &SubsolveRequest,
    ws: &mut Ros2Workspace,
) -> Result<SubsolveResult, IntegrateError> {
    subsolve_tiered(req, Tier::Exact, ws)
}

/// [`subsolve_with`] with an explicit numerical [`Tier`]. [`Tier::Exact`]
/// (what [`subsolve`] and [`subsolve_with`] use) is bit-identical to the
/// reference path; [`Tier::Fast`] reassociates the Krylov reductions and
/// the step-error norm for speed, within the error bound documented in
/// DESIGN.md.
pub fn subsolve_tiered(
    req: &SubsolveRequest,
    tier: Tier,
    ws: &mut Ros2Workspace,
) -> Result<SubsolveResult, IntegrateError> {
    let grid = req.grid();
    let mut work = WorkCounter::new();
    let disc = assemble(&grid, &req.problem, &mut work);
    let u0 = match &req.initial_interior {
        Some(v) => {
            assert_eq!(v.len(), grid.interior_count(), "bad initial data size");
            // The integrator owns its state vector; this is the single
            // copy on the whole master → worker path.
            v.as_ref().clone()
        }
        None => disc.exact_interior(req.t0),
    };
    let (u1, stats) = integrate_with(
        &disc,
        u0,
        req.t0,
        req.t1,
        &Ros2Options::with_tol(req.tol).with_tier(tier),
        ws,
        &mut work,
    )?;
    let p = req.problem;
    let t1 = req.t1;
    let values = Arc::new(grid.expand_interior(&u1, |x, y| p.boundary(x, y, t1)));
    Ok(SubsolveResult {
        l: req.l,
        m: req.m,
        values,
        work,
        steps: stats.steps,
        rejected: stats.rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l2_norm;

    #[test]
    fn subsolve_accuracy_on_isotropic_grid() {
        let p = Problem::manufactured_benchmark();
        let req = SubsolveRequest::for_grid(2, 2, 2, 1e-5, p);
        let res = subsolve(&req).unwrap();
        let grid = req.grid();
        let want = grid.sample(|x, y| p.exact(x, y, p.t_end));
        let d: Vec<f64> = res.values.iter().zip(&want).map(|(a, b)| a - b).collect();
        assert!(l2_norm(&d) < 5e-3, "error {}", l2_norm(&d));
        assert!(res.steps > 0);
        assert!(res.work.flops > 0);
    }

    #[test]
    fn subsolve_on_anisotropic_grids() {
        let p = Problem::manufactured_benchmark();
        for (l, m) in [(0, 3), (3, 0), (1, 2)] {
            let req = SubsolveRequest::for_grid(2, l, m, 1e-4, p);
            let res = subsolve(&req).unwrap();
            assert_eq!((res.l, res.m), (l, m));
            assert_eq!(res.values.len(), req.grid().node_count());
            assert!(res.values.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn boundary_values_are_exact() {
        let p = Problem::transport_benchmark();
        let req = SubsolveRequest::for_grid(2, 1, 1, 1e-3, p);
        let res = subsolve(&req).unwrap();
        let g = req.grid();
        for i in 0..=g.nx {
            let top = res.values[g.node_idx(i, g.ny)];
            assert!((top - p.boundary(g.x(i), 1.0, p.t_end)).abs() < 1e-12);
        }
    }

    #[test]
    fn explicit_initial_data_is_used() {
        let p = Problem::manufactured_benchmark();
        let g = Grid2::new(2, 1, 1);
        let mut req = SubsolveRequest::for_grid(2, 1, 1, 1e-4, p);
        // Start from zero instead of the analytic initial condition over a
        // tiny horizon: result must stay near zero (≠ analytic evolution).
        req.t1 = req.t0 + 1e-4;
        req.initial_interior = Some(Arc::new(vec![0.0; g.interior_count()]));
        let res = subsolve(&req).unwrap();
        let interior = g.restrict_interior(&res.values);
        assert!(l2_norm(&interior) < 0.2, "{}", l2_norm(&interior));
    }

    #[test]
    fn deterministic_given_same_request() {
        let p = Problem::transport_benchmark();
        let req = SubsolveRequest::for_grid(2, 2, 1, 1e-3, p);
        let a = subsolve(&req).unwrap();
        let b = subsolve(&req).unwrap();
        assert_eq!(a.values, b.values);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn shared_workspace_matches_fresh_workspace() {
        // A worker reusing one Ros2Workspace across jobs — including jobs
        // with different grid shapes, which force a cache rebuild — must
        // produce bitwise the same results as fresh-workspace runs.
        let p = Problem::transport_benchmark();
        let mut ws = Ros2Workspace::new();
        for (l, m) in [(2, 1), (2, 1), (1, 2), (2, 1)] {
            let req = SubsolveRequest::for_grid(2, l, m, 1e-3, p);
            let fresh = subsolve(&req).unwrap();
            let shared = subsolve_with(&req, &mut ws).unwrap();
            assert_eq!(fresh.values, shared.values);
            assert_eq!(fresh.steps, shared.steps);
            assert_eq!(fresh.work.flops, shared.work.flops);
        }
    }

    #[test]
    fn work_scales_with_grid_size() {
        let p = Problem::transport_benchmark();
        let small = subsolve(&SubsolveRequest::for_grid(2, 0, 0, 1e-3, p)).unwrap();
        let large = subsolve(&SubsolveRequest::for_grid(2, 2, 2, 1e-3, p)).unwrap();
        assert!(
            large.work.flops > 4 * small.work.flops,
            "large {} vs small {}",
            large.work.flops,
            small.work.flops
        );
    }

    #[test]
    fn wire_sizes_track_payloads() {
        let p = Problem::transport_benchmark();
        let req = SubsolveRequest::for_grid(2, 1, 1, 1e-3, p);
        assert_eq!(req.wire_size(), 64);
        let res = subsolve(&req).unwrap();
        assert_eq!(res.wire_size(), 64 + 8 * res.values.len());
    }
}
