//! Anisotropic tensor grids over the unit square.
//!
//! The sparse-grid method works on a family of rectangular grids indexed by
//! a pair `(l, m)`: grid `(l, m)` has `2^(root+l)` cells in the x direction
//! and `2^(root+m)` cells in the y direction, where `root` is the paper's
//! "refinement level of the coarsest grid" command-line parameter. All
//! grids of *level* `lm = l + m` have the same number of cells but different
//! aspect ratios; the combination technique exploits exactly this.
//!
//! Values live on grid **nodes** (vertices), including the boundary:
//! a grid has `(nx+1) × (ny+1)` nodes, of which the `(nx-1) × (ny-1)`
//! interior ones are unknowns of the PDE discretization.

use std::fmt;

/// The `(l, m)` refinement index of a grid (refinement *above* the root
/// level, per direction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridIndex {
    /// Extra x-refinement above the root level.
    pub l: u32,
    /// Extra y-refinement above the root level.
    pub m: u32,
}

impl GridIndex {
    /// Construct an index.
    pub fn new(l: u32, m: u32) -> Self {
        GridIndex { l, m }
    }

    /// The grid *level* `lm = l + m`.
    pub fn level(&self) -> u32 {
        self.l + self.m
    }
}

impl fmt::Display for GridIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.l, self.m)
    }
}

/// A rectangular tensor grid on `[0,1]²`.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid2 {
    /// Root refinement (coarsest-grid level).
    pub root: u32,
    /// The `(l, m)` index.
    pub index: GridIndex,
    /// Number of cells in x: `2^(root+l)`.
    pub nx: usize,
    /// Number of cells in y: `2^(root+m)`.
    pub ny: usize,
    /// Mesh width in x.
    pub hx: f64,
    /// Mesh width in y.
    pub hy: f64,
}

impl Grid2 {
    /// Build grid `(l, m)` over the root refinement.
    pub fn new(root: u32, l: u32, m: u32) -> Self {
        let nx = 1usize << (root + l);
        let ny = 1usize << (root + m);
        Grid2 {
            root,
            index: GridIndex::new(l, m),
            nx,
            ny,
            hx: 1.0 / nx as f64,
            hy: 1.0 / ny as f64,
        }
    }

    /// The isotropic finest grid of a combination at `level`: `(level, level)`.
    pub fn finest(root: u32, level: u32) -> Self {
        Grid2::new(root, level, level)
    }

    /// Number of nodes per row (x direction), boundary included.
    pub fn nodes_x(&self) -> usize {
        self.nx + 1
    }

    /// Number of nodes per column (y direction), boundary included.
    pub fn nodes_y(&self) -> usize {
        self.ny + 1
    }

    /// Total node count, boundary included.
    pub fn node_count(&self) -> usize {
        self.nodes_x() * self.nodes_y()
    }

    /// Number of interior nodes (the PDE unknowns).
    pub fn interior_count(&self) -> usize {
        (self.nx - 1) * (self.ny - 1)
    }

    /// x coordinate of node column `i` (`0 ..= nx`).
    pub fn x(&self, i: usize) -> f64 {
        i as f64 * self.hx
    }

    /// y coordinate of node row `j` (`0 ..= ny`).
    pub fn y(&self, j: usize) -> f64 {
        j as f64 * self.hy
    }

    /// Flat index of node `(i, j)` in a full node vector (row-major, j
    /// outer).
    pub fn node_idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= self.nx && j <= self.ny);
        j * self.nodes_x() + i
    }

    /// Flat index of interior node `(i, j)` (`1 ..= nx-1`, `1 ..= ny-1`) in
    /// an interior-only vector.
    pub fn interior_idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i >= 1 && i < self.nx && j >= 1 && j < self.ny);
        (j - 1) * (self.nx - 1) + (i - 1)
    }

    /// Is node `(i, j)` on the boundary?
    pub fn is_boundary(&self, i: usize, j: usize) -> bool {
        i == 0 || j == 0 || i == self.nx || j == self.ny
    }

    /// Evaluate a function at every node into a full node vector.
    pub fn sample(&self, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.node_count());
        for j in 0..=self.ny {
            let y = self.y(j);
            for i in 0..=self.nx {
                v.push(f(self.x(i), y));
            }
        }
        v
    }

    /// Extract the interior part of a full node vector.
    /// Evaluate `f(x, y)` at every *interior* node, in row-major interior
    /// order (the layout of `initial_interior` / solver unknowns). This is
    /// the sampling loop shared by the master's initialization and the
    /// worker-side exact/initial field construction.
    pub fn sample_interior(&self, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.interior_count());
        for j in 1..self.ny {
            let y = self.y(j);
            for i in 1..self.nx {
                v.push(f(self.x(i), y));
            }
        }
        v
    }

    pub fn restrict_interior(&self, full: &[f64]) -> Vec<f64> {
        assert_eq!(full.len(), self.node_count());
        let mut v = Vec::with_capacity(self.interior_count());
        for j in 1..self.ny {
            for i in 1..self.nx {
                v.push(full[self.node_idx(i, j)]);
            }
        }
        v
    }

    /// Scatter an interior vector back into a full node vector whose
    /// boundary values are produced by `boundary(x, y)`.
    pub fn expand_interior(
        &self,
        interior: &[f64],
        boundary: impl Fn(f64, f64) -> f64,
    ) -> Vec<f64> {
        assert_eq!(interior.len(), self.interior_count());
        let mut full = vec![0.0; self.node_count()];
        for j in 0..=self.ny {
            for i in 0..=self.nx {
                let idx = self.node_idx(i, j);
                full[idx] = if self.is_boundary(i, j) {
                    boundary(self.x(i), self.y(j))
                } else {
                    interior[self.interior_idx(i, j)]
                };
            }
        }
        full
    }

    /// All grid indices visited by the paper's nested loop for a given
    /// additional refinement `level`:
    ///
    /// ```c
    /// for (lm = level - 1; lm <= level; lm++)
    ///     for (l = 0; l <= lm; l++)
    ///         subsolve(l, lm - l);
    /// ```
    ///
    /// For `level ≥ 1` this yields `2·level + 1` grids — which is exactly
    /// the paper's worker count `w = 2l + 1`.
    pub fn combination_indices(level: u32) -> Vec<GridIndex> {
        let mut out = Vec::new();
        let lo = level.saturating_sub(1);
        for lm in lo..=level {
            for l in 0..=lm {
                out.push(GridIndex::new(l, lm - l));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_spacings() {
        let g = Grid2::new(2, 1, 3);
        assert_eq!(g.nx, 8);
        assert_eq!(g.ny, 32);
        assert!((g.hx - 0.125).abs() < 1e-15);
        assert_eq!(g.node_count(), 9 * 33);
        assert_eq!(g.interior_count(), 7 * 31);
    }

    #[test]
    fn all_grids_of_a_level_have_equal_cell_count() {
        for lm in 0..6 {
            let counts: Vec<usize> = (0..=lm)
                .map(|l| {
                    let g = Grid2::new(2, l, lm - l);
                    g.nx * g.ny
                })
                .collect();
            assert!(counts.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn node_indexing_round_trip() {
        let g = Grid2::new(2, 0, 1);
        let mut seen = vec![false; g.node_count()];
        for j in 0..=g.ny {
            for i in 0..=g.nx {
                let idx = g.node_idx(i, j);
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn interior_indexing_is_dense() {
        let g = Grid2::new(2, 1, 0);
        let mut seen = vec![false; g.interior_count()];
        for j in 1..g.ny {
            for i in 1..g.nx {
                let idx = g.interior_idx(i, j);
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn restrict_expand_round_trip() {
        let g = Grid2::new(2, 0, 0);
        let full = g.sample(|x, y| x + 10.0 * y);
        let interior = g.restrict_interior(&full);
        let back = g.expand_interior(&interior, |x, y| x + 10.0 * y);
        for (a, b) in full.iter().zip(&back) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn boundary_classification() {
        let g = Grid2::new(2, 0, 0);
        assert!(g.is_boundary(0, 2));
        assert!(g.is_boundary(2, 0));
        assert!(g.is_boundary(g.nx, 1));
        assert!(g.is_boundary(1, g.ny));
        assert!(!g.is_boundary(1, 1));
    }

    #[test]
    fn combination_indices_match_worker_count() {
        // w = 2*level + 1 grids for level >= 1; a single grid at level 0.
        assert_eq!(Grid2::combination_indices(0), vec![GridIndex::new(0, 0)]);
        for level in 1..=15 {
            let idx = Grid2::combination_indices(level);
            assert_eq!(idx.len() as u32, 2 * level + 1);
            // The two diagonals l+m = level-1 and l+m = level.
            assert!(idx
                .iter()
                .all(|g| g.level() == level || g.level() == level - 1));
        }
    }

    #[test]
    fn sample_evaluates_at_nodes() {
        let g = Grid2::new(1, 0, 0); // 2x2 cells, 3x3 nodes
        let v = g.sample(|x, y| x * y);
        assert_eq!(v.len(), 9);
        assert!((v[g.node_idx(2, 2)] - 1.0).abs() < 1e-15);
        assert!((v[g.node_idx(1, 1)] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn sample_interior_matches_restricted_full_sample() {
        for (root, l, m) in [(0, 0, 0), (1, 1, 0), (2, 1, 2)] {
            let g = Grid2::new(root, l, m);
            let f = |x: f64, y: f64| 3.0 * x + y * y;
            let interior = g.sample_interior(f);
            assert_eq!(interior.len(), g.interior_count());
            assert_eq!(interior, g.restrict_interior(&g.sample(f)));
        }
        // 1x1-cell grid: no interior nodes at all.
        assert!(Grid2::new(0, 0, 0).sample_interior(|_, _| 1.0).is_empty());
    }
}
