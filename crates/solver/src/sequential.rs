//! The whole sequential program — the Rust analogue of `SeqSourceCode.c`.
//!
//! ```c
//! root  = atoi(argv[1]);   /* refinement level of coarsest grid  */
//! level = atoi(argv[2]);   /* additional refinement              */
//! le_tol = atof(argv[3]);  /* tolerance of the integrator        */
//! /* init … */
//! for (lm = level - 1; lm <= level; lm++)
//!     for (l = 0; l <= lm; l++)
//!         subsolve(l, lm - l);
//! /* prolongation … */
//! ```
//!
//! This module preserves that structure exactly, so the *cut* of the
//! renovation is visible: everything except the [`subsolve`] calls in the
//! nested loop is "master" work, and each `subsolve` is the independent
//! unit a worker can take over.

use crate::combine::combine;
use crate::grid::{Grid2, GridIndex};
use crate::l2_norm;
use crate::problem::Problem;
use crate::rosenbrock::IntegrateError;
use crate::subsolve::{subsolve, SubsolveRequest, SubsolveResult};
use crate::work::WorkCounter;

/// The sequential application: parameters of a run.
#[derive(Clone, Copy, Debug)]
pub struct SequentialApp {
    /// Refinement level of the coarsest grid (`argv[1]`, the paper uses 2).
    pub root: u32,
    /// Additional refinement above the root level (`argv[2]`, 0–15).
    pub level: u32,
    /// Tolerance of the integrator (`argv[3]`, 1.0e-3 or 1.0e-4).
    pub le_tol: f64,
    /// The problem instance.
    pub problem: Problem,
}

/// Result of a full sequential run.
#[derive(Clone, Debug)]
pub struct SequentialResult {
    /// Combined solution on the finest grid `(level, level)` (full nodes).
    pub combined: Vec<f64>,
    /// The finest grid.
    pub fine_grid: Grid2,
    /// Per-grid results, in the nested-loop visit order.
    pub per_grid: Vec<SubsolveResult>,
    /// Total work including initialization and prolongation.
    pub work: WorkCounter,
    /// Discrete L2 error of the combined solution against the exact one at
    /// `t_end` (available because the benchmark problems are analytic).
    pub l2_error: f64,
}

impl SequentialApp {
    /// An app over the standard transport benchmark.
    pub fn new(root: u32, level: u32, le_tol: f64) -> Self {
        SequentialApp {
            root,
            level,
            le_tol,
            problem: Problem::transport_benchmark(),
        }
    }

    /// Replace the problem instance.
    pub fn with_problem(mut self, p: Problem) -> Self {
        self.problem = p;
        self
    }

    /// The grid visit order of the nested loop.
    pub fn grids(&self) -> Vec<GridIndex> {
        Grid2::combination_indices(self.level)
    }

    /// The request a worker would receive for grid `(l, m)`.
    pub fn request_for(&self, idx: GridIndex) -> SubsolveRequest {
        SubsolveRequest::for_grid(self.root, idx.l, idx.m, self.le_tol, self.problem)
    }

    /// Run the whole program sequentially.
    pub fn run(&self) -> Result<SequentialResult, IntegrateError> {
        let mut work = WorkCounter::new();
        // "Initialization data structure and some initial computations":
        // sampling the initial condition on the finest grid stands in for
        // the original's setup phase.
        let fine_grid = Grid2::finest(self.root, self.level);
        let p = self.problem;
        let _init = fine_grid.sample(|x, y| p.initial(x, y));
        work.add_vector_ops(fine_grid.node_count(), 2);

        // The heavy computational work: the nested loop over grids.
        let mut per_grid = Vec::new();
        for idx in self.grids() {
            let res = subsolve(&self.request_for(idx))?;
            work.merge(&res.work);
            per_grid.push(res);
        }

        // Prolongation work (the combination) on the finest grid. Borrows
        // the per-grid buffers in place — no copies.
        let combined = prolongation_phase(self.root, self.level, &per_grid, &mut work);

        let t_end = p.t_end;
        let exact = fine_grid.sample(|x, y| p.exact(x, y, t_end));
        let diff: Vec<f64> = combined.iter().zip(&exact).map(|(a, b)| a - b).collect();
        let l2_error = l2_norm(&diff);

        Ok(SequentialResult {
            combined,
            fine_grid,
            per_grid,
            work,
            l2_error,
        })
    }
}

/// Combine already-computed per-grid results (the master's prolongation
/// phase in the renovated application). Shared by the sequential and
/// concurrent versions so that their outputs are bit-identical.
pub fn prolongation_phase(
    root: u32,
    level: u32,
    per_grid: &[SubsolveResult],
    work: &mut WorkCounter,
) -> Vec<f64> {
    let solutions: Vec<(GridIndex, &[f64])> = per_grid
        .iter()
        .map(|r| (GridIndex::new(r.l, r.m), r.values.as_slice()))
        .collect();
    combine(root, level, &solutions, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_zero_runs_single_grid() {
        let app = SequentialApp::new(2, 0, 1e-3);
        let res = app.run().unwrap();
        assert_eq!(res.per_grid.len(), 1);
        assert_eq!(res.combined.len(), Grid2::finest(2, 0).node_count());
        assert!(res.l2_error.is_finite());
    }

    #[test]
    fn grid_count_matches_worker_formula() {
        for level in 1..=4 {
            let app = SequentialApp::new(2, level, 1e-3);
            assert_eq!(app.grids().len() as u32, 2 * level + 1);
        }
    }

    #[test]
    fn combined_error_is_reasonable() {
        let app = SequentialApp::new(2, 2, 1e-4).with_problem(Problem::manufactured_benchmark());
        let res = app.run().unwrap();
        assert!(res.l2_error < 1e-2, "error {}", res.l2_error);
    }

    #[test]
    fn error_decreases_with_level() {
        let p = Problem::manufactured_benchmark();
        let e1 = SequentialApp::new(2, 1, 1e-5)
            .with_problem(p)
            .run()
            .unwrap()
            .l2_error;
        let e3 = SequentialApp::new(2, 3, 1e-5)
            .with_problem(p)
            .run()
            .unwrap()
            .l2_error;
        assert!(e3 < e1, "level 3 ({e3:.3e}) should beat level 1 ({e1:.3e})");
    }

    #[test]
    fn work_grows_steeply_with_level() {
        let app1 = SequentialApp::new(2, 1, 1e-3);
        let app3 = SequentialApp::new(2, 3, 1e-3);
        let w1 = app1.run().unwrap().work.flops;
        let w3 = app3.run().unwrap().work.flops;
        assert!(w3 > 3 * w1, "w3 {w3} vs w1 {w1}");
    }

    #[test]
    fn tighter_tolerance_costs_more() {
        let a = SequentialApp::new(2, 2, 1e-3).run().unwrap().work.flops;
        let b = SequentialApp::new(2, 2, 1e-5).run().unwrap().work.flops;
        assert!(b > a, "tol 1e-5 ({b}) should cost more than 1e-3 ({a})");
    }

    #[test]
    fn prolongation_phase_matches_run() {
        let app = SequentialApp::new(2, 1, 1e-3);
        let res = app.run().unwrap();
        let mut w = WorkCounter::new();
        let again = prolongation_phase(2, 1, &res.per_grid, &mut w);
        assert_eq!(again, res.combined);
    }

    #[test]
    fn deterministic_runs() {
        let app = SequentialApp::new(2, 1, 1e-3);
        let a = app.run().unwrap();
        let b = app.run().unwrap();
        assert_eq!(a.combined, b.combined);
    }
}
