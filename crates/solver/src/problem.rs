//! Problem definitions: advection-diffusion instances with exact solutions.
//!
//! The original CWI code solves a time-dependent advection-diffusion
//! ("transport") problem. For a faithful *and testable* reproduction we use
//! model problems with closed-form exact solutions, so every stage of the
//! pipeline (discretization, integrator, combination) can be verified by
//! convergence tests:
//!
//! * [`ProblemKind::Gaussian`] — a Gaussian pulse advected by a constant
//!   velocity field while diffusing; the classic exact solution of the
//!   constant-coefficient advection-diffusion equation on free space
//!   (boundaries take time-dependent Dirichlet data from the exact
//!   solution).
//! * [`ProblemKind::Manufactured`] — `u = sin(πx)·sin(πy)·e^{-t}` with the
//!   source term manufactured so that it solves the PDE exactly; handy for
//!   stiff-regime tests since the solution never leaves the domain.

use serde::{Deserialize, Serialize};

/// The analytic shape of a problem instance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProblemKind {
    /// Travelling, spreading Gaussian pulse (zero source).
    Gaussian {
        /// Initial center x.
        x0: f64,
        /// Initial center y.
        y0: f64,
        /// Initial squared width `s0` (the pulse is `exp(-r²/s(t))` with
        /// `s(t) = s0 + 4·ε·t`).
        s0: f64,
    },
    /// `u = sin(πx)·sin(πy)·e^{-t}` with manufactured source.
    Manufactured,
}

/// A complete problem instance: PDE coefficients, time horizon, and the
/// analytic reference.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Advection velocity in x.
    pub ax: f64,
    /// Advection velocity in y.
    pub ay: f64,
    /// Diffusion coefficient ε.
    pub eps: f64,
    /// Start time.
    pub t0: f64,
    /// End time.
    pub t_end: f64,
    /// The analytic shape.
    pub kind: ProblemKind,
}

impl Problem {
    /// The default transport benchmark used throughout this repository: a
    /// Gaussian pulse advected diagonally across the unit square while
    /// diffusing — the qualitative analogue of the CWI transport problem.
    pub fn transport_benchmark() -> Problem {
        Problem {
            ax: 1.0,
            ay: 0.5,
            eps: 1e-2,
            t0: 0.0,
            t_end: 0.25,
            kind: ProblemKind::Gaussian {
                x0: 0.3,
                y0: 0.35,
                s0: 0.01,
            },
        }
    }

    /// A diffusion-dominated manufactured problem (useful for stiff tests).
    pub fn manufactured_benchmark() -> Problem {
        Problem {
            ax: 0.4,
            ay: 0.3,
            eps: 0.1,
            t0: 0.0,
            t_end: 0.5,
            kind: ProblemKind::Manufactured,
        }
    }

    /// Exact solution `u(x, y, t)`.
    pub fn exact(&self, x: f64, y: f64, t: f64) -> f64 {
        match self.kind {
            ProblemKind::Gaussian { x0, y0, s0 } => {
                let s = s0 + 4.0 * self.eps * t;
                let dx = x - x0 - self.ax * t;
                let dy = y - y0 - self.ay * t;
                (s0 / s) * (-(dx * dx + dy * dy) / s).exp()
            }
            ProblemKind::Manufactured => {
                (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin() * (-t).exp()
            }
        }
    }

    /// Source term `s(x, y, t)` such that the exact solution satisfies
    /// `u_t + a·∇u = ε Δu + s`.
    pub fn source(&self, x: f64, y: f64, t: f64) -> f64 {
        match self.kind {
            // The free-space Gaussian solves the homogeneous equation.
            ProblemKind::Gaussian { .. } => 0.0,
            ProblemKind::Manufactured => {
                use std::f64::consts::PI;
                let e = (-t).exp();
                let sx = (PI * x).sin();
                let sy = (PI * y).sin();
                let cx = (PI * x).cos();
                let cy = (PI * y).cos();
                // u_t = -u ; u_x = π cx sy e ; u_y = π sx cy e ;
                // Δu = -2π² u.
                let u = sx * sy * e;
                let ut = -u;
                let ux = PI * cx * sy * e;
                let uy = PI * sx * cy * e;
                let lap = -2.0 * PI * PI * u;
                ut + self.ax * ux + self.ay * uy - self.eps * lap
            }
        }
    }

    /// Dirichlet boundary value at time `t` (taken from the exact
    /// solution).
    pub fn boundary(&self, x: f64, y: f64, t: f64) -> f64 {
        self.exact(x, y, t)
    }

    /// Initial condition `u(x, y, t0)`.
    pub fn initial(&self, x: f64, y: f64) -> f64 {
        self.exact(x, y, self.t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check that `exact` satisfies the PDE with `source`.
    fn residual(p: &Problem, x: f64, y: f64, t: f64) -> f64 {
        let h = 1e-5;
        let ut = (p.exact(x, y, t + h) - p.exact(x, y, t - h)) / (2.0 * h);
        let ux = (p.exact(x + h, y, t) - p.exact(x - h, y, t)) / (2.0 * h);
        let uy = (p.exact(x, y + h, t) - p.exact(x, y - h, t)) / (2.0 * h);
        let uxx = (p.exact(x + h, y, t) - 2.0 * p.exact(x, y, t) + p.exact(x - h, y, t)) / (h * h);
        let uyy = (p.exact(x, y + h, t) - 2.0 * p.exact(x, y, t) + p.exact(x, y - h, t)) / (h * h);
        ut + p.ax * ux + p.ay * uy - p.eps * (uxx + uyy) - p.source(x, y, t)
    }

    #[test]
    fn gaussian_satisfies_pde() {
        let p = Problem::transport_benchmark();
        for &(x, y, t) in &[(0.3, 0.4, 0.05), (0.5, 0.5, 0.1), (0.42, 0.37, 0.2)] {
            assert!(
                residual(&p, x, y, t).abs() < 1e-4,
                "residual too large at ({x},{y},{t}): {}",
                residual(&p, x, y, t)
            );
        }
    }

    #[test]
    fn manufactured_satisfies_pde() {
        let p = Problem::manufactured_benchmark();
        for &(x, y, t) in &[(0.25, 0.75, 0.1), (0.6, 0.3, 0.3), (0.5, 0.5, 0.0)] {
            assert!(
                residual(&p, x, y, t).abs() < 1e-5,
                "residual too large: {}",
                residual(&p, x, y, t)
            );
        }
    }

    #[test]
    fn gaussian_peak_moves_with_velocity() {
        let p = Problem::transport_benchmark();
        let ProblemKind::Gaussian { x0, y0, .. } = p.kind else {
            unreachable!()
        };
        let t = 0.2;
        let peak = p.exact(x0 + p.ax * t, y0 + p.ay * t, t);
        let off = p.exact(x0, y0, t);
        assert!(peak > off, "peak should have advected away from the origin");
    }

    #[test]
    fn gaussian_amplitude_decays_by_diffusion() {
        let p = Problem::transport_benchmark();
        let ProblemKind::Gaussian { x0, y0, .. } = p.kind else {
            unreachable!()
        };
        let a0 = p.exact(x0, y0, 0.0);
        let t = 0.2;
        let a1 = p.exact(x0 + p.ax * t, y0 + p.ay * t, t);
        assert!(a1 < a0);
        assert!(a1 > 0.0);
    }

    #[test]
    fn manufactured_is_zero_on_boundary() {
        let p = Problem::manufactured_benchmark();
        for &v in &[0.0, 0.25, 0.5, 1.0] {
            assert!(p.exact(0.0, v, 0.3).abs() < 1e-14);
            assert!(p.exact(1.0, v, 0.3).abs() < 1e-12);
            assert!(p.exact(v, 0.0, 0.3).abs() < 1e-14);
            assert!(p.exact(v, 1.0, 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn initial_equals_exact_at_t0() {
        let p = Problem::transport_benchmark();
        assert_eq!(p.initial(0.3, 0.4), p.exact(0.3, 0.4, p.t0));
    }
}
