//! Compressed-sparse-row matrices.
//!
//! The discretized advection-diffusion operator is a pentadiagonal sparse
//! matrix; the Rosenbrock integrator additionally needs `I - γ·dt·A` every
//! time the step size changes. This module provides the minimal CSR tool
//! set for both, with sorted column indices per row (required by the ILU(0)
//! factorization in [`crate::linsolve`]).

/// A square sparse matrix in CSR format with per-row sorted columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Build from (row, col, value) triplets; duplicate entries are summed.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Csr {
        let mut entries: Vec<(usize, usize, f64)> = triplets.to_vec();
        entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        let mut current_row = 0usize;
        for (r, c, v) in entries {
            assert!(r < n && c < n, "triplet ({r},{c}) out of range for n={n}");
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if let (Some(&lc), Some(lv)) = (col_idx.last(), vals.last_mut()) {
                if lc == c && row_ptr.len() - 1 == r && col_idx.len() > *row_ptr.last().unwrap() {
                    // same row, same col as previous entry → accumulate
                    *lv += v;
                    continue;
                }
            }
            col_idx.push(c);
            vals.push(v);
        }
        while current_row < n {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        Csr {
            n,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Csr {
        Csr {
            n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row slice accessors: `(columns, values)` of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Mutable values of row `r` (columns stay fixed).
    pub fn row_vals_mut(&mut self, r: usize) -> &mut [f64] {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        &mut self.vals[lo..hi]
    }

    /// `y = A·x`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        #[allow(clippy::needless_range_loop)] // hot kernel: keep plain indexing
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c];
            }
            y[r] = acc;
        }
    }

    /// Allocating matvec.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec_into(x, &mut y);
        y
    }

    /// Entry `(r, c)` if stored.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|k| vals[k])
    }

    /// The main diagonal (0.0 where not stored).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.n).map(|r| self.get(r, r).unwrap_or(0.0)).collect()
    }

    /// Compute `I - s·A`. Every diagonal entry is materialized even when
    /// `A` has none stored.
    pub fn identity_minus_scaled(&self, s: f64) -> Csr {
        let mut triplets = Vec::with_capacity(self.nnz() + self.n);
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            let mut has_diag = false;
            for (c, v) in cols.iter().zip(vals) {
                if *c == r {
                    has_diag = true;
                    triplets.push((r, r, 1.0 - s * v));
                } else {
                    triplets.push((r, *c, -s * v));
                }
            }
            if !has_diag {
                triplets.push((r, r, 1.0));
            }
        }
        Csr::from_triplets(self.n, &triplets)
    }

    /// Dense representation (tests/diagnostics only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n]; self.n];
        #[allow(clippy::needless_range_loop)] // row index drives two arrays
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d[r][*c] += v;
            }
        }
        d
    }

    /// Infinity norm of the matrix (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.n)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr {
        // [ 2 -1  0]
        // [-1  2 -1]
        // [ 0 -1  2]
        Csr::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn from_triplets_and_get() {
        let a = example();
        assert_eq!(a.n(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), Some(2.0));
        assert_eq!(a.get(0, 2), None);
        assert_eq!(a.get(2, 1), Some(-1.0));
    }

    #[test]
    fn duplicates_are_summed() {
        let a = Csr::from_triplets(2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(a.get(0, 0), Some(3.5));
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn empty_rows_are_handled() {
        let a = Csr::from_triplets(4, &[(0, 0, 1.0), (3, 3, 2.0)]);
        assert_eq!(a.row(1).0.len(), 0);
        assert_eq!(a.row(2).0.len(), 0);
        let y = a.matvec(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let y = a.matvec(&x);
        let d = a.to_dense();
        for r in 0..3 {
            let want: f64 = (0..3).map(|c| d[r][c] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-14);
        }
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = Csr::identity(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn identity_minus_scaled() {
        let a = example();
        let m = a.identity_minus_scaled(0.5);
        // m = I - 0.5 A: diag = 1 - 1 = 0, off-diag = 0.5
        assert_eq!(m.get(0, 0), Some(0.0));
        assert_eq!(m.get(0, 1), Some(0.5));
        assert_eq!(m.get(1, 2), Some(0.5));
    }

    #[test]
    fn identity_minus_scaled_materializes_diagonal() {
        let a = Csr::from_triplets(2, &[(0, 1, 1.0)]);
        let m = a.identity_minus_scaled(2.0);
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(0, 1), Some(-2.0));
        assert_eq!(m.get(1, 1), Some(1.0));
    }

    #[test]
    fn diag_extraction() {
        let a = example();
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn norm_inf() {
        let a = example();
        assert_eq!(a.norm_inf(), 4.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplet_panics() {
        let _ = Csr::from_triplets(2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn columns_are_sorted_per_row() {
        let a = Csr::from_triplets(3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 1, 3.0)]);
        let (cols, _) = a.row(0);
        assert_eq!(cols, &[0, 1, 2]);
    }
}
