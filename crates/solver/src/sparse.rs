//! Compressed-sparse-row matrices.
//!
//! The discretized advection-diffusion operator is a pentadiagonal sparse
//! matrix; the Rosenbrock integrator additionally needs `I - γ·dt·A` every
//! time the step size changes. This module provides the minimal CSR tool
//! set for both, with sorted column indices per row (required by the ILU(0)
//! factorization in [`crate::linsolve`]).

/// A square sparse matrix in CSR format with per-row sorted columns.
///
/// # Invariants
///
/// Every constructor establishes (and no public method can break):
/// `row_ptr.len() == n + 1`, `row_ptr[0] == 0`, `row_ptr` monotone with
/// `row_ptr[n] == col_idx.len() == vals.len()`, and every stored column
/// index `< n`. The hot kernels ([`Csr::matvec_into`], the ILU(0)
/// triangular solves in [`crate::linsolve`]) rely on these invariants to
/// skip per-element bounds checks.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Build from (row, col, value) triplets; duplicate entries are summed.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Csr {
        let mut entries: Vec<(usize, usize, f64)> = triplets.to_vec();
        entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        let mut current_row = 0usize;
        for (r, c, v) in entries {
            assert!(r < n && c < n, "triplet ({r},{c}) out of range for n={n}");
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if let (Some(&lc), Some(lv)) = (col_idx.last(), vals.last_mut()) {
                if lc == c && row_ptr.len() - 1 == r && col_idx.len() > *row_ptr.last().unwrap() {
                    // same row, same col as previous entry → accumulate
                    *lv += v;
                    continue;
                }
            }
            col_idx.push(c);
            vals.push(v);
        }
        while current_row < n {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        Csr {
            n,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Build from pre-assembled CSR parts. `row_ptr` must be monotone with
    /// `row_ptr[0] == 0` and `row_ptr[n] == col_idx.len()`, and every row's
    /// columns must be strictly increasing. This is the fast path for
    /// stencil assemblies whose pattern is known a priori (no triplet sort).
    pub fn from_parts(n: usize, row_ptr: Vec<usize>, col_idx: Vec<usize>, vals: Vec<f64>) -> Csr {
        assert_eq!(row_ptr.len(), n + 1);
        assert_eq!(row_ptr[0], 0);
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        assert_eq!(col_idx.len(), vals.len());
        // Hard invariants the unchecked kernels rely on (one O(nnz) pass at
        // construction buys bounds-check-free matvec and triangular solves).
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        assert!(col_idx.iter().all(|&c| c < n));
        debug_assert!((0..n).all(|r| {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            row.windows(2).all(|w| w[0] < w[1])
        }));
        Csr {
            n,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Csr {
        Csr {
            n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row slice accessors: `(columns, values)` of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Mutable values of row `r` (columns stay fixed).
    pub fn row_vals_mut(&mut self, r: usize) -> &mut [f64] {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        &mut self.vals[lo..hi]
    }

    /// The row-pointer array (`n + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All stored column indices, row-major.
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// All stored values, row-major.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// All stored values, mutable (the pattern stays fixed).
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Split borrow for in-place factorizations: `(row_ptr, col_idx, vals)`
    /// with only the values mutable.
    pub fn raw_parts_mut(&mut self) -> (&[usize], &[usize], &mut [f64]) {
        (&self.row_ptr, &self.col_idx, &mut self.vals)
    }

    /// Do `self` and `other` store exactly the same sparsity pattern?
    pub fn same_pattern(&self, other: &Csr) -> bool {
        self.n == other.n && self.row_ptr == other.row_ptr && self.col_idx == other.col_idx
    }

    /// `y = A·x`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        // SAFETY: the struct invariants guarantee `row_ptr` is monotone with
        // `row_ptr[n] == col_idx.len() == vals.len()` and every stored column
        // `< n == x.len()`; `i < n` bounds the row_ptr and y accesses. The
        // accumulation order is unchanged from the checked loop.
        unsafe {
            for i in 0..self.n {
                let lo = *self.row_ptr.get_unchecked(i);
                let hi = *self.row_ptr.get_unchecked(i + 1);
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += *self.vals.get_unchecked(k)
                        * *x.get_unchecked(*self.col_idx.get_unchecked(k));
                }
                *y.get_unchecked_mut(i) = acc;
            }
        }
    }

    /// Allocating matvec.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec_into(x, &mut y);
        y
    }

    /// Entry `(r, c)` if stored.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|k| vals[k])
    }

    /// The main diagonal (0.0 where not stored).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.n).map(|r| self.get(r, r).unwrap_or(0.0)).collect()
    }

    /// Compute `I - s·A`. Every diagonal entry is materialized even when
    /// `A` has none stored.
    pub fn identity_minus_scaled(&self, s: f64) -> Csr {
        let mut triplets = Vec::with_capacity(self.nnz() + self.n);
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            let mut has_diag = false;
            for (c, v) in cols.iter().zip(vals) {
                if *c == r {
                    has_diag = true;
                    triplets.push((r, r, 1.0 - s * v));
                } else {
                    triplets.push((r, *c, -s * v));
                }
            }
            if !has_diag {
                triplets.push((r, r, 1.0));
            }
        }
        Csr::from_triplets(self.n, &triplets)
    }

    /// Dense representation (tests/diagnostics only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n]; self.n];
        #[allow(clippy::needless_range_loop)] // row index drives two arrays
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d[r][*c] += v;
            }
        }
        d
    }

    /// Infinity norm of the matrix (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.n)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

/// Where a stage-matrix entry takes its value from.
#[derive(Clone, Copy, Debug)]
enum StageSrc {
    /// Diagonal entry backed by the `A` value at this flat index: `1 − s·a`.
    DiagFrom(usize),
    /// Diagonal entry with no stored `A` counterpart: constant `1`.
    DiagOne,
    /// Off-diagonal entry backed by the `A` value at this flat index: `−s·a`.
    Off(usize),
}

/// A cached stage matrix `I − s·A` whose sparsity pattern (and the mapping
/// back to `A`'s entries) is computed exactly once. A change of `s` — the
/// Rosenbrock integrator's `γ·dt` — only rewrites the value array in place,
/// so the per-step-size-change cost is a single pass over the nonzeros
/// instead of a triplet sort and a fresh allocation.
///
/// [`CachedStage::rewrite`] produces bit-identical values to
/// [`Csr::identity_minus_scaled`]: the same expressions are evaluated for
/// the same entries in the same order.
#[derive(Clone, Debug)]
pub struct CachedStage {
    m: Csr,
    src: Vec<StageSrc>,
}

impl CachedStage {
    /// Build the pattern and initial values of `I − s·A`.
    pub fn new(a: &Csr, s: f64) -> CachedStage {
        let m = a.identity_minus_scaled(s);
        let mut src = Vec::with_capacity(m.nnz());
        for r in 0..m.n {
            let (mcols, _) = m.row(r);
            let (acols, _) = a.row(r);
            let base = a.row_ptr[r];
            for &c in mcols {
                if c == r {
                    match acols.binary_search(&r) {
                        Ok(k) => src.push(StageSrc::DiagFrom(base + k)),
                        Err(_) => src.push(StageSrc::DiagOne),
                    }
                } else {
                    let k = acols
                        .binary_search(&c)
                        .expect("stage pattern out of sync with A");
                    src.push(StageSrc::Off(base + k));
                }
            }
        }
        CachedStage { m, src }
    }

    /// The current stage matrix.
    pub fn matrix(&self) -> &Csr {
        &self.m
    }

    /// Does `a` still have the pattern this cache was built from? (The
    /// stage pattern is `A`'s pattern with the diagonal materialized.)
    pub fn matches(&self, a: &Csr) -> bool {
        if a.n != self.m.n {
            return false;
        }
        for r in 0..a.n {
            let (acols, _) = a.row(r);
            let (mcols, _) = self.m.row(r);
            let has_diag = acols.binary_search(&r).is_ok();
            if mcols.len() != acols.len() + usize::from(!has_diag) {
                return false;
            }
            let mut ai = 0;
            for &c in mcols {
                if ai < acols.len() && acols[ai] == c {
                    ai += 1;
                } else if c != r {
                    return false;
                }
            }
            if ai != acols.len() {
                return false;
            }
        }
        true
    }

    /// Rewrite the values for a new scale `s`, allocation-free.
    pub fn rewrite(&mut self, a: &Csr, s: f64) {
        debug_assert!(self.matches(a), "CachedStage pattern out of sync");
        let avals = &a.vals;
        for (v, src) in self.m.vals.iter_mut().zip(&self.src) {
            *v = match *src {
                StageSrc::DiagFrom(k) => 1.0 - s * avals[k],
                StageSrc::DiagOne => 1.0,
                StageSrc::Off(k) => -s * avals[k],
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr {
        // [ 2 -1  0]
        // [-1  2 -1]
        // [ 0 -1  2]
        Csr::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn from_triplets_and_get() {
        let a = example();
        assert_eq!(a.n(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), Some(2.0));
        assert_eq!(a.get(0, 2), None);
        assert_eq!(a.get(2, 1), Some(-1.0));
    }

    #[test]
    fn duplicates_are_summed() {
        let a = Csr::from_triplets(2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(a.get(0, 0), Some(3.5));
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn empty_rows_are_handled() {
        let a = Csr::from_triplets(4, &[(0, 0, 1.0), (3, 3, 2.0)]);
        assert_eq!(a.row(1).0.len(), 0);
        assert_eq!(a.row(2).0.len(), 0);
        let y = a.matvec(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let y = a.matvec(&x);
        let d = a.to_dense();
        for r in 0..3 {
            let want: f64 = (0..3).map(|c| d[r][c] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-14);
        }
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = Csr::identity(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn identity_minus_scaled() {
        let a = example();
        let m = a.identity_minus_scaled(0.5);
        // m = I - 0.5 A: diag = 1 - 1 = 0, off-diag = 0.5
        assert_eq!(m.get(0, 0), Some(0.0));
        assert_eq!(m.get(0, 1), Some(0.5));
        assert_eq!(m.get(1, 2), Some(0.5));
    }

    #[test]
    fn identity_minus_scaled_materializes_diagonal() {
        let a = Csr::from_triplets(2, &[(0, 1, 1.0)]);
        let m = a.identity_minus_scaled(2.0);
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(0, 1), Some(-2.0));
        assert_eq!(m.get(1, 1), Some(1.0));
    }

    #[test]
    fn diag_extraction() {
        let a = example();
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn norm_inf() {
        let a = example();
        assert_eq!(a.norm_inf(), 4.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplet_panics() {
        let _ = Csr::from_triplets(2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn columns_are_sorted_per_row() {
        let a = Csr::from_triplets(3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 1, 3.0)]);
        let (cols, _) = a.row(0);
        assert_eq!(cols, &[0, 1, 2]);
    }

    #[test]
    fn from_parts_equals_from_triplets() {
        let t = example();
        let d = Csr::from_parts(
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![2.0, -1.0, -1.0, 2.0, -1.0, -1.0, 2.0],
        );
        assert_eq!(t, d);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_row_ptr() {
        let _ = Csr::from_parts(2, vec![0, 1], vec![0], vec![1.0]);
    }

    #[test]
    fn cached_stage_matches_identity_minus_scaled() {
        let a = example();
        let mut cache = CachedStage::new(&a, 0.5);
        for s in [0.5, 0.017, -1.25, 0.0, 1e-9] {
            cache.rewrite(&a, s);
            let fresh = a.identity_minus_scaled(s);
            assert_eq!(cache.matrix(), &fresh, "s = {s}");
        }
    }

    #[test]
    fn cached_stage_materializes_missing_diagonal() {
        let a = Csr::from_triplets(2, &[(0, 1, 1.0)]);
        let mut cache = CachedStage::new(&a, 2.0);
        cache.rewrite(&a, 3.0);
        assert_eq!(cache.matrix(), &a.identity_minus_scaled(3.0));
        assert_eq!(cache.matrix().get(1, 1), Some(1.0));
    }

    #[test]
    fn cached_stage_pattern_match() {
        let a = example();
        let cache = CachedStage::new(&a, 0.1);
        assert!(cache.matches(&a));
        let other = Csr::from_triplets(3, &[(0, 0, 1.0), (2, 2, 1.0), (1, 1, 1.0)]);
        assert!(!cache.matches(&other));
        assert!(!cache.matches(&Csr::identity(4)));
    }

    #[test]
    fn same_pattern_detects_structure() {
        let a = example();
        let mut b = example();
        assert!(a.same_pattern(&b));
        b.vals_mut()[0] = 9.0;
        assert!(a.same_pattern(&b), "values do not affect the pattern");
        let c = Csr::identity(3);
        assert!(!a.same_pattern(&c));
    }
}
