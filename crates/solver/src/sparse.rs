//! Compressed-sparse-row matrices.
//!
//! The discretized advection-diffusion operator is a pentadiagonal sparse
//! matrix; the Rosenbrock integrator additionally needs `I - γ·dt·A` every
//! time the step size changes. This module provides the minimal CSR tool
//! set for both, with sorted column indices per row (required by the ILU(0)
//! factorization in [`crate::linsolve`]).
//!
//! The matvec kernel is lane-blocked ([`crate::simd`]): blocks of four
//! consecutive equal-length rows accumulate in four independent lanes, one
//! row per lane, preserving each row's accumulation order exactly — so the
//! vectorized kernel stays bit-identical to [`Csr::matvec_into_scalar`]
//! (which is both the `force-scalar` fallback and the differential-test
//! oracle). [`MultiVec`] adds the SoA multi-right-hand-side layout the
//! batched solver ([`crate::batch`]) sweeps through one factorization.

use std::sync::OnceLock;

use crate::simd::{self, Backend, F64x4, LANES};

/// The tensor-product 5-point-stencil shape of a CSR pattern, when every
/// row conforms: row `i = j·w + c` stores exactly the columns
/// `{i−w if j>0, i−1 if c>0, i, i+1 if c+1<w, i+w if j+1<h}`, ascending.
/// This is the pattern every [`crate::assemble`] interior operator (and
/// its `I − γ·dt·A` stage matrices, and their ILU(0) factors) has, and it
/// unlocks the structure-aware kernels: a run-vectorized matvec with
/// contiguous loads instead of per-entry gathers, and skewed-wavefront
/// triangular sweeps that pipeline the row recurrence across grid lines.
/// The plan depends only on the sparsity pattern, which is immutable after
/// construction, so it is detected once and cached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StencilPlan {
    /// Interior row width (fast index): rows `j·w .. (j+1)·w` form line `j`.
    pub w: usize,
    /// Number of grid lines; `n == w · h`.
    pub h: usize,
}

/// Below this line width, the four-row interior chunks of
/// [`matvec_stencil`] degenerate (at most one chunk plus remainders per
/// line) and the const-width unrolled [`matvec_thin`] kernel wins instead
/// (measured on the level-8 anisotropic family — see BENCH_solver.json).
const STENCIL_MATVEC_MIN_W: usize = 8;

/// Detect the [`StencilPlan`] of a CSR pattern, conservatively: `None`
/// unless *every* row matches the positional stencil exactly.
fn detect_stencil(n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Option<StencilPlan> {
    // Width from the first 5-entry row; bail unless it is a conforming
    // interior row (w >= 2 keeps the five columns distinct).
    let mut w = 0usize;
    for i in 0..n {
        let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
        if row.len() == 5 {
            if row[2] == i && row[1] + 1 == i && row[3] == i + 1 {
                let cand = i - row[0];
                if cand >= 2 && row[4] == i + cand {
                    w = cand;
                }
            }
            break;
        }
    }
    if w < 2 || !n.is_multiple_of(w) {
        return None;
    }
    let h = n / w;
    if h < 2 {
        return None;
    }
    let mut expect = [0usize; 5];
    for i in 0..n {
        let (j, c) = (i / w, i % w);
        let mut len = 0;
        if j > 0 {
            expect[len] = i - w;
            len += 1;
        }
        if c > 0 {
            expect[len] = i - 1;
            len += 1;
        }
        expect[len] = i;
        len += 1;
        if c + 1 < w {
            expect[len] = i + 1;
            len += 1;
        }
        if j + 1 < h {
            expect[len] = i + w;
            len += 1;
        }
        if col_idx[row_ptr[i]..row_ptr[i + 1]] != expect[..len] {
            return None;
        }
    }
    Some(StencilPlan { w, h })
}

/// A square sparse matrix in CSR format with per-row sorted columns.
///
/// # Invariants
///
/// Every constructor establishes (and no public method can break):
/// `row_ptr.len() == n + 1`, `row_ptr[0] == 0`, `row_ptr` monotone with
/// `row_ptr[n] == col_idx.len() == vals.len()`, and every stored column
/// index `< n`. The hot kernels ([`Csr::matvec_into`], the ILU(0)
/// triangular solves in [`crate::linsolve`]) rely on these invariants to
/// skip per-element bounds checks.
#[derive(Clone, Debug)]
pub struct Csr {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
    /// Lazily detected [`StencilPlan`] of the (immutable) pattern.
    stencil: OnceLock<Option<StencilPlan>>,
}

impl PartialEq for Csr {
    fn eq(&self, other: &Self) -> bool {
        // The stencil cache is derived state — equality is the matrix.
        self.n == other.n
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.vals == other.vals
    }
}

impl Csr {
    /// Build from (row, col, value) triplets; duplicate entries are summed.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Csr {
        let mut entries: Vec<(usize, usize, f64)> = triplets.to_vec();
        entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        let mut current_row = 0usize;
        for (r, c, v) in entries {
            assert!(r < n && c < n, "triplet ({r},{c}) out of range for n={n}");
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if let (Some(&lc), Some(lv)) = (col_idx.last(), vals.last_mut()) {
                if lc == c && row_ptr.len() - 1 == r && col_idx.len() > *row_ptr.last().unwrap() {
                    // same row, same col as previous entry → accumulate
                    *lv += v;
                    continue;
                }
            }
            col_idx.push(c);
            vals.push(v);
        }
        while current_row < n {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        Csr {
            n,
            row_ptr,
            col_idx,
            vals,
            stencil: OnceLock::new(),
        }
    }

    /// Build from pre-assembled CSR parts. `row_ptr` must be monotone with
    /// `row_ptr[0] == 0` and `row_ptr[n] == col_idx.len()`, and every row's
    /// columns must be strictly increasing. This is the fast path for
    /// stencil assemblies whose pattern is known a priori (no triplet sort).
    pub fn from_parts(n: usize, row_ptr: Vec<usize>, col_idx: Vec<usize>, vals: Vec<f64>) -> Csr {
        assert_eq!(row_ptr.len(), n + 1);
        assert_eq!(row_ptr[0], 0);
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        assert_eq!(col_idx.len(), vals.len());
        // Hard invariants the unchecked kernels rely on (one O(nnz) pass at
        // construction buys bounds-check-free matvec and triangular solves).
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        assert!(col_idx.iter().all(|&c| c < n));
        debug_assert!((0..n).all(|r| {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            row.windows(2).all(|w| w[0] < w[1])
        }));
        Csr {
            n,
            row_ptr,
            col_idx,
            vals,
            stencil: OnceLock::new(),
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Csr {
        Csr {
            n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![1.0; n],
            stencil: OnceLock::new(),
        }
    }

    /// The [`StencilPlan`] of this matrix's pattern, if it is a conforming
    /// tensor-product 5-point stencil. Detected on first call and cached;
    /// the pattern is immutable so the cache can never go stale (values may
    /// change in place, but the plan does not depend on them).
    pub fn stencil_plan(&self) -> Option<StencilPlan> {
        *self
            .stencil
            .get_or_init(|| detect_stencil(self.n, &self.row_ptr, &self.col_idx))
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row slice accessors: `(columns, values)` of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Mutable values of row `r` (columns stay fixed).
    pub fn row_vals_mut(&mut self, r: usize) -> &mut [f64] {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        &mut self.vals[lo..hi]
    }

    /// The row-pointer array (`n + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All stored column indices, row-major.
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// All stored values, row-major.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// All stored values, mutable (the pattern stays fixed).
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Split borrow for in-place factorizations: `(row_ptr, col_idx, vals)`
    /// with only the values mutable.
    pub fn raw_parts_mut(&mut self) -> (&[usize], &[usize], &mut [f64]) {
        (&self.row_ptr, &self.col_idx, &mut self.vals)
    }

    /// Do `self` and `other` store exactly the same sparsity pattern?
    pub fn same_pattern(&self, other: &Csr) -> bool {
        self.n == other.n && self.row_ptr == other.row_ptr && self.col_idx == other.col_idx
    }

    /// `y = A·x`, backend-dispatched. Bit-identical to
    /// [`Csr::matvec_into_scalar`] on every backend: the lane-blocked kernel
    /// assigns one row per lane, so each row's accumulation order is
    /// unchanged.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        // SAFETY (both lane paths): the struct invariants guarantee
        // `row_ptr` is monotone with `row_ptr[n] == col_idx.len() ==
        // vals.len()` and every stored column `< n == x.len()`.
        match simd::backend() {
            #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
            Backend::Avx2 => unsafe {
                match self.stencil_plan() {
                    Some(plan) if plan.w >= STENCIL_MATVEC_MIN_W => {
                        matvec_stencil_avx2(&self.row_ptr, &self.vals, plan, x, y)
                    }
                    Some(plan) => {
                        matvec_thin_dispatch(&self.row_ptr, &self.col_idx, &self.vals, plan, x, y)
                    }
                    None => matvec_lanes_avx2(&self.row_ptr, &self.col_idx, &self.vals, x, y),
                }
            },
            Backend::Scalar => self.matvec_into_scalar(x, y),
            _ => unsafe {
                match self.stencil_plan() {
                    Some(plan) if plan.w >= STENCIL_MATVEC_MIN_W => {
                        matvec_stencil(&self.row_ptr, &self.vals, plan, x, y)
                    }
                    Some(plan) => {
                        matvec_thin_dispatch(&self.row_ptr, &self.col_idx, &self.vals, plan, x, y)
                    }
                    None => matvec_lanes(&self.row_ptr, &self.col_idx, &self.vals, x, y),
                }
            },
        }
    }

    /// `y = A·x` with the plain per-row scalar loop — the differential-test
    /// oracle for the lane-blocked kernel and the `force-scalar` code path.
    pub fn matvec_into_scalar(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        // SAFETY: the struct invariants guarantee `row_ptr` is monotone with
        // `row_ptr[n] == col_idx.len() == vals.len()` and every stored column
        // `< n == x.len()`; `i < n` bounds the row_ptr and y accesses. The
        // accumulation order is unchanged from the checked loop.
        unsafe {
            for i in 0..self.n {
                let lo = *self.row_ptr.get_unchecked(i);
                let hi = *self.row_ptr.get_unchecked(i + 1);
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += *self.vals.get_unchecked(k)
                        * *x.get_unchecked(*self.col_idx.get_unchecked(k));
                }
                *y.get_unchecked_mut(i) = acc;
            }
        }
    }

    /// `Y = A·X` for `X.k()` right-hand sides in SoA layout.
    ///
    /// Lanes run across *members* (the k RHS): for every stored entry the
    /// value is broadcast and multiplied against the k contiguous member
    /// values of the source column, accumulating in entry order — each
    /// member sees exactly the scalar [`Csr::matvec_into`] operation
    /// sequence, so the batched kernel is bit-identical per member *and*
    /// fully vectorized without gathers (this is the point of SoA).
    pub fn matvec_multi_into(&self, x: &MultiVec, y: &mut MultiVec) {
        assert_eq!(x.n(), self.n);
        assert_eq!(y.n(), self.n);
        assert_eq!(x.k(), y.k());
        let k = x.k();
        // SAFETY: struct invariants as in `matvec_into`; member blocks stay
        // within `i*k..(i+1)*k` of buffers sized `n*k`.
        match simd::backend() {
            #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
            Backend::Avx2 => unsafe {
                matvec_multi_lanes_avx2(
                    &self.row_ptr,
                    &self.col_idx,
                    &self.vals,
                    k,
                    x.as_slice(),
                    y.as_mut_slice(),
                )
            },
            Backend::Scalar => {
                for j in 0..k {
                    for i in 0..self.n {
                        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
                        let mut acc = 0.0;
                        for p in lo..hi {
                            acc += self.vals[p] * x.as_slice()[self.col_idx[p] * k + j];
                        }
                        y.as_mut_slice()[i * k + j] = acc;
                    }
                }
            }
            _ => unsafe {
                matvec_multi_lanes(
                    &self.row_ptr,
                    &self.col_idx,
                    &self.vals,
                    k,
                    x.as_slice(),
                    y.as_mut_slice(),
                )
            },
        }
    }

    /// Allocating matvec.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec_into(x, &mut y);
        y
    }

    /// Entry `(r, c)` if stored.
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|k| vals[k])
    }

    /// The main diagonal (0.0 where not stored).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.n).map(|r| self.get(r, r).unwrap_or(0.0)).collect()
    }

    /// Compute `I - s·A`. Every diagonal entry is materialized even when
    /// `A` has none stored.
    pub fn identity_minus_scaled(&self, s: f64) -> Csr {
        let mut triplets = Vec::with_capacity(self.nnz() + self.n);
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            let mut has_diag = false;
            for (c, v) in cols.iter().zip(vals) {
                if *c == r {
                    has_diag = true;
                    triplets.push((r, r, 1.0 - s * v));
                } else {
                    triplets.push((r, *c, -s * v));
                }
            }
            if !has_diag {
                triplets.push((r, r, 1.0));
            }
        }
        Csr::from_triplets(self.n, &triplets)
    }

    /// Dense representation (tests/diagnostics only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n]; self.n];
        #[allow(clippy::needless_range_loop)] // row index drives two arrays
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d[r][*c] += v;
            }
        }
        d
    }

    /// Infinity norm of the matrix (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.n)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

/// Lane-blocked matvec body: one row per lane for blocks of four
/// consecutive equal-length rows (the common case in the pentadiagonal
/// interior), scalar otherwise. Per-row accumulation order is identical to
/// the scalar kernel.
///
/// # Safety
/// CSR invariants (see [`Csr`]): monotone `row_ptr` bounded by
/// `col_idx.len() == vals.len()`, all columns `< x.len()`,
/// `row_ptr.len() == y.len() + 1`, `x.len() == y.len()`.
#[inline(always)]
unsafe fn matvec_lanes(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    #[inline(always)]
    unsafe fn row_dot(
        row_ptr: &[usize],
        col_idx: &[usize],
        vals: &[f64],
        x: &[f64],
        r: usize,
    ) -> f64 {
        let lo = *row_ptr.get_unchecked(r);
        let hi = *row_ptr.get_unchecked(r + 1);
        let mut acc = 0.0;
        for k in lo..hi {
            acc += *vals.get_unchecked(k) * *x.get_unchecked(*col_idx.get_unchecked(k));
        }
        acc
    }

    let n = y.len();
    let mut i = 0;
    while i + LANES <= n {
        let lo0 = *row_ptr.get_unchecked(i);
        let lo1 = *row_ptr.get_unchecked(i + 1);
        let lo2 = *row_ptr.get_unchecked(i + 2);
        let lo3 = *row_ptr.get_unchecked(i + 3);
        let hi3 = *row_ptr.get_unchecked(i + 4);
        let len = lo1 - lo0;
        if lo2 - lo1 == len && lo3 - lo2 == len && hi3 - lo3 == len {
            let mut acc = F64x4::zero();
            for p in 0..len {
                let a = F64x4([
                    *vals.get_unchecked(lo0 + p),
                    *vals.get_unchecked(lo1 + p),
                    *vals.get_unchecked(lo2 + p),
                    *vals.get_unchecked(lo3 + p),
                ]);
                let xx = F64x4([
                    *x.get_unchecked(*col_idx.get_unchecked(lo0 + p)),
                    *x.get_unchecked(*col_idx.get_unchecked(lo1 + p)),
                    *x.get_unchecked(*col_idx.get_unchecked(lo2 + p)),
                    *x.get_unchecked(*col_idx.get_unchecked(lo3 + p)),
                ]);
                acc = acc.add(a.mul(xx));
            }
            acc.store(y, i);
        } else {
            for r in i..i + LANES {
                *y.get_unchecked_mut(r) = row_dot(row_ptr, col_idx, vals, x, r);
            }
        }
        i += LANES;
    }
    while i < n {
        *y.get_unchecked_mut(i) = row_dot(row_ptr, col_idx, vals, x, i);
        i += 1;
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
#[target_feature(enable = "avx2")]
unsafe fn matvec_lanes_avx2(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    matvec_lanes(row_ptr, col_idx, vals, x, y)
}

/// Stencil matvec body: the [`StencilPlan`] pins every column index, so no
/// `col_idx` indirection (and no per-entry gather) is needed. Per grid
/// line, the two boundary rows run scalar; the interior rows all have the
/// same entry count `E` (4 on the first/last line, 5 elsewhere) with
/// values contiguous at stride `E`, and are processed in four-row chunks:
/// for each of the `E` stencil bands, four row values come from strided
/// positions in `vals` and the four `x` operands are one *contiguous* load
/// at the band's column offset. Bands accumulate in ascending-column order
/// from a zero accumulator with separate mul/add — exactly the scalar
/// kernel's per-row operation sequence, so the result is bit-identical to
/// [`Csr::matvec_into_scalar`].
///
/// # Safety
/// `plan` must be the verified [`StencilPlan`] of this pattern (so row
/// `j·w + c` has exactly the positional stencil columns and `row_ptr`
/// matches the implied row lengths); `x.len() == y.len() == w·h`.
#[inline(always)]
unsafe fn matvec_stencil(
    row_ptr: &[usize],
    vals: &[f64],
    plan: StencilPlan,
    x: &[f64],
    y: &mut [f64],
) {
    let StencilPlan { w, h } = plan;
    for j in 0..h {
        let row0 = j * w;
        // First column of the line: scalar (no west neighbor).
        {
            let i = row0;
            let mut p = *row_ptr.get_unchecked(i);
            let mut acc = 0.0;
            if j > 0 {
                acc += *vals.get_unchecked(p) * *x.get_unchecked(i - w);
                p += 1;
            }
            acc += *vals.get_unchecked(p) * *x.get_unchecked(i);
            acc += *vals.get_unchecked(p + 1) * *x.get_unchecked(i + 1);
            if j + 1 < h {
                acc += *vals.get_unchecked(p + 2) * *x.get_unchecked(i + w);
            }
            *y.get_unchecked_mut(i) = acc;
        }
        // Interior columns 1..w-1: equal-length rows, vals at stride e.
        let (e, offs): (usize, [isize; 5]) = if j == 0 {
            (4, [-1, 0, 1, w as isize, 0])
        } else if j + 1 == h {
            (4, [-(w as isize), -1, 0, 1, 0])
        } else {
            (5, [-(w as isize), -1, 0, 1, w as isize])
        };
        let first = row0 + 1;
        let m = w - 2;
        let p0 = *row_ptr.get_unchecked(first);
        let mut r = 0usize;
        while r + LANES <= m {
            let i = first + r;
            let p = p0 + r * e;
            let mut acc = F64x4::zero();
            for (b, off) in offs.iter().enumerate().take(e) {
                let a = F64x4([
                    *vals.get_unchecked(p + b),
                    *vals.get_unchecked(p + e + b),
                    *vals.get_unchecked(p + 2 * e + b),
                    *vals.get_unchecked(p + 3 * e + b),
                ]);
                let xx = F64x4::load(x, (i as isize + off) as usize);
                acc = acc.add(a.mul(xx));
            }
            acc.store(y, i);
            r += LANES;
        }
        while r < m {
            let i = first + r;
            let p = p0 + r * e;
            let mut acc = 0.0;
            for (b, off) in offs.iter().enumerate().take(e) {
                acc += *vals.get_unchecked(p + b) * *x.get_unchecked((i as isize + off) as usize);
            }
            *y.get_unchecked_mut(i) = acc;
            r += 1;
        }
        // Last column of the line: scalar (no east neighbor).
        {
            let i = row0 + w - 1;
            let mut p = *row_ptr.get_unchecked(i);
            let mut acc = 0.0;
            if j > 0 {
                acc += *vals.get_unchecked(p) * *x.get_unchecked(i - w);
                p += 1;
            }
            acc += *vals.get_unchecked(p) * *x.get_unchecked(i - 1);
            acc += *vals.get_unchecked(p + 1) * *x.get_unchecked(i);
            if j + 1 < h {
                acc += *vals.get_unchecked(p + 2) * *x.get_unchecked(i + w);
            }
            *y.get_unchecked_mut(i) = acc;
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
#[target_feature(enable = "avx2")]
unsafe fn matvec_stencil_avx2(
    row_ptr: &[usize],
    vals: &[f64],
    plan: StencilPlan,
    x: &[f64],
    y: &mut [f64],
) {
    matvec_stencil(row_ptr, vals, plan, x, y)
}

/// One line of the thin-stencil matvec: straight-line code for all `W`
/// columns of line `j` (the `c` loop fully unrolls for const `W`, erasing
/// the boundary branches and the per-entry `col_idx` loads the generic
/// kernels pay). Each row accumulates its bands in ascending-column order
/// from a zero accumulator — the scalar kernel's exact operation sequence,
/// so the result is bit-identical to [`Csr::matvec_into_scalar`].
///
/// # Safety
/// As for [`matvec_thin`], with `j` a valid line index (`TOP` iff `j == 0`,
/// `BOTTOM` iff `j + 1 == h`).
#[inline(always)]
unsafe fn thin_line<const W: usize, const TOP: bool, const BOTTOM: bool>(
    j: usize,
    row_ptr: &[usize],
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    for c in 0..W {
        let i = j * W + c;
        let mut p = *row_ptr.get_unchecked(i);
        let mut acc = 0.0;
        if !TOP {
            acc += *vals.get_unchecked(p) * *x.get_unchecked(i - W);
            p += 1;
        }
        if c > 0 {
            acc += *vals.get_unchecked(p) * *x.get_unchecked(i - 1);
            p += 1;
        }
        acc += *vals.get_unchecked(p) * *x.get_unchecked(i);
        p += 1;
        if c + 1 < W {
            acc += *vals.get_unchecked(p) * *x.get_unchecked(i + 1);
            p += 1;
        }
        if !BOTTOM {
            acc += *vals.get_unchecked(p) * *x.get_unchecked(i + W);
        }
        *y.get_unchecked_mut(i) = acc;
    }
}

/// Thin-stencil matvec body for lines narrower than
/// [`STENCIL_MATVEC_MIN_W`]: too narrow for the four-row interior chunks of
/// [`matvec_stencil`], but the const line width lets every line run as
/// unrolled straight-line code with full instruction-level parallelism
/// (`W` independent accumulators per line). Bit-identical to
/// [`Csr::matvec_into_scalar`] — see [`thin_line`].
///
/// # Safety
/// `plan` must be the verified [`StencilPlan`] of this pattern with
/// `plan.w == W` (detection guarantees `h >= 3`, so the first and last
/// lines are distinct); `x.len() == y.len() == w·h`.
/// Route a narrow plan (`plan.w < STENCIL_MATVEC_MIN_W`) to the matching
/// const-width [`matvec_thin`] body. Detection admits widths down to 2; a
/// width outside `2..=6` cannot reach here, but falls back to the generic
/// lane kernel rather than trusting that invariant with UB.
///
/// # Safety
/// As for [`matvec_thin`], minus the width pin (checked here).
#[inline(always)]
unsafe fn matvec_thin_dispatch(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f64],
    plan: StencilPlan,
    x: &[f64],
    y: &mut [f64],
) {
    match plan.w {
        2 => matvec_thin::<2>(row_ptr, vals, plan, x, y),
        3 => matvec_thin::<3>(row_ptr, vals, plan, x, y),
        4 => matvec_thin::<4>(row_ptr, vals, plan, x, y),
        5 => matvec_thin::<5>(row_ptr, vals, plan, x, y),
        6 => matvec_thin::<6>(row_ptr, vals, plan, x, y),
        7 => matvec_thin::<7>(row_ptr, vals, plan, x, y),
        _ => matvec_lanes(row_ptr, col_idx, vals, x, y),
    }
}

unsafe fn matvec_thin<const W: usize>(
    row_ptr: &[usize],
    vals: &[f64],
    plan: StencilPlan,
    x: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(plan.w, W);
    let h = plan.h;
    thin_line::<W, true, false>(0, row_ptr, vals, x, y);
    for j in 1..h - 1 {
        thin_line::<W, false, false>(j, row_ptr, vals, x, y);
    }
    thin_line::<W, false, true>(h - 1, row_ptr, vals, x, y);
}

/// SoA multi-RHS matvec body: lanes run across members. For every stored
/// entry, broadcast the value and accumulate against the k contiguous
/// member values of the source column, in entry order.
///
/// # Safety
/// CSR invariants as for [`matvec_lanes`]; `x.len() == y.len() == n * k`.
#[inline(always)]
unsafe fn matvec_multi_lanes(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f64],
    k: usize,
    x: &[f64],
    y: &mut [f64],
) {
    let n = row_ptr.len() - 1;
    for i in 0..n {
        let lo = *row_ptr.get_unchecked(i);
        let hi = *row_ptr.get_unchecked(i + 1);
        let mut jb = 0;
        while jb + LANES <= k {
            let mut acc = F64x4::zero();
            for p in lo..hi {
                let a = F64x4::splat(*vals.get_unchecked(p));
                let xx = F64x4::load(x, *col_idx.get_unchecked(p) * k + jb);
                acc = acc.add(a.mul(xx));
            }
            acc.store(y, i * k + jb);
            jb += LANES;
        }
        while jb < k {
            let mut acc = 0.0;
            for p in lo..hi {
                acc +=
                    *vals.get_unchecked(p) * *x.get_unchecked(*col_idx.get_unchecked(p) * k + jb);
            }
            *y.get_unchecked_mut(i * k + jb) = acc;
            jb += 1;
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
#[target_feature(enable = "avx2")]
unsafe fn matvec_multi_lanes_avx2(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &[f64],
    k: usize,
    x: &[f64],
    y: &mut [f64],
) {
    matvec_multi_lanes(row_ptr, col_idx, vals, k, x, y)
}

/// `k` vectors of length `n` in structure-of-arrays layout: the `k` member
/// values for node `i` are contiguous at `data[i*k .. (i+1)*k]`.
///
/// This is the batched solver's working layout: every elementwise kernel
/// and reduction runs lanes across *members*, which makes per-member
/// reductions simultaneously vectorized and bit-exact (each member's sum
/// stays in node order — no reassociation within a member).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiVec {
    k: usize,
    n: usize,
    data: Vec<f64>,
}

impl MultiVec {
    pub fn new() -> MultiVec {
        MultiVec::default()
    }

    /// Resize to `k` members of length `n`. Existing capacity is reused;
    /// warm calls with the same or smaller shape never allocate.
    pub fn ensure(&mut self, k: usize, n: usize) {
        self.k = k;
        self.n = n;
        if self.data.len() < k * n {
            self.data.resize(k * n, 0.0);
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data[..self.k * self.n]
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        let len = self.k * self.n;
        &mut self.data[..len]
    }

    pub fn fill(&mut self, v: f64) {
        let len = self.k * self.n;
        self.data[..len].fill(v);
    }

    /// Scatter `src` (length `n`) into member `j`.
    pub fn pack_member(&mut self, j: usize, src: &[f64]) {
        assert_eq!(src.len(), self.n);
        assert!(j < self.k);
        let k = self.k;
        for (i, &v) in src.iter().enumerate() {
            self.data[i * k + j] = v;
        }
    }

    /// Gather member `j` into `dst` (length `n`).
    pub fn unpack_member(&self, j: usize, dst: &mut [f64]) {
        assert_eq!(dst.len(), self.n);
        assert!(j < self.k);
        let k = self.k;
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.data[i * k + j];
        }
    }
}

/// Where a stage-matrix entry takes its value from.
#[derive(Clone, Copy, Debug)]
enum StageSrc {
    /// Diagonal entry backed by the `A` value at this flat index: `1 − s·a`.
    DiagFrom(usize),
    /// Diagonal entry with no stored `A` counterpart: constant `1`.
    DiagOne,
    /// Off-diagonal entry backed by the `A` value at this flat index: `−s·a`.
    Off(usize),
}

/// A cached stage matrix `I − s·A` whose sparsity pattern (and the mapping
/// back to `A`'s entries) is computed exactly once. A change of `s` — the
/// Rosenbrock integrator's `γ·dt` — only rewrites the value array in place,
/// so the per-step-size-change cost is a single pass over the nonzeros
/// instead of a triplet sort and a fresh allocation.
///
/// [`CachedStage::rewrite`] produces bit-identical values to
/// [`Csr::identity_minus_scaled`]: the same expressions are evaluated for
/// the same entries in the same order.
#[derive(Clone, Debug)]
pub struct CachedStage {
    m: Csr,
    src: Vec<StageSrc>,
}

impl CachedStage {
    /// Build the pattern and initial values of `I − s·A`.
    pub fn new(a: &Csr, s: f64) -> CachedStage {
        let m = a.identity_minus_scaled(s);
        let mut src = Vec::with_capacity(m.nnz());
        for r in 0..m.n {
            let (mcols, _) = m.row(r);
            let (acols, _) = a.row(r);
            let base = a.row_ptr[r];
            for &c in mcols {
                if c == r {
                    match acols.binary_search(&r) {
                        Ok(k) => src.push(StageSrc::DiagFrom(base + k)),
                        Err(_) => src.push(StageSrc::DiagOne),
                    }
                } else {
                    let k = acols
                        .binary_search(&c)
                        .expect("stage pattern out of sync with A");
                    src.push(StageSrc::Off(base + k));
                }
            }
        }
        CachedStage { m, src }
    }

    /// The current stage matrix.
    pub fn matrix(&self) -> &Csr {
        &self.m
    }

    /// Does `a` still have the pattern this cache was built from? (The
    /// stage pattern is `A`'s pattern with the diagonal materialized.)
    pub fn matches(&self, a: &Csr) -> bool {
        if a.n != self.m.n {
            return false;
        }
        for r in 0..a.n {
            let (acols, _) = a.row(r);
            let (mcols, _) = self.m.row(r);
            let has_diag = acols.binary_search(&r).is_ok();
            if mcols.len() != acols.len() + usize::from(!has_diag) {
                return false;
            }
            let mut ai = 0;
            for &c in mcols {
                if ai < acols.len() && acols[ai] == c {
                    ai += 1;
                } else if c != r {
                    return false;
                }
            }
            if ai != acols.len() {
                return false;
            }
        }
        true
    }

    /// Rewrite the values for a new scale `s`, allocation-free.
    pub fn rewrite(&mut self, a: &Csr, s: f64) {
        debug_assert!(self.matches(a), "CachedStage pattern out of sync");
        let avals = &a.vals;
        for (v, src) in self.m.vals.iter_mut().zip(&self.src) {
            *v = match *src {
                StageSrc::DiagFrom(k) => 1.0 - s * avals[k],
                StageSrc::DiagOne => 1.0,
                StageSrc::Off(k) => -s * avals[k],
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr {
        // [ 2 -1  0]
        // [-1  2 -1]
        // [ 0 -1  2]
        Csr::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn from_triplets_and_get() {
        let a = example();
        assert_eq!(a.n(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), Some(2.0));
        assert_eq!(a.get(0, 2), None);
        assert_eq!(a.get(2, 1), Some(-1.0));
    }

    #[test]
    fn duplicates_are_summed() {
        let a = Csr::from_triplets(2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(a.get(0, 0), Some(3.5));
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn empty_rows_are_handled() {
        let a = Csr::from_triplets(4, &[(0, 0, 1.0), (3, 3, 2.0)]);
        assert_eq!(a.row(1).0.len(), 0);
        assert_eq!(a.row(2).0.len(), 0);
        let y = a.matvec(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let y = a.matvec(&x);
        let d = a.to_dense();
        for r in 0..3 {
            let want: f64 = (0..3).map(|c| d[r][c] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-14);
        }
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = Csr::identity(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn identity_minus_scaled() {
        let a = example();
        let m = a.identity_minus_scaled(0.5);
        // m = I - 0.5 A: diag = 1 - 1 = 0, off-diag = 0.5
        assert_eq!(m.get(0, 0), Some(0.0));
        assert_eq!(m.get(0, 1), Some(0.5));
        assert_eq!(m.get(1, 2), Some(0.5));
    }

    #[test]
    fn identity_minus_scaled_materializes_diagonal() {
        let a = Csr::from_triplets(2, &[(0, 1, 1.0)]);
        let m = a.identity_minus_scaled(2.0);
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(0, 1), Some(-2.0));
        assert_eq!(m.get(1, 1), Some(1.0));
    }

    #[test]
    fn diag_extraction() {
        let a = example();
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn norm_inf() {
        let a = example();
        assert_eq!(a.norm_inf(), 4.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplet_panics() {
        let _ = Csr::from_triplets(2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn columns_are_sorted_per_row() {
        let a = Csr::from_triplets(3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 1, 3.0)]);
        let (cols, _) = a.row(0);
        assert_eq!(cols, &[0, 1, 2]);
    }

    #[test]
    fn from_parts_equals_from_triplets() {
        let t = example();
        let d = Csr::from_parts(
            3,
            vec![0, 2, 5, 7],
            vec![0, 1, 0, 1, 2, 1, 2],
            vec![2.0, -1.0, -1.0, 2.0, -1.0, -1.0, 2.0],
        );
        assert_eq!(t, d);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_row_ptr() {
        let _ = Csr::from_parts(2, vec![0, 1], vec![0], vec![1.0]);
    }

    #[test]
    fn cached_stage_matches_identity_minus_scaled() {
        let a = example();
        let mut cache = CachedStage::new(&a, 0.5);
        for s in [0.5, 0.017, -1.25, 0.0, 1e-9] {
            cache.rewrite(&a, s);
            let fresh = a.identity_minus_scaled(s);
            assert_eq!(cache.matrix(), &fresh, "s = {s}");
        }
    }

    #[test]
    fn cached_stage_materializes_missing_diagonal() {
        let a = Csr::from_triplets(2, &[(0, 1, 1.0)]);
        let mut cache = CachedStage::new(&a, 2.0);
        cache.rewrite(&a, 3.0);
        assert_eq!(cache.matrix(), &a.identity_minus_scaled(3.0));
        assert_eq!(cache.matrix().get(1, 1), Some(1.0));
    }

    #[test]
    fn cached_stage_pattern_match() {
        let a = example();
        let cache = CachedStage::new(&a, 0.1);
        assert!(cache.matches(&a));
        let other = Csr::from_triplets(3, &[(0, 0, 1.0), (2, 2, 1.0), (1, 1, 1.0)]);
        assert!(!cache.matches(&other));
        assert!(!cache.matches(&Csr::identity(4)));
    }

    #[test]
    fn lane_matvec_matches_scalar_bitwise() {
        // Pentadiagonal-ish matrix large enough to hit full lane blocks,
        // equal-length runs, ragged blocks, and the remainder loop.
        for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 31] {
            let mut t = Vec::new();
            for i in 0..n {
                t.push((i, i, 4.0 + i as f64 * 0.01));
                if i >= 1 {
                    t.push((i, i - 1, -1.0 - 0.001 * i as f64));
                }
                if i + 1 < n {
                    t.push((i, i + 1, -1.1));
                }
                if i >= 3 {
                    t.push((i, i - 3, -0.3));
                }
                if i + 3 < n {
                    t.push((i, i + 3, -0.31));
                }
            }
            let a = Csr::from_triplets(n, &t);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
            let mut y_lanes = vec![0.0; n];
            let mut y_scalar = vec![0.0; n];
            a.matvec_into(&x, &mut y_lanes);
            a.matvec_into_scalar(&x, &mut y_scalar);
            assert_eq!(y_lanes, y_scalar, "n = {n}");
        }
    }

    #[test]
    fn multi_matvec_matches_per_member_bitwise() {
        let a = example();
        for k in [1usize, 2, 3, 4, 5, 8, 9] {
            let mut x = MultiVec::new();
            let mut y = MultiVec::new();
            x.ensure(k, 3);
            y.ensure(k, 3);
            let members: Vec<Vec<f64>> = (0..k)
                .map(|j| (0..3).map(|i| (i + j) as f64 * 0.7 - 1.0).collect())
                .collect();
            for (j, m) in members.iter().enumerate() {
                x.pack_member(j, m);
            }
            a.matvec_multi_into(&x, &mut y);
            let mut got = vec![0.0; 3];
            let mut want = vec![0.0; 3];
            for (j, m) in members.iter().enumerate() {
                y.unpack_member(j, &mut got);
                a.matvec_into_scalar(m, &mut want);
                assert_eq!(got, want, "k = {k}, member {j}");
            }
        }
    }

    #[test]
    fn multivec_pack_unpack_roundtrip() {
        let mut mv = MultiVec::new();
        mv.ensure(3, 4);
        let m: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0];
        mv.pack_member(1, &m);
        let mut out = vec![0.0; 4];
        mv.unpack_member(1, &mut out);
        assert_eq!(out, m);
        mv.unpack_member(0, &mut out);
        assert_eq!(out, vec![0.0; 4]);
        // Shrinking then regrowing within capacity must not allocate a new
        // buffer (warm-loop discipline) — observable via the data pointer.
        let p = mv.as_slice().as_ptr();
        mv.ensure(2, 3);
        mv.ensure(3, 4);
        assert_eq!(mv.as_slice().as_ptr(), p);
    }

    /// A w×h 5-point-stencil matrix with smoothly varying, row-distinct
    /// values (so a misplaced band or a swapped neighbor cannot cancel).
    fn stencil_matrix(w: usize, h: usize) -> Csr {
        let n = w * h;
        let mut t = Vec::new();
        for j in 0..h {
            for c in 0..w {
                let i = j * w + c;
                let f = i as f64;
                if j > 0 {
                    t.push((i, i - w, -1.0 - 0.01 * f));
                }
                if c > 0 {
                    t.push((i, i - 1, -0.5 - 0.002 * f));
                }
                t.push((i, i, 4.0 + 0.1 * f));
                if c + 1 < w {
                    t.push((i, i + 1, -0.6 + 0.003 * f));
                }
                if j + 1 < h {
                    t.push((i, i + w, -1.1 + 0.004 * f));
                }
            }
        }
        Csr::from_triplets(n, &t)
    }

    #[test]
    fn stencil_plan_detected_on_grids() {
        for (w, h) in [(3, 3), (3, 4), (5, 3), (4, 7), (9, 4), (16, 16)] {
            let a = stencil_matrix(w, h);
            assert_eq!(a.stencil_plan(), Some(StencilPlan { w, h }), "{w}x{h}");
        }
        // Width- or height-2 grids have no interior (5-entry) row to anchor
        // detection — they conservatively stay on the generic kernels.
        for (w, h) in [(2, 2), (2, 5), (5, 2)] {
            assert_eq!(stencil_matrix(w, h).stencil_plan(), None, "{w}x{h}");
        }
    }

    #[test]
    fn stencil_plan_rejects_non_stencil_patterns() {
        assert_eq!(Csr::identity(6).stencil_plan(), None);
        assert_eq!(example().stencil_plan(), None, "tridiagonal");
        // A 1-D pentadiagonal (bandwidth-3) matrix: its first 5-entry row
        // looks like a width-3 stencil row, but the full verification pass
        // must reject it.
        let n = 12;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i >= 1 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
            if i >= 3 {
                t.push((i, i - 3, -0.3));
            }
            if i + 3 < n {
                t.push((i, i + 3, -0.3));
            }
        }
        assert_eq!(Csr::from_triplets(n, &t).stencil_plan(), None);
        // A true stencil with one interior entry knocked out.
        let a = stencil_matrix(4, 4);
        let mut dropped = Vec::new();
        for r in 0..a.n() {
            let (cols, vals) = a.row(r);
            for (c, v) in cols.iter().zip(vals) {
                if !(r == 5 && *c == 6) {
                    dropped.push((r, *c, *v));
                }
            }
        }
        assert_eq!(Csr::from_triplets(a.n(), &dropped).stencil_plan(), None);
    }

    #[test]
    fn stencil_matvec_matches_scalar_bitwise() {
        // Shapes cover w == 2 (no interior columns), thin-and-tall,
        // wide-and-short, chunk remainders (w-2 mod 4 in every class), and
        // a square large enough for several four-row chunks per line.
        for (w, h) in [
            (2, 2),
            (2, 7),
            (3, 3),
            (4, 5),
            (5, 4),
            (6, 3),
            (7, 2),
            (9, 6),
            (17, 5),
        ] {
            let a = stencil_matrix(w, h);
            assert_eq!(a.stencil_plan().is_some(), w >= 3 && h >= 3, "{w}x{h}");
            let n = w * h;
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin() * 2.5).collect();
            let mut y = vec![0.0; n];
            let mut y_scalar = vec![0.0; n];
            a.matvec_into(&x, &mut y);
            a.matvec_into_scalar(&x, &mut y_scalar);
            assert_eq!(y, y_scalar, "{w}x{h}");
        }
    }

    #[test]
    fn same_pattern_detects_structure() {
        let a = example();
        let mut b = example();
        assert!(a.same_pattern(&b));
        b.vals_mut()[0] = 9.0;
        assert!(a.same_pattern(&b), "values do not affect the pattern");
        let c = Csr::identity(3);
        assert!(!a.same_pattern(&c));
    }
}
