//! Restarted GMRES — the second Krylov solver of the substrate.
//!
//! The Rosenbrock stage systems are nonsymmetric; **BiCGSTAB**
//! ([`crate::linsolve::bicgstab`]) is the production solver that
//! [`crate::rosenbrock::integrate`] uses for every stage solve. GMRES(m) is
//! the classic alternative used by CWI-style transport codes and is kept
//! *off* the `subsolve` hot path: the benches compare both on the same
//! stage matrices (`bench/benches/solver_kernels.rs`) and the tests
//! cross-validate one against the other (see
//! `agrees_with_bicgstab_on_rosenbrock_matrix` below). If you are looking
//! for the solver behind a `subsolve` profile, it is BiCGSTAB.
//!
//! Implementation: Arnoldi with modified Gram-Schmidt, Givens-rotation QR
//! of the Hessenberg matrix, left preconditioning, restart every `m`
//! iterations. Like BiCGSTAB, GMRES has a workspace-reusing entry point
//! ([`gmres_with`]) threaded through the shared
//! [`KrylovWorkspace`](crate::linsolve::KrylovWorkspace): the Arnoldi basis
//! and Hessenberg factors are grown once and reused across restarts and
//! calls.

use crate::linsolve::{KrylovWorkspace, Preconditioner, SolveError, SolveStats};
use crate::sparse::Csr;
use crate::work::WorkCounter;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Solve `A x = b` with left-preconditioned restarted GMRES(m). `x` holds
/// the initial guess on entry and the solution on success. Allocates its
/// own scratch; reuse a [`KrylovWorkspace`] via [`gmres_with`] on repeated
/// solves.
#[allow(clippy::too_many_arguments)] // a solver signature, mirrors bicgstab
pub fn gmres(
    a: &Csr,
    precond: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    restart: usize,
    rel_tol: f64,
    max_iters: usize,
    work: &mut WorkCounter,
) -> Result<SolveStats, SolveError> {
    let mut ws = KrylovWorkspace::new();
    gmres_with(a, precond, b, x, restart, rel_tol, max_iters, &mut ws, work)
}

/// [`gmres`] on caller-owned scratch: the Arnoldi basis, Hessenberg
/// columns, Givens factors and residual vectors all live in `ws` and are
/// reused across restarts and calls. Bit-identical to the allocating entry
/// point.
#[allow(clippy::too_many_arguments)] // a solver signature, mirrors bicgstab
pub fn gmres_with(
    a: &Csr,
    precond: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    restart: usize,
    rel_tol: f64,
    max_iters: usize,
    ws: &mut KrylovWorkspace,
    work: &mut WorkCounter,
) -> Result<SolveStats, SolveError> {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    assert!(restart >= 1);

    ws.ensure(n);
    let KrylovWorkspace {
        r,
        t: scratch,
        p: mb,
        s: w,
        basis,
        h,
        cs,
        sn,
        g,
        y,
        ..
    } = ws;

    // Preconditioned rhs norm for the relative criterion.
    precond.apply(b, mb, work);
    let mb_norm = norm2(mb).max(1e-300);

    let mut total_iters = 0usize;

    loop {
        // r = M⁻¹ (b - A x)
        a.matvec_into(x, scratch);
        work.add_matvec(a.nnz());
        for (si, bi) in scratch.iter_mut().zip(b) {
            *si = bi - *si;
        }
        precond.apply(scratch, r, work);
        let beta = norm2(r);
        let resid = beta / mb_norm;
        if resid <= rel_tol {
            return Ok(SolveStats {
                iterations: total_iters,
                residual: resid,
            });
        }
        if total_iters >= max_iters {
            return Err(SolveError::MaxIterations { residual: resid });
        }

        // Arnoldi basis (restart+1 vectors) and Hessenberg factors, sized
        // once and reused across restarts.
        let m = restart.min(max_iters - total_iters);
        while basis.len() < m + 1 {
            basis.push(Vec::new());
        }
        while h.len() < m + 1 {
            h.push(Vec::new());
        }
        for row in h.iter_mut().take(m + 1) {
            row.clear();
            row.resize(m, 0.0);
        }
        cs.clear();
        cs.resize(m, 0.0);
        sn.clear();
        sn.resize(m, 0.0);
        g.clear();
        g.resize(m + 1, 0.0);
        g[0] = beta;
        basis[0].clear();
        basis[0].extend(r.iter().map(|ri| ri / beta));

        let mut k_used = 0usize;
        for k in 0..m {
            total_iters += 1;
            work.add_lin_iter();
            // w = M⁻¹ A v_k
            a.matvec_into(&basis[k], scratch);
            work.add_matvec(a.nnz());
            precond.apply(scratch, w, work);
            // Modified Gram-Schmidt.
            for (j, vj) in basis.iter().enumerate().take(k + 1) {
                let hjk = dot(w, vj);
                h[j][k] = hjk;
                for (wi, vji) in w.iter_mut().zip(vj) {
                    *wi -= hjk * vji;
                }
            }
            work.add_vector_ops(n, 2 * (k + 1));
            let hk1 = norm2(w);
            h[k + 1][k] = hk1;

            // Apply previous rotations to column k.
            for j in 0..k {
                let t = cs[j] * h[j][k] + sn[j] * h[j + 1][k];
                h[j + 1][k] = -sn[j] * h[j][k] + cs[j] * h[j + 1][k];
                h[j][k] = t;
            }
            // New rotation to annihilate h[k+1][k].
            let denom = (h[k][k] * h[k][k] + hk1 * hk1).sqrt().max(1e-300);
            cs[k] = h[k][k] / denom;
            sn[k] = hk1 / denom;
            h[k][k] = cs[k] * h[k][k] + sn[k] * hk1;
            h[k + 1][k] = 0.0;
            g[k + 1] = -sn[k] * g[k];
            g[k] *= cs[k];

            k_used = k + 1;
            let rel = g[k + 1].abs() / mb_norm;
            if rel <= rel_tol || hk1 < 1e-300 {
                break;
            }
            basis[k + 1].clear();
            basis[k + 1].extend(w.iter().map(|wi| wi / hk1));
        }

        // Back-substitute y from the triangular system H y = g.
        y.clear();
        y.resize(k_used, 0.0);
        for i in (0..k_used).rev() {
            let mut acc = g[i];
            for (j, yj) in y.iter().enumerate().take(k_used).skip(i + 1) {
                acc -= h[i][j] * yj;
            }
            if h[i][i].abs() < 1e-300 {
                return Err(SolveError::Breakdown {
                    iterations: total_iters,
                });
            }
            y[i] = acc / h[i][i];
        }
        // x += V y
        for (j, yj) in y.iter().enumerate() {
            for (xi, vji) in x.iter_mut().zip(&basis[j]) {
                *xi += yj * vji;
            }
        }
        work.add_vector_ops(n, 2 * k_used);
        // Loop restarts (or exits via the residual check at the top).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use crate::grid::Grid2;
    use crate::linsolve::{bicgstab, IdentityPrecond, Ilu0};
    use crate::problem::Problem;

    fn laplacian_1d(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(n, &t)
    }

    #[test]
    fn solves_identity_instantly() {
        let a = Csr::identity(5);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut x = vec![0.0; 5];
        let mut w = WorkCounter::new();
        let stats = gmres(&a, &IdentityPrecond, &b, &mut x, 10, 1e-12, 50, &mut w).unwrap();
        assert!(stats.iterations <= 2);
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_spd_system_exactly_at_full_dimension() {
        // Unrestarted GMRES is a direct method after n steps.
        let a = laplacian_1d(20);
        let x_true: Vec<f64> = (0..20).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = a.matvec(&x_true);
        let mut x = vec![0.0; 20];
        let mut w = WorkCounter::new();
        let stats = gmres(&a, &IdentityPrecond, &b, &mut x, 20, 1e-12, 40, &mut w).unwrap();
        assert!(stats.iterations <= 20);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn restarts_still_converge() {
        let a = laplacian_1d(40);
        let b = vec![1.0; 40];
        let mut x = vec![0.0; 40];
        let mut w = WorkCounter::new();
        let stats = gmres(&a, &IdentityPrecond, &b, &mut x, 5, 1e-8, 5000, &mut w).unwrap();
        let r: Vec<f64> = a
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(ax, bi)| ax - bi)
            .collect();
        assert!(crate::l2_norm(&r) < 1e-6, "residual {}", crate::l2_norm(&r));
        assert!(stats.iterations > 5, "must have restarted");
    }

    #[test]
    fn agrees_with_bicgstab_on_rosenbrock_matrix() {
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 2, 2);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(0.01);
        let ilu = Ilu0::new(&m, &mut w);
        let b: Vec<f64> = (0..m.n()).map(|i| ((i % 13) as f64) / 13.0).collect();

        let mut x1 = vec![0.0; m.n()];
        gmres(&m, &ilu, &b, &mut x1, 30, 1e-10, 500, &mut w).unwrap();
        let mut x2 = vec![0.0; m.n()];
        bicgstab(&m, &ilu, &b, &mut x2, 1e-12, 500, &mut w).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn ilu_cuts_gmres_iterations() {
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 3, 3);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(0.02);
        let b = vec![1.0; m.n()];

        let mut x1 = vec![0.0; m.n()];
        let plain = gmres(&m, &IdentityPrecond, &b, &mut x1, 50, 1e-8, 5000, &mut w).unwrap();
        let ilu = Ilu0::new(&m, &mut w);
        let mut x2 = vec![0.0; m.n()];
        let pre = gmres(&m, &ilu, &b, &mut x2, 50, 1e-8, 5000, &mut w).unwrap();
        assert!(
            pre.iterations < plain.iterations,
            "ILU {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn max_iterations_error() {
        let a = laplacian_1d(60);
        let b = vec![1.0; 60];
        let mut x = vec![0.0; 60];
        let mut w = WorkCounter::new();
        let err = gmres(&a, &IdentityPrecond, &b, &mut x, 4, 1e-14, 6, &mut w).unwrap_err();
        assert!(matches!(err, SolveError::MaxIterations { .. }));
    }
}
