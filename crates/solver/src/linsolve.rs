//! Sparse linear solvers: ILU(0) preconditioning and **BiCGSTAB**, the
//! production Krylov solver of the integrator.
//!
//! Every Rosenbrock stage solves `(I - γ·dt·A)·k = rhs`. The matrix is
//! nonsymmetric (advection), so we use BiCGSTAB preconditioned with an
//! ILU(0) factorization that is recomputed only when `dt` changes — exactly
//! the kind of "A matrix must be built up … again and again" cost structure
//! the paper describes. When `dt` does change, [`Ilu0::refactor`] rewrites
//! the combined LU values in place on the cached pattern instead of
//! reallocating, and [`bicgstab_with`] runs on a caller-owned
//! [`KrylovWorkspace`] so the integrator's inner loop performs no heap
//! allocation at all.
//!
//! The crate also ships restarted GMRES(m) in [`crate::gmres`]. BiCGSTAB is
//! what [`crate::rosenbrock::integrate`] uses for every stage solve; GMRES
//! is kept as the classic CWI-style alternative for the benches
//! (`bench/benches/solver_kernels.rs` compares both on the same stage
//! matrices) and for test cross-validation — it is never on the `subsolve`
//! hot path.

use crate::sparse::Csr;
use crate::work::WorkCounter;

/// A left preconditioner `M ≈ A`: given `r`, produce `z ≈ A⁻¹ r`.
pub trait Preconditioner {
    /// Apply `z = M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter);
}

/// The trivial preconditioner (`M = I`).
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64], _work: &mut WorkCounter) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner.
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Build from the matrix diagonal (zero entries are treated as 1).
    pub fn new(a: &Csr) -> Self {
        JacobiPrecond {
            inv_diag: a
                .diag()
                .iter()
                .map(|&d| if d.abs() < 1e-300 { 1.0 } else { 1.0 / d })
                .collect(),
        }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
        work.add_vector_ops(r.len(), 1);
    }
}

/// Incomplete LU factorization with zero fill-in, on the sparsity pattern
/// of the input matrix.
pub struct Ilu0 {
    /// Combined LU factors (unit lower L below the diagonal, U on and above).
    lu: Csr,
    /// Position of the diagonal entry within each row's value slice.
    diag_pos: Vec<usize>,
    /// Rows grouped by forward-solve dependency level (see
    /// [`level_schedule`]); `fwd_level_ptr` delimits the groups.
    fwd_order: Vec<u32>,
    fwd_level_ptr: Vec<u32>,
    /// Same for the backward solve.
    bwd_order: Vec<u32>,
    bwd_level_ptr: Vec<u32>,
}

/// Level schedule for a sparse triangular solve: `level[i]` is the longest
/// dependency chain ending at row `i`, so rows sharing a level are mutually
/// independent and the out-of-order core can overlap their long-latency
/// multiply/subtract(/divide) chains instead of serializing on the
/// row-to-row recurrence. The sweep still computes every row with exactly
/// the same operations in the same order — only the *scheduling* across
/// independent rows changes, so results are bitwise identical to the
/// natural-order sweep. The schedule depends only on the sparsity pattern
/// and is reused verbatim by [`Ilu0::refactor`].
///
/// For `forward = true` a row's dependencies are its strict lower part
/// (columns before the diagonal) and rows are walked ascending; for the
/// backward sweep they are the strict upper part, walked descending. The
/// group ordering follows the walk, which keeps memory access roughly
/// sequential within each level.
fn level_schedule(
    forward: bool,
    row_ptr: &[usize],
    col_idx: &[usize],
    diag_pos: &[usize],
) -> (Vec<u32>, Vec<u32>) {
    let n = row_ptr.len() - 1;
    let mut level = vec![0u32; n];
    let mut nlevels = 0u32;
    let rows: Box<dyn Iterator<Item = usize>> = if forward {
        Box::new(0..n)
    } else {
        Box::new((0..n).rev())
    };
    for i in rows {
        let dp = row_ptr[i] + diag_pos[i];
        let deps = if forward {
            &col_idx[row_ptr[i]..dp]
        } else {
            &col_idx[dp + 1..row_ptr[i + 1]]
        };
        let mut lv = 0u32;
        for &c in deps {
            lv = lv.max(level[c] + 1);
        }
        level[i] = lv;
        nlevels = nlevels.max(lv + 1);
    }
    let mut level_ptr = vec![0u32; nlevels as usize + 1];
    for &lv in &level {
        level_ptr[lv as usize + 1] += 1;
    }
    for l in 1..level_ptr.len() {
        level_ptr[l] += level_ptr[l - 1];
    }
    let mut cursor: Vec<u32> = level_ptr[..level_ptr.len() - 1].to_vec();
    let mut order = vec![0u32; n];
    let fill: Box<dyn Iterator<Item = usize>> = if forward {
        Box::new(0..n)
    } else {
        Box::new((0..n).rev())
    };
    for i in fill {
        let lv = level[i] as usize;
        order[cursor[lv] as usize] = i as u32;
        cursor[lv] += 1;
    }
    (order, level_ptr)
}

/// IKJ-variant ILU(0) over the combined LU values, in place. Rows `k < i`
/// live entirely before row `i` in the flat value array, so a single
/// `split_at_mut` yields the already-factored rows immutably while row `i`
/// is updated — no per-row copies, no allocation.
fn factor_in_place(row_ptr: &[usize], col_idx: &[usize], vals: &mut [f64], diag_pos: &[usize]) {
    let n = row_ptr.len() - 1;
    for i in 0..n {
        let (ilo, ihi) = (row_ptr[i], row_ptr[i + 1]);
        let (done, rest) = vals.split_at_mut(ilo);
        let ivals = &mut rest[..ihi - ilo];
        let icols = &col_idx[ilo..ihi];
        for ki in 0..icols.len() {
            let k = icols[ki];
            if k >= i {
                break;
            }
            // pivot = a[i][k] / a[k][k]; small pivots are bumped to keep
            // the factorization finite.
            let (klo, khi) = (row_ptr[k], row_ptr[k + 1]);
            let akk = done[klo + diag_pos[k]];
            let akk = if akk.abs() < 1e-300 {
                1e-300_f64.copysign(akk)
            } else {
                akk
            };
            ivals[ki] /= akk;
            let pivot = ivals[ki];
            // Row update: a[i][j] -= pivot * a[k][j] for j > k in both
            // patterns.
            let kcols = &col_idx[klo..khi];
            let kvals = &done[klo..khi];
            let mut ji = ki + 1;
            for (kc, kv) in kcols.iter().zip(kvals) {
                if *kc <= k {
                    continue;
                }
                // advance ji to the first column >= kc
                while ji < icols.len() && icols[ji] < *kc {
                    ji += 1;
                }
                if ji == icols.len() {
                    break;
                }
                if icols[ji] == *kc {
                    ivals[ji] -= pivot * kv;
                }
            }
        }
    }
}

impl Ilu0 {
    /// Factor `a`. Rows must contain their diagonal entry (the Rosenbrock
    /// matrices always do). Small pivots are bumped to keep the
    /// factorization finite.
    pub fn new(a: &Csr, work: &mut WorkCounter) -> Self {
        let n = a.n();
        let mut lu = a.clone();
        let mut diag_pos = vec![0usize; n];
        #[allow(clippy::needless_range_loop)] // row index drives two arrays
        for r in 0..n {
            let (cols, _) = lu.row(r);
            diag_pos[r] = cols
                .iter()
                .position(|&c| c == r)
                .unwrap_or_else(|| panic!("ILU(0): row {r} has no diagonal entry"));
        }
        let (fwd_order, fwd_level_ptr) =
            level_schedule(true, lu.row_ptr(), lu.col_indices(), &diag_pos);
        let (bwd_order, bwd_level_ptr) =
            level_schedule(false, lu.row_ptr(), lu.col_indices(), &diag_pos);
        {
            let (row_ptr, col_idx, vals) = lu.raw_parts_mut();
            factor_in_place(row_ptr, col_idx, vals, &diag_pos);
        }
        work.add_factorization(lu.nnz());
        Ilu0 {
            lu,
            diag_pos,
            fwd_order,
            fwd_level_ptr,
            bwd_order,
            bwd_level_ptr,
        }
    }

    /// Refactor in place from a matrix with the *same sparsity pattern* as
    /// the one this factorization was built from: copy the values onto the
    /// cached combined-LU pattern and re-run the elimination. No
    /// allocation; `diag_pos` is reused verbatim.
    pub fn refactor(&mut self, a: &Csr, work: &mut WorkCounter) {
        debug_assert!(
            self.lu.same_pattern(a),
            "Ilu0::refactor: pattern mismatch — use Ilu0::new"
        );
        self.lu.vals_mut().copy_from_slice(a.vals());
        let (row_ptr, col_idx, vals) = self.lu.raw_parts_mut();
        factor_in_place(row_ptr, col_idx, vals, &self.diag_pos);
        work.add_refactorization(self.lu.nnz());
    }
}

impl Preconditioner for Ilu0 {
    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter) {
        let n = self.lu.n();
        assert_eq!(r.len(), n);
        assert_eq!(z.len(), n);
        let row_ptr = self.lu.row_ptr();
        let cols = self.lu.col_indices();
        let vals = self.lu.vals();
        let diag_pos = &self.diag_pos;
        debug_assert_eq!(diag_pos.len(), n);
        // SAFETY: the Csr invariants bound `row_ptr` by `cols.len()` /
        // `vals.len()` and every stored column by `n`; `diag_pos[i]` is the
        // verified in-row position of the diagonal (checked in `new`, pattern
        // unchanged by `refactor`), so `lo + diag_pos[i] < row_ptr[i + 1]`.
        // Entries before the diagonal are exactly the columns `< i`
        // (sorted rows), giving the branch-free strict-L / strict-U splits.
        // The level schedule (built in `new`) is a permutation of `0..n`, so
        // every `order` entry indexes in bounds, and it groups mutually
        // independent rows: each row still runs exactly the operations of
        // the natural-order sweep, in the same order, reading only rows from
        // earlier levels — results are bitwise identical, but the CPU can
        // overlap the multiply/subtract(/divide) latency chains of the rows
        // inside a level instead of serializing on the row recurrence.
        unsafe {
            // Forward solve L y = r (unit diagonal), y stored in z.
            for w in self.fwd_level_ptr.windows(2) {
                for idx in w[0]..w[1] {
                    let i = *self.fwd_order.get_unchecked(idx as usize) as usize;
                    let lo = *row_ptr.get_unchecked(i);
                    let dp = lo + *diag_pos.get_unchecked(i);
                    let mut acc = *r.get_unchecked(i);
                    for k in lo..dp {
                        acc -= *vals.get_unchecked(k) * *z.get_unchecked(*cols.get_unchecked(k));
                    }
                    *z.get_unchecked_mut(i) = acc;
                }
            }
            // Backward solve U z = y.
            for w in self.bwd_level_ptr.windows(2) {
                for idx in w[0]..w[1] {
                    let i = *self.bwd_order.get_unchecked(idx as usize) as usize;
                    let lo = *row_ptr.get_unchecked(i);
                    let hi = *row_ptr.get_unchecked(i + 1);
                    let dp = lo + *diag_pos.get_unchecked(i);
                    let mut acc = *z.get_unchecked(i);
                    for k in dp + 1..hi {
                        acc -= *vals.get_unchecked(k) * *z.get_unchecked(*cols.get_unchecked(k));
                    }
                    *z.get_unchecked_mut(i) = acc / *vals.get_unchecked(dp);
                }
            }
        }
        work.add_precond_apply(self.lu.nnz());
    }
}

/// Why a solve failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// Scalar breakdown (`rho` or `omega` vanished) before convergence.
    Breakdown {
        /// Iterations completed before the breakdown.
        iterations: usize,
    },
    /// Iteration limit reached.
    MaxIterations {
        /// Relative residual at the limit.
        residual: f64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Breakdown { iterations } => {
                write!(f, "BiCGSTAB breakdown after {iterations} iterations")
            }
            SolveError::MaxIterations { residual } => {
                write!(f, "BiCGSTAB hit max iterations (residual {residual:.3e})")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Statistics of a successful solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveStats {
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Reusable scratch vectors for the Krylov solvers ([`bicgstab_with`] and
/// [`crate::gmres::gmres_with`]). Allocate one per integration (or per
/// subsolve) and thread it through every stage solve: after the first call
/// at a given size, subsequent solves perform zero heap allocations.
#[derive(Debug, Default)]
pub struct KrylovWorkspace {
    pub(crate) r: Vec<f64>,
    pub(crate) r_hat: Vec<f64>,
    pub(crate) v: Vec<f64>,
    pub(crate) p: Vec<f64>,
    pub(crate) p_hat: Vec<f64>,
    pub(crate) s: Vec<f64>,
    pub(crate) s_hat: Vec<f64>,
    pub(crate) t: Vec<f64>,
    /// GMRES Arnoldi basis vectors (grown on demand, reused across calls).
    pub(crate) basis: Vec<Vec<f64>>,
    /// GMRES Hessenberg columns, Givens factors, rotated rhs, solution.
    pub(crate) h: Vec<Vec<f64>>,
    pub(crate) cs: Vec<f64>,
    pub(crate) sn: Vec<f64>,
    pub(crate) g: Vec<f64>,
    pub(crate) y: Vec<f64>,
}

impl KrylovWorkspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the BiCGSTAB vectors for problems of dimension `n`.
    pub(crate) fn ensure(&mut self, n: usize) {
        for buf in [
            &mut self.r,
            &mut self.r_hat,
            &mut self.v,
            &mut self.p,
            &mut self.p_hat,
            &mut self.s,
            &mut self.s_hat,
            &mut self.t,
        ] {
            buf.resize(n, 0.0);
        }
    }
}

/// Preconditioned BiCGSTAB: solve `A x = b` in place (`x` holds the initial
/// guess on entry, the solution on success). Allocates its own scratch;
/// hot paths should use [`bicgstab_with`] and a reused [`KrylovWorkspace`].
pub fn bicgstab(
    a: &Csr,
    precond: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
    work: &mut WorkCounter,
) -> Result<SolveStats, SolveError> {
    let mut ws = KrylovWorkspace::new();
    bicgstab_with(a, precond, b, x, rel_tol, max_iters, &mut ws, work)
}

/// [`bicgstab`] on caller-owned scratch: zero heap allocations once the
/// workspace has been sized (first call at dimension `n`). Bit-identical to
/// the allocating entry point — same operations in the same order.
#[allow(clippy::too_many_arguments)] // a solver signature, mirrors gmres
pub fn bicgstab_with(
    a: &Csr,
    precond: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
    ws: &mut KrylovWorkspace,
    work: &mut WorkCounter,
) -> Result<SolveStats, SolveError> {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = norm2(b).max(1e-300);

    ws.ensure(n);
    let KrylovWorkspace {
        r,
        r_hat,
        v,
        p,
        p_hat,
        s,
        s_hat,
        t,
        ..
    } = ws;

    a.matvec_into(x, r);
    work.add_matvec(a.nnz());
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    r_hat.copy_from_slice(r);
    let mut rho = 1.0_f64;
    let mut alpha = 1.0_f64;
    let mut omega = 1.0_f64;
    v.fill(0.0);
    p.fill(0.0);

    let mut resid = norm2(r) / bnorm;
    if resid <= rel_tol {
        return Ok(SolveStats {
            iterations: 0,
            residual: resid,
        });
    }

    for it in 1..=max_iters {
        work.add_lin_iter();
        let rho_new = dot(r_hat, r);
        if rho_new.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it - 1 });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        for ((pi, ri), vi) in p.iter_mut().zip(r.iter()).zip(v.iter()) {
            *pi = ri + beta * (*pi - omega * vi);
        }
        precond.apply(p, p_hat, work);
        a.matvec_into(p_hat, v);
        work.add_matvec(a.nnz());
        let rv = dot(r_hat, v);
        if rv.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        alpha = rho_new / rv;
        for ((si, ri), vi) in s.iter_mut().zip(r.iter()).zip(v.iter()) {
            *si = ri - alpha * vi;
        }
        if norm2(s) / bnorm <= rel_tol {
            for (xi, phi) in x.iter_mut().zip(p_hat.iter()) {
                *xi += alpha * phi;
            }
            work.add_vector_ops(n, 6);
            return Ok(SolveStats {
                iterations: it,
                residual: norm2(s) / bnorm,
            });
        }
        precond.apply(s, s_hat, work);
        a.matvec_into(s_hat, t);
        work.add_matvec(a.nnz());
        let tt = dot(t, t);
        if tt.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        omega = dot(t, s) / tt;
        if omega.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        for ((xi, phi), shi) in x.iter_mut().zip(p_hat.iter()).zip(s_hat.iter()) {
            *xi += alpha * phi + omega * shi;
        }
        for ((ri, si), ti) in r.iter_mut().zip(s.iter()).zip(t.iter()) {
            *ri = si - omega * ti;
        }
        work.add_vector_ops(n, 10);
        resid = norm2(r) / bnorm;
        if resid <= rel_tol {
            return Ok(SolveStats {
                iterations: it,
                residual: resid,
            });
        }
        rho = rho_new;
    }
    Err(SolveError::MaxIterations { residual: resid })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use crate::grid::Grid2;
    use crate::problem::Problem;

    fn laplacian_1d(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(n, &t)
    }

    #[test]
    fn ilu0_of_triangular_matrix_is_exact() {
        // For a lower or upper triangular matrix, ILU(0) = exact LU, so the
        // preconditioner solves exactly.
        let a = Csr::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, -1.0),
                (2, 2, 4.0),
            ],
        );
        let mut w = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut w);
        let b = [2.0, 8.0, 3.0];
        let mut z = vec![0.0; 3];
        ilu.apply(&b, &mut z, &mut w);
        let az = a.matvec(&z);
        for (ai, bi) in az.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12, "{az:?} vs {b:?}");
        }
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // Tridiagonal matrices incur no fill, so ILU(0) == LU.
        let a = laplacian_1d(10);
        let mut w = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut w);
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin() + 1.0).collect();
        let mut z = vec![0.0; 10];
        ilu.apply(&b, &mut z, &mut w);
        let az = a.matvec(&z);
        for (ai, bi) in az.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn bicgstab_solves_identity_instantly() {
        let a = Csr::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut x = vec![0.0; 4];
        let mut w = WorkCounter::new();
        let stats = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-12, 10, &mut w).unwrap();
        assert!(stats.iterations <= 1);
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn bicgstab_solves_spd_system() {
        let a = laplacian_1d(50);
        let x_true: Vec<f64> = (0..50).map(|i| (0.3 * i as f64).cos()).collect();
        let b = a.matvec(&x_true);
        let mut x = vec![0.0; 50];
        let mut w = WorkCounter::new();
        let stats = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-10, 500, &mut w).unwrap();
        assert!(stats.residual <= 1e-10);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn ilu_precondition_cuts_iterations() {
        // 2D advection-diffusion operator: nonsymmetric, modest size.
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 2, 2); // 16x16 → 225 unknowns
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(0.01);
        let x_true: Vec<f64> = (0..m.n()).map(|i| ((i % 17) as f64) / 17.0).collect();
        let b = m.matvec(&x_true);

        let mut x1 = vec![0.0; m.n()];
        let plain = bicgstab(&m, &IdentityPrecond, &b, &mut x1, 1e-10, 2000, &mut w).unwrap();

        let ilu = Ilu0::new(&m, &mut w);
        let mut x2 = vec![0.0; m.n()];
        let pre = bicgstab(&m, &ilu, &b, &mut x2, 1e-10, 2000, &mut w).unwrap();

        assert!(
            pre.iterations < plain.iterations,
            "ILU ({}) should beat plain ({})",
            pre.iterations,
            plain.iterations
        );
        for (xi, ti) in x2.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        // Refactoring in place from a same-pattern matrix must produce the
        // same factors (bitwise) as a fresh Ilu0::new.
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 1, 2);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m1 = d.a.identity_minus_scaled(0.01);
        let m2 = d.a.identity_minus_scaled(0.037);

        let mut reused = Ilu0::new(&m1, &mut w);
        reused.refactor(&m2, &mut w);
        let fresh = Ilu0::new(&m2, &mut w);

        let r: Vec<f64> = (0..m2.n()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut z1 = vec![0.0; m2.n()];
        let mut z2 = vec![0.0; m2.n()];
        reused.apply(&r, &mut z1, &mut w);
        fresh.apply(&r, &mut z2, &mut w);
        assert_eq!(z1, z2, "refactor must be bit-identical to new");
        assert_eq!(w.refactorizations, 1);
    }

    #[test]
    fn workspace_bicgstab_matches_allocating_entry_point() {
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 2, 1);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(0.02);
        let ilu = Ilu0::new(&m, &mut w);
        let b: Vec<f64> = (0..m.n()).map(|i| ((i % 11) as f64) / 11.0).collect();

        let mut x1 = vec![0.0; m.n()];
        let s1 = bicgstab(&m, &ilu, &b, &mut x1, 1e-10, 500, &mut w).unwrap();
        let mut ws = KrylovWorkspace::new();
        let mut x2 = vec![0.0; m.n()];
        // Two calls on the same workspace: the second must not be polluted
        // by the first.
        bicgstab_with(&m, &ilu, &b, &mut x2, 1e-10, 500, &mut ws, &mut w).unwrap();
        let mut x3 = vec![0.0; m.n()];
        let s3 = bicgstab_with(&m, &ilu, &b, &mut x3, 1e-10, 500, &mut ws, &mut w).unwrap();
        assert_eq!(x1, x2);
        assert_eq!(x1, x3);
        assert_eq!(s1.iterations, s3.iterations);
    }

    #[test]
    fn jacobi_preconditioner_scales_by_diagonal() {
        let a = Csr::from_triplets(2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let j = JacobiPrecond::new(&a);
        let mut z = vec![0.0; 2];
        let mut w = WorkCounter::new();
        j.apply(&[2.0, 4.0], &mut z, &mut w);
        assert_eq!(z, vec![1.0, 1.0]);
    }

    #[test]
    fn max_iterations_error() {
        let a = laplacian_1d(100);
        let b = vec![1.0; 100];
        let mut x = vec![0.0; 100];
        let mut w = WorkCounter::new();
        let err = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-14, 2, &mut w).unwrap_err();
        assert!(matches!(err, SolveError::MaxIterations { .. }));
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_1d(10);
        let b = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let mut w = WorkCounter::new();
        let stats = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-10, 10, &mut w).unwrap();
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn rosenbrock_matrix_is_well_conditioned_for_small_dt() {
        // I - γ dt A with small dt should need very few iterations.
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 1, 1);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(1e-4);
        let ilu = Ilu0::new(&m, &mut w);
        let b = vec![1.0; m.n()];
        let mut x = vec![0.0; m.n()];
        let stats = bicgstab(&m, &ilu, &b, &mut x, 1e-10, 100, &mut w).unwrap();
        assert!(stats.iterations <= 5, "took {}", stats.iterations);
    }
}
