//! Sparse linear solvers: ILU(0) preconditioning and BiCGSTAB.
//!
//! Every Rosenbrock stage solves `(I - γ·dt·A)·k = rhs`. The matrix is
//! nonsymmetric (advection), so we use BiCGSTAB preconditioned with an
//! ILU(0) factorization that is recomputed only when `dt` changes — exactly
//! the kind of "A matrix must be built up … again and again" cost structure
//! the paper describes.

use crate::sparse::Csr;
use crate::work::WorkCounter;

/// A left preconditioner `M ≈ A`: given `r`, produce `z ≈ A⁻¹ r`.
pub trait Preconditioner {
    /// Apply `z = M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter);
}

/// The trivial preconditioner (`M = I`).
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64], _work: &mut WorkCounter) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner.
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Build from the matrix diagonal (zero entries are treated as 1).
    pub fn new(a: &Csr) -> Self {
        JacobiPrecond {
            inv_diag: a
                .diag()
                .iter()
                .map(|&d| if d.abs() < 1e-300 { 1.0 } else { 1.0 / d })
                .collect(),
        }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
        work.add_vector_ops(r.len(), 1);
    }
}

/// Incomplete LU factorization with zero fill-in, on the sparsity pattern
/// of the input matrix.
pub struct Ilu0 {
    /// Combined LU factors (unit lower L below the diagonal, U on and above).
    lu: Csr,
    /// Position of the diagonal entry within each row's value slice.
    diag_pos: Vec<usize>,
}

impl Ilu0 {
    /// Factor `a`. Rows must contain their diagonal entry (the Rosenbrock
    /// matrices always do). Small pivots are bumped to keep the
    /// factorization finite.
    pub fn new(a: &Csr, work: &mut WorkCounter) -> Self {
        let n = a.n();
        let mut lu = a.clone();
        let mut diag_pos = vec![0usize; n];
        #[allow(clippy::needless_range_loop)] // row index drives two arrays
        for r in 0..n {
            let (cols, _) = lu.row(r);
            diag_pos[r] = cols
                .iter()
                .position(|&c| c == r)
                .unwrap_or_else(|| panic!("ILU(0): row {r} has no diagonal entry"));
        }
        // IKJ-variant ILU(0).
        for i in 0..n {
            // We need row i (mutable) and rows k < i (immutable). Copy row
            // i's indices first to appease the borrow checker cheaply.
            let (icols, _) = lu.row(i);
            let icols: Vec<usize> = icols.to_vec();
            for (ki, &k) in icols.iter().enumerate() {
                if k >= i {
                    break;
                }
                // pivot = a[i][k] / a[k][k]
                let akk = {
                    let (_, kvals) = lu.row(k);
                    kvals[diag_pos[k]]
                };
                let akk = if akk.abs() < 1e-300 {
                    1e-300_f64.copysign(akk)
                } else {
                    akk
                };
                let pivot = {
                    let ivals = lu.row_vals_mut(i);
                    ivals[ki] /= akk;
                    ivals[ki]
                };
                // Row update: a[i][j] -= pivot * a[k][j] for j > k in both
                // patterns.
                let (kcols, kvals) = {
                    let (c, v) = lu.row(k);
                    (c.to_vec(), v.to_vec())
                };
                let ivals = lu.row_vals_mut(i);
                let mut ji = ki + 1;
                for (kc, kv) in kcols.iter().zip(&kvals) {
                    if *kc <= k {
                        continue;
                    }
                    // advance ji to the first column >= kc
                    while ji < icols.len() && icols[ji] < *kc {
                        ji += 1;
                    }
                    if ji == icols.len() {
                        break;
                    }
                    if icols[ji] == *kc {
                        ivals[ji] -= pivot * kv;
                    }
                }
            }
        }
        work.add_factorization(lu.nnz());
        Ilu0 { lu, diag_pos }
    }
}

impl Preconditioner for Ilu0 {
    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter) {
        let n = self.lu.n();
        // Forward solve L y = r (unit diagonal), y stored in z.
        for i in 0..n {
            let (cols, vals) = self.lu.row(i);
            let mut acc = r[i];
            for (c, v) in cols.iter().zip(vals) {
                if *c >= i {
                    break;
                }
                acc -= v * z[*c];
            }
            z[i] = acc;
        }
        // Backward solve U z = y.
        for i in (0..n).rev() {
            let (cols, vals) = self.lu.row(i);
            let mut acc = z[i];
            let dp = self.diag_pos[i];
            for k in (dp + 1)..cols.len() {
                acc -= vals[k] * z[cols[k]];
            }
            z[i] = acc / vals[dp];
        }
        work.add_precond_apply(self.lu.nnz());
    }
}

/// Why a solve failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// Scalar breakdown (`rho` or `omega` vanished) before convergence.
    Breakdown {
        /// Iterations completed before the breakdown.
        iterations: usize,
    },
    /// Iteration limit reached.
    MaxIterations {
        /// Relative residual at the limit.
        residual: f64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Breakdown { iterations } => {
                write!(f, "BiCGSTAB breakdown after {iterations} iterations")
            }
            SolveError::MaxIterations { residual } => {
                write!(f, "BiCGSTAB hit max iterations (residual {residual:.3e})")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Statistics of a successful solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveStats {
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Preconditioned BiCGSTAB: solve `A x = b` in place (`x` holds the initial
/// guess on entry, the solution on success).
pub fn bicgstab(
    a: &Csr,
    precond: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
    work: &mut WorkCounter,
) -> Result<SolveStats, SolveError> {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = norm2(b).max(1e-300);

    let mut r = vec![0.0; n];
    a.matvec_into(x, &mut r);
    work.add_matvec(a.nnz());
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let r_hat = r.clone();
    let mut rho = 1.0_f64;
    let mut alpha = 1.0_f64;
    let mut omega = 1.0_f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut p_hat = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut s_hat = vec![0.0; n];
    let mut t = vec![0.0; n];

    let mut resid = norm2(&r) / bnorm;
    if resid <= rel_tol {
        return Ok(SolveStats {
            iterations: 0,
            residual: resid,
        });
    }

    for it in 1..=max_iters {
        work.add_lin_iter();
        let rho_new = dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it - 1 });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        precond.apply(&p, &mut p_hat, work);
        a.matvec_into(&p_hat, &mut v);
        work.add_matvec(a.nnz());
        let rv = dot(&r_hat, &v);
        if rv.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        alpha = rho_new / rv;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm2(&s) / bnorm <= rel_tol {
            for i in 0..n {
                x[i] += alpha * p_hat[i];
            }
            work.add_vector_ops(n, 6);
            return Ok(SolveStats {
                iterations: it,
                residual: norm2(&s) / bnorm,
            });
        }
        precond.apply(&s, &mut s_hat, work);
        a.matvec_into(&s_hat, &mut t);
        work.add_matvec(a.nnz());
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        omega = dot(&t, &s) / tt;
        if omega.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        for i in 0..n {
            x[i] += alpha * p_hat[i] + omega * s_hat[i];
            r[i] = s[i] - omega * t[i];
        }
        work.add_vector_ops(n, 10);
        resid = norm2(&r) / bnorm;
        if resid <= rel_tol {
            return Ok(SolveStats {
                iterations: it,
                residual: resid,
            });
        }
        rho = rho_new;
    }
    Err(SolveError::MaxIterations { residual: resid })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use crate::grid::Grid2;
    use crate::problem::Problem;

    fn laplacian_1d(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(n, &t)
    }

    #[test]
    fn ilu0_of_triangular_matrix_is_exact() {
        // For a lower or upper triangular matrix, ILU(0) = exact LU, so the
        // preconditioner solves exactly.
        let a = Csr::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, -1.0),
                (2, 2, 4.0),
            ],
        );
        let mut w = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut w);
        let b = [2.0, 8.0, 3.0];
        let mut z = vec![0.0; 3];
        ilu.apply(&b, &mut z, &mut w);
        let az = a.matvec(&z);
        for (ai, bi) in az.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12, "{az:?} vs {b:?}");
        }
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // Tridiagonal matrices incur no fill, so ILU(0) == LU.
        let a = laplacian_1d(10);
        let mut w = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut w);
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin() + 1.0).collect();
        let mut z = vec![0.0; 10];
        ilu.apply(&b, &mut z, &mut w);
        let az = a.matvec(&z);
        for (ai, bi) in az.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn bicgstab_solves_identity_instantly() {
        let a = Csr::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut x = vec![0.0; 4];
        let mut w = WorkCounter::new();
        let stats = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-12, 10, &mut w).unwrap();
        assert!(stats.iterations <= 1);
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn bicgstab_solves_spd_system() {
        let a = laplacian_1d(50);
        let x_true: Vec<f64> = (0..50).map(|i| (0.3 * i as f64).cos()).collect();
        let b = a.matvec(&x_true);
        let mut x = vec![0.0; 50];
        let mut w = WorkCounter::new();
        let stats = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-10, 500, &mut w).unwrap();
        assert!(stats.residual <= 1e-10);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn ilu_precondition_cuts_iterations() {
        // 2D advection-diffusion operator: nonsymmetric, modest size.
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 2, 2); // 16x16 → 225 unknowns
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(0.01);
        let x_true: Vec<f64> = (0..m.n()).map(|i| ((i % 17) as f64) / 17.0).collect();
        let b = m.matvec(&x_true);

        let mut x1 = vec![0.0; m.n()];
        let plain = bicgstab(&m, &IdentityPrecond, &b, &mut x1, 1e-10, 2000, &mut w).unwrap();

        let ilu = Ilu0::new(&m, &mut w);
        let mut x2 = vec![0.0; m.n()];
        let pre = bicgstab(&m, &ilu, &b, &mut x2, 1e-10, 2000, &mut w).unwrap();

        assert!(
            pre.iterations < plain.iterations,
            "ILU ({}) should beat plain ({})",
            pre.iterations,
            plain.iterations
        );
        for (xi, ti) in x2.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn jacobi_preconditioner_scales_by_diagonal() {
        let a = Csr::from_triplets(2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let j = JacobiPrecond::new(&a);
        let mut z = vec![0.0; 2];
        let mut w = WorkCounter::new();
        j.apply(&[2.0, 4.0], &mut z, &mut w);
        assert_eq!(z, vec![1.0, 1.0]);
    }

    #[test]
    fn max_iterations_error() {
        let a = laplacian_1d(100);
        let b = vec![1.0; 100];
        let mut x = vec![0.0; 100];
        let mut w = WorkCounter::new();
        let err = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-14, 2, &mut w).unwrap_err();
        assert!(matches!(err, SolveError::MaxIterations { .. }));
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_1d(10);
        let b = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let mut w = WorkCounter::new();
        let stats = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-10, 10, &mut w).unwrap();
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn rosenbrock_matrix_is_well_conditioned_for_small_dt() {
        // I - γ dt A with small dt should need very few iterations.
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 1, 1);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(1e-4);
        let ilu = Ilu0::new(&m, &mut w);
        let b = vec![1.0; m.n()];
        let mut x = vec![0.0; m.n()];
        let stats = bicgstab(&m, &ilu, &b, &mut x, 1e-10, 100, &mut w).unwrap();
        assert!(stats.iterations <= 5, "took {}", stats.iterations);
    }
}
