//! Sparse linear solvers: ILU(0) preconditioning and **BiCGSTAB**, the
//! production Krylov solver of the integrator.
//!
//! Every Rosenbrock stage solves `(I - γ·dt·A)·k = rhs`. The matrix is
//! nonsymmetric (advection), so we use BiCGSTAB preconditioned with an
//! ILU(0) factorization that is recomputed only when `dt` changes — exactly
//! the kind of "A matrix must be built up … again and again" cost structure
//! the paper describes. When `dt` does change, [`Ilu0::refactor`] rewrites
//! the combined LU values in place on the cached pattern instead of
//! reallocating, and [`bicgstab_with`] runs on a caller-owned
//! [`KrylovWorkspace`] so the integrator's inner loop performs no heap
//! allocation at all.
//!
//! The crate also ships restarted GMRES(m) in [`crate::gmres`]. BiCGSTAB is
//! what [`crate::rosenbrock::integrate`] uses for every stage solve; GMRES
//! is kept as the classic CWI-style alternative for the benches
//! (`bench/benches/solver_kernels.rs` compares both on the same stage
//! matrices) and for test cross-validation — it is never on the `subsolve`
//! hot path.

use crate::simd::{self, Backend, F64x4, Tier, LANES};
use crate::sparse::{Csr, MultiVec, StencilPlan};
use crate::work::WorkCounter;

/// A left preconditioner `M ≈ A`: given `r`, produce `z ≈ A⁻¹ r`.
pub trait Preconditioner {
    /// Apply `z = M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter);
}

/// The trivial preconditioner (`M = I`).
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64], _work: &mut WorkCounter) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner.
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Build from the matrix diagonal (zero entries are treated as 1).
    pub fn new(a: &Csr) -> Self {
        JacobiPrecond {
            inv_diag: a
                .diag()
                .iter()
                .map(|&d| if d.abs() < 1e-300 { 1.0 } else { 1.0 / d })
                .collect(),
        }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
        work.add_vector_ops(r.len(), 1);
    }
}

/// Incomplete LU factorization with zero fill-in, on the sparsity pattern
/// of the input matrix.
pub struct Ilu0 {
    /// Combined LU factors (unit lower L below the diagonal, U on and above).
    lu: Csr,
    /// Position of the diagonal entry within each row's value slice.
    diag_pos: Vec<usize>,
    /// Rows grouped by forward-solve dependency level (see
    /// [`level_schedule`]); `fwd_level_ptr` delimits the groups.
    fwd_order: Vec<u32>,
    fwd_level_ptr: Vec<u32>,
    /// Same for the backward solve.
    bwd_order: Vec<u32>,
    bwd_level_ptr: Vec<u32>,
    /// The [`StencilPlan`] of the pattern, when it conforms — enables the
    /// skewed-wavefront sweeps (ILU(0) preserves the pattern, so the plan
    /// of `A` is the plan of the combined LU factor).
    plan: Option<StencilPlan>,
}

/// Level schedule for a sparse triangular solve: `level[i]` is the longest
/// dependency chain ending at row `i`, so rows sharing a level are mutually
/// independent and the out-of-order core can overlap their long-latency
/// multiply/subtract(/divide) chains instead of serializing on the
/// row-to-row recurrence. The sweep still computes every row with exactly
/// the same operations in the same order — only the *scheduling* across
/// independent rows changes, so results are bitwise identical to the
/// natural-order sweep. The schedule depends only on the sparsity pattern
/// and is reused verbatim by [`Ilu0::refactor`].
///
/// For `forward = true` a row's dependencies are its strict lower part
/// (columns before the diagonal) and rows are walked ascending; for the
/// backward sweep they are the strict upper part, walked descending. The
/// group ordering follows the walk, which keeps memory access roughly
/// sequential within each level.
fn level_schedule(
    forward: bool,
    row_ptr: &[usize],
    col_idx: &[usize],
    diag_pos: &[usize],
) -> (Vec<u32>, Vec<u32>) {
    let n = row_ptr.len() - 1;
    let mut level = vec![0u32; n];
    let mut nlevels = 0u32;
    let rows: Box<dyn Iterator<Item = usize>> = if forward {
        Box::new(0..n)
    } else {
        Box::new((0..n).rev())
    };
    for i in rows {
        let dp = row_ptr[i] + diag_pos[i];
        let deps = if forward {
            &col_idx[row_ptr[i]..dp]
        } else {
            &col_idx[dp + 1..row_ptr[i + 1]]
        };
        let mut lv = 0u32;
        for &c in deps {
            lv = lv.max(level[c] + 1);
        }
        level[i] = lv;
        nlevels = nlevels.max(lv + 1);
    }
    let mut level_ptr = vec![0u32; nlevels as usize + 1];
    for &lv in &level {
        level_ptr[lv as usize + 1] += 1;
    }
    for l in 1..level_ptr.len() {
        level_ptr[l] += level_ptr[l - 1];
    }
    let mut cursor: Vec<u32> = level_ptr[..level_ptr.len() - 1].to_vec();
    let mut order = vec![0u32; n];
    let fill: Box<dyn Iterator<Item = usize>> = if forward {
        Box::new(0..n)
    } else {
        Box::new((0..n).rev())
    };
    for i in fill {
        let lv = level[i] as usize;
        order[cursor[lv] as usize] = i as u32;
        cursor[lv] += 1;
    }
    (order, level_ptr)
}

/// IKJ-variant ILU(0) over the combined LU values, in place. Rows `k < i`
/// live entirely before row `i` in the flat value array, so a single
/// `split_at_mut` yields the already-factored rows immutably while row `i`
/// is updated — no per-row copies, no allocation.
fn factor_in_place(row_ptr: &[usize], col_idx: &[usize], vals: &mut [f64], diag_pos: &[usize]) {
    let n = row_ptr.len() - 1;
    for i in 0..n {
        let (ilo, ihi) = (row_ptr[i], row_ptr[i + 1]);
        let (done, rest) = vals.split_at_mut(ilo);
        let ivals = &mut rest[..ihi - ilo];
        let icols = &col_idx[ilo..ihi];
        for ki in 0..icols.len() {
            let k = icols[ki];
            if k >= i {
                break;
            }
            // pivot = a[i][k] / a[k][k]; small pivots are bumped to keep
            // the factorization finite.
            let (klo, khi) = (row_ptr[k], row_ptr[k + 1]);
            let akk = done[klo + diag_pos[k]];
            let akk = if akk.abs() < 1e-300 {
                1e-300_f64.copysign(akk)
            } else {
                akk
            };
            ivals[ki] /= akk;
            let pivot = ivals[ki];
            // Row update: a[i][j] -= pivot * a[k][j] for j > k in both
            // patterns.
            let kcols = &col_idx[klo..khi];
            let kvals = &done[klo..khi];
            let mut ji = ki + 1;
            for (kc, kv) in kcols.iter().zip(kvals) {
                if *kc <= k {
                    continue;
                }
                // advance ji to the first column >= kc
                while ji < icols.len() && icols[ji] < *kc {
                    ji += 1;
                }
                if ji == icols.len() {
                    break;
                }
                if icols[ji] == *kc {
                    ivals[ji] -= pivot * kv;
                }
            }
        }
    }
}

impl Ilu0 {
    /// Factor `a`. Rows must contain their diagonal entry (the Rosenbrock
    /// matrices always do). Small pivots are bumped to keep the
    /// factorization finite.
    pub fn new(a: &Csr, work: &mut WorkCounter) -> Self {
        let n = a.n();
        let mut lu = a.clone();
        let mut diag_pos = vec![0usize; n];
        #[allow(clippy::needless_range_loop)] // row index drives two arrays
        for r in 0..n {
            let (cols, _) = lu.row(r);
            diag_pos[r] = cols
                .iter()
                .position(|&c| c == r)
                .unwrap_or_else(|| panic!("ILU(0): row {r} has no diagonal entry"));
        }
        let (fwd_order, fwd_level_ptr) =
            level_schedule(true, lu.row_ptr(), lu.col_indices(), &diag_pos);
        let (bwd_order, bwd_level_ptr) =
            level_schedule(false, lu.row_ptr(), lu.col_indices(), &diag_pos);
        {
            let (row_ptr, col_idx, vals) = lu.raw_parts_mut();
            factor_in_place(row_ptr, col_idx, vals, &diag_pos);
        }
        work.add_factorization(lu.nnz());
        let plan = a.stencil_plan();
        Ilu0 {
            lu,
            diag_pos,
            fwd_order,
            fwd_level_ptr,
            bwd_order,
            bwd_level_ptr,
            plan,
        }
    }

    /// Refactor in place from a matrix with the *same sparsity pattern* as
    /// the one this factorization was built from: copy the values onto the
    /// cached combined-LU pattern and re-run the elimination. No
    /// allocation; `diag_pos` is reused verbatim.
    pub fn refactor(&mut self, a: &Csr, work: &mut WorkCounter) {
        debug_assert!(
            self.lu.same_pattern(a),
            "Ilu0::refactor: pattern mismatch — use Ilu0::new"
        );
        self.lu.vals_mut().copy_from_slice(a.vals());
        let (row_ptr, col_idx, vals) = self.lu.raw_parts_mut();
        factor_in_place(row_ptr, col_idx, vals, &self.diag_pos);
        work.add_refactorization(self.lu.nnz());
    }
}

impl Ilu0 {
    /// Level-scheduled sweeps with the plain scalar inner loops — the
    /// differential-test oracle for the lane-blocked [`Preconditioner::apply`]
    /// and the `force-scalar` code path. Performs no work accounting.
    pub fn apply_scalar(&self, r: &[f64], z: &mut [f64]) {
        let n = self.lu.n();
        assert_eq!(r.len(), n);
        assert_eq!(z.len(), n);
        let row_ptr = self.lu.row_ptr();
        let cols = self.lu.col_indices();
        let vals = self.lu.vals();
        let diag_pos = &self.diag_pos;
        debug_assert_eq!(diag_pos.len(), n);
        // SAFETY: the Csr invariants bound `row_ptr` by `cols.len()` /
        // `vals.len()` and every stored column by `n`; `diag_pos[i]` is the
        // verified in-row position of the diagonal (checked in `new`, pattern
        // unchanged by `refactor`), so `lo + diag_pos[i] < row_ptr[i + 1]`.
        // Entries before the diagonal are exactly the columns `< i`
        // (sorted rows), giving the branch-free strict-L / strict-U splits.
        // The level schedule (built in `new`) is a permutation of `0..n`, so
        // every `order` entry indexes in bounds, and it groups mutually
        // independent rows: each row still runs exactly the operations of
        // the natural-order sweep, in the same order, reading only rows from
        // earlier levels — results are bitwise identical, but the CPU can
        // overlap the multiply/subtract(/divide) latency chains of the rows
        // inside a level instead of serializing on the row recurrence.
        unsafe {
            // Forward solve L y = r (unit diagonal), y stored in z.
            for w in self.fwd_level_ptr.windows(2) {
                for idx in w[0]..w[1] {
                    let i = *self.fwd_order.get_unchecked(idx as usize) as usize;
                    let lo = *row_ptr.get_unchecked(i);
                    let dp = lo + *diag_pos.get_unchecked(i);
                    let mut acc = *r.get_unchecked(i);
                    for k in lo..dp {
                        acc -= *vals.get_unchecked(k) * *z.get_unchecked(*cols.get_unchecked(k));
                    }
                    *z.get_unchecked_mut(i) = acc;
                }
            }
            // Backward solve U z = y.
            for w in self.bwd_level_ptr.windows(2) {
                for idx in w[0]..w[1] {
                    let i = *self.bwd_order.get_unchecked(idx as usize) as usize;
                    let lo = *row_ptr.get_unchecked(i);
                    let hi = *row_ptr.get_unchecked(i + 1);
                    let dp = lo + *diag_pos.get_unchecked(i);
                    let mut acc = *z.get_unchecked(i);
                    for k in dp + 1..hi {
                        acc -= *vals.get_unchecked(k) * *z.get_unchecked(*cols.get_unchecked(k));
                    }
                    *z.get_unchecked_mut(i) = acc / *vals.get_unchecked(dp);
                }
            }
        }
    }

    /// Lane-blocked level-scheduled sweeps: rows inside a level are mutually
    /// independent, so blocks of four equal-dependency-count rows run one
    /// row per lane. Each row still evaluates exactly the scalar per-row
    /// expression, so the result is bit-identical to [`Ilu0::apply_scalar`].
    ///
    /// # Safety
    /// Relies on the same invariants as `apply_scalar` (see the safety
    /// comment there); additionally, rows within one level never read each
    /// other's `z`, so the four lanes of a block are data-independent.
    #[inline(always)]
    unsafe fn apply_lanes(&self, r: &[f64], z: &mut [f64]) {
        let row_ptr = self.lu.row_ptr();
        let cols = self.lu.col_indices();
        let vals = self.lu.vals();
        let diag_pos = &self.diag_pos;

        // Forward solve L y = r (unit diagonal), y stored in z.
        for w in self.fwd_level_ptr.windows(2) {
            let (mut idx, hi) = (w[0] as usize, w[1] as usize);
            while idx + LANES <= hi {
                let i0 = *self.fwd_order.get_unchecked(idx) as usize;
                let i1 = *self.fwd_order.get_unchecked(idx + 1) as usize;
                let i2 = *self.fwd_order.get_unchecked(idx + 2) as usize;
                let i3 = *self.fwd_order.get_unchecked(idx + 3) as usize;
                let lo0 = *row_ptr.get_unchecked(i0);
                let lo1 = *row_ptr.get_unchecked(i1);
                let lo2 = *row_ptr.get_unchecked(i2);
                let lo3 = *row_ptr.get_unchecked(i3);
                let len = *diag_pos.get_unchecked(i0);
                if *diag_pos.get_unchecked(i1) == len
                    && *diag_pos.get_unchecked(i2) == len
                    && *diag_pos.get_unchecked(i3) == len
                {
                    let mut acc = F64x4([
                        *r.get_unchecked(i0),
                        *r.get_unchecked(i1),
                        *r.get_unchecked(i2),
                        *r.get_unchecked(i3),
                    ]);
                    for p in 0..len {
                        let a = F64x4([
                            *vals.get_unchecked(lo0 + p),
                            *vals.get_unchecked(lo1 + p),
                            *vals.get_unchecked(lo2 + p),
                            *vals.get_unchecked(lo3 + p),
                        ]);
                        let zz = F64x4([
                            *z.get_unchecked(*cols.get_unchecked(lo0 + p)),
                            *z.get_unchecked(*cols.get_unchecked(lo1 + p)),
                            *z.get_unchecked(*cols.get_unchecked(lo2 + p)),
                            *z.get_unchecked(*cols.get_unchecked(lo3 + p)),
                        ]);
                        acc = acc.sub(a.mul(zz));
                    }
                    *z.get_unchecked_mut(i0) = acc.0[0];
                    *z.get_unchecked_mut(i1) = acc.0[1];
                    *z.get_unchecked_mut(i2) = acc.0[2];
                    *z.get_unchecked_mut(i3) = acc.0[3];
                    idx += LANES;
                    continue;
                }
                for q in idx..idx + LANES {
                    self.fwd_row_scalar(q, r, z, row_ptr, cols, vals);
                }
                idx += LANES;
            }
            while idx < hi {
                self.fwd_row_scalar(idx, r, z, row_ptr, cols, vals);
                idx += 1;
            }
        }
        // Backward solve U z = y.
        for w in self.bwd_level_ptr.windows(2) {
            let (mut idx, hi) = (w[0] as usize, w[1] as usize);
            while idx + LANES <= hi {
                let i0 = *self.bwd_order.get_unchecked(idx) as usize;
                let i1 = *self.bwd_order.get_unchecked(idx + 1) as usize;
                let i2 = *self.bwd_order.get_unchecked(idx + 2) as usize;
                let i3 = *self.bwd_order.get_unchecked(idx + 3) as usize;
                let dp0 = *row_ptr.get_unchecked(i0) + *diag_pos.get_unchecked(i0);
                let dp1 = *row_ptr.get_unchecked(i1) + *diag_pos.get_unchecked(i1);
                let dp2 = *row_ptr.get_unchecked(i2) + *diag_pos.get_unchecked(i2);
                let dp3 = *row_ptr.get_unchecked(i3) + *diag_pos.get_unchecked(i3);
                let len = *row_ptr.get_unchecked(i0 + 1) - dp0 - 1;
                if *row_ptr.get_unchecked(i1 + 1) - dp1 - 1 == len
                    && *row_ptr.get_unchecked(i2 + 1) - dp2 - 1 == len
                    && *row_ptr.get_unchecked(i3 + 1) - dp3 - 1 == len
                {
                    let mut acc = F64x4([
                        *z.get_unchecked(i0),
                        *z.get_unchecked(i1),
                        *z.get_unchecked(i2),
                        *z.get_unchecked(i3),
                    ]);
                    for p in 1..=len {
                        let a = F64x4([
                            *vals.get_unchecked(dp0 + p),
                            *vals.get_unchecked(dp1 + p),
                            *vals.get_unchecked(dp2 + p),
                            *vals.get_unchecked(dp3 + p),
                        ]);
                        let zz = F64x4([
                            *z.get_unchecked(*cols.get_unchecked(dp0 + p)),
                            *z.get_unchecked(*cols.get_unchecked(dp1 + p)),
                            *z.get_unchecked(*cols.get_unchecked(dp2 + p)),
                            *z.get_unchecked(*cols.get_unchecked(dp3 + p)),
                        ]);
                        acc = acc.sub(a.mul(zz));
                    }
                    let d = F64x4([
                        *vals.get_unchecked(dp0),
                        *vals.get_unchecked(dp1),
                        *vals.get_unchecked(dp2),
                        *vals.get_unchecked(dp3),
                    ]);
                    let out = acc.div(d);
                    *z.get_unchecked_mut(i0) = out.0[0];
                    *z.get_unchecked_mut(i1) = out.0[1];
                    *z.get_unchecked_mut(i2) = out.0[2];
                    *z.get_unchecked_mut(i3) = out.0[3];
                    idx += LANES;
                    continue;
                }
                for q in idx..idx + LANES {
                    self.bwd_row_scalar(q, z, row_ptr, cols, vals);
                }
                idx += LANES;
            }
            while idx < hi {
                self.bwd_row_scalar(idx, z, row_ptr, cols, vals);
                idx += 1;
            }
        }
    }

    /// One forward-sweep row (scalar), addressed by schedule position.
    ///
    /// # Safety
    /// Same invariants as [`Ilu0::apply_lanes`]; `q` must be a valid index
    /// into `fwd_order`.
    #[inline(always)]
    unsafe fn fwd_row_scalar(
        &self,
        q: usize,
        r: &[f64],
        z: &mut [f64],
        row_ptr: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) {
        let i = *self.fwd_order.get_unchecked(q) as usize;
        let lo = *row_ptr.get_unchecked(i);
        let dp = lo + *self.diag_pos.get_unchecked(i);
        let mut acc = *r.get_unchecked(i);
        for k in lo..dp {
            acc -= *vals.get_unchecked(k) * *z.get_unchecked(*cols.get_unchecked(k));
        }
        *z.get_unchecked_mut(i) = acc;
    }

    /// One backward-sweep row (scalar), addressed by schedule position.
    ///
    /// # Safety
    /// Same invariants as [`Ilu0::apply_lanes`]; `q` must be a valid index
    /// into `bwd_order`.
    #[inline(always)]
    unsafe fn bwd_row_scalar(
        &self,
        q: usize,
        z: &mut [f64],
        row_ptr: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) {
        let i = *self.bwd_order.get_unchecked(q) as usize;
        let lo = *row_ptr.get_unchecked(i);
        let hi = *row_ptr.get_unchecked(i + 1);
        let dp = lo + *self.diag_pos.get_unchecked(i);
        let mut acc = *z.get_unchecked(i);
        for k in dp + 1..hi {
            acc -= *vals.get_unchecked(k) * *z.get_unchecked(*cols.get_unchecked(k));
        }
        *z.get_unchecked_mut(i) = acc / *vals.get_unchecked(dp);
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    #[target_feature(enable = "avx2")]
    unsafe fn apply_lanes_avx2(&self, r: &[f64], z: &mut [f64]) {
        self.apply_lanes(r, z)
    }

    /// Skewed-wavefront sweeps for a stencil-plan factorization. The
    /// triangular recurrences of a 5-point stencil couple each row to its
    /// west and north (forward) or east and south (backward) neighbors, so
    /// the natural sweep is one long latency chain per grid line. The
    /// wavefront runs blocks of up to four *lines* concurrently, skewed one
    /// column apart, which makes the four in-flight row updates mutually
    /// independent — the CPU overlaps their multiply/subtract(/divide)
    /// chains — while each neighbor value is carried in a register instead
    /// of re-loaded through `col_idx` gathers.
    ///
    /// Row order is a valid topological order of the triangular
    /// dependencies and every row evaluates the exact scalar per-row
    /// expression (ascending-column subtract order, final divide), so the
    /// result is bitwise identical to [`Ilu0::apply_scalar`] — same
    /// argument as the level-scheduled sweeps (see [`level_schedule`]).
    ///
    /// # Safety
    /// `plan` must be the verified [`StencilPlan`] of `self.lu`'s pattern;
    /// `r.len() == z.len() == w·h`.
    #[inline(always)]
    unsafe fn apply_wavefront(&self, plan: StencilPlan, r: &[f64], z: &mut [f64]) {
        let StencilPlan { w, h } = plan;
        let row_ptr = self.lu.row_ptr();
        let vals = self.lu.vals();
        // Forward solve L y = r (unit diagonal), y stored in z.
        // Line 0 rides as lane 0 of the first block (`TOP`: no north term),
        // so there is no serial boundary pass — every row is wavefronted.
        // Grids shorter than a full block (h = 3: the thinnest detectable
        // plan) run as one under-laned TOP block.
        let mut j0 = h.min(4);
        match j0 {
            3 => fwd_wave_block::<3, true>(0, w, row_ptr, vals, r, z),
            _ => fwd_wave_block::<4, true>(0, w, row_ptr, vals, r, z),
        }
        while j0 + 4 <= h {
            fwd_wave_block::<4, false>(j0, w, row_ptr, vals, r, z);
            j0 += 4;
        }
        match h - j0 {
            1 => fwd_wave_block::<1, false>(j0, w, row_ptr, vals, r, z),
            2 => fwd_wave_block::<2, false>(j0, w, row_ptr, vals, r, z),
            3 => fwd_wave_block::<3, false>(j0, w, row_ptr, vals, r, z),
            _ => {}
        }
        // Backward solve U z = y. Line h-1 rides as lane 0 of the first
        // block (`BOTTOM`: no south term), mirroring the forward solve.
        match h.min(4) {
            3 => bwd_wave_block::<3, true>(h - 1, w, row_ptr, vals, z),
            _ => bwd_wave_block::<4, true>(h - 1, w, row_ptr, vals, z),
        }
        let mut rem = h - h.min(4);
        while rem >= 4 {
            bwd_wave_block::<4, false>(rem - 1, w, row_ptr, vals, z);
            rem -= 4;
        }
        match rem {
            1 => bwd_wave_block::<1, false>(rem - 1, w, row_ptr, vals, z),
            2 => bwd_wave_block::<2, false>(rem - 1, w, row_ptr, vals, z),
            3 => bwd_wave_block::<3, false>(rem - 1, w, row_ptr, vals, z),
            _ => {}
        }
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    #[target_feature(enable = "avx2")]
    unsafe fn apply_wavefront_avx2(&self, plan: StencilPlan, r: &[f64], z: &mut [f64]) {
        self.apply_wavefront(plan, r, z)
    }

    /// Apply the factorization to `k` right-hand sides in SoA layout, lanes
    /// across members. Sweeps run in natural row order — any topological
    /// order gives bitwise-identical results (each row's arithmetic is
    /// unchanged; dependencies are honored) — and every stored entry is
    /// broadcast against the k contiguous member values, so the batched
    /// sweep vectorizes without the gather traffic of the single-RHS lane
    /// kernel. Bit-identical per member to [`Ilu0::apply_scalar`]. No work
    /// accounting: the batched solver charges per active member.
    pub fn apply_multi(&self, r: &MultiVec, z: &mut MultiVec) {
        let n = self.lu.n();
        assert_eq!(r.n(), n);
        assert_eq!(z.n(), n);
        assert_eq!(r.k(), z.k());
        let k = r.k();
        // SAFETY: Csr invariants as in `apply_scalar`; member blocks stay
        // within buffers of length `n * k`.
        match simd::backend() {
            #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
            Backend::Avx2 => unsafe {
                self.apply_multi_lanes_avx2(k, r.as_slice(), z.as_mut_slice())
            },
            Backend::Scalar => {
                let rs = r.as_slice();
                let zs = z.as_mut_slice();
                let row_ptr = self.lu.row_ptr();
                let cols = self.lu.col_indices();
                let vals = self.lu.vals();
                for j in 0..k {
                    for i in 0..n {
                        let lo = row_ptr[i];
                        let dp = lo + self.diag_pos[i];
                        let mut acc = rs[i * k + j];
                        for p in lo..dp {
                            acc -= vals[p] * zs[cols[p] * k + j];
                        }
                        zs[i * k + j] = acc;
                    }
                    for i in (0..n).rev() {
                        let lo = row_ptr[i];
                        let hi = row_ptr[i + 1];
                        let dp = lo + self.diag_pos[i];
                        let mut acc = zs[i * k + j];
                        for p in dp + 1..hi {
                            acc -= vals[p] * zs[cols[p] * k + j];
                        }
                        zs[i * k + j] = acc / vals[dp];
                    }
                }
            }
            _ => unsafe { self.apply_multi_lanes(k, r.as_slice(), z.as_mut_slice()) },
        }
    }

    /// SoA sweep body for [`Ilu0::apply_multi`].
    ///
    /// # Safety
    /// Csr invariants as in `apply_scalar`; `r.len() == z.len() == n * k`.
    #[inline(always)]
    unsafe fn apply_multi_lanes(&self, k: usize, r: &[f64], z: &mut [f64]) {
        let n = self.lu.n();
        let row_ptr = self.lu.row_ptr();
        let cols = self.lu.col_indices();
        let vals = self.lu.vals();
        // Forward solve L y = r (unit diagonal), y stored in z.
        for i in 0..n {
            let lo = *row_ptr.get_unchecked(i);
            let dp = lo + *self.diag_pos.get_unchecked(i);
            let mut jb = 0;
            while jb + LANES <= k {
                let mut acc = F64x4::load(r, i * k + jb);
                for p in lo..dp {
                    let a = F64x4::splat(*vals.get_unchecked(p));
                    let zz = F64x4::load(z, *cols.get_unchecked(p) * k + jb);
                    acc = acc.sub(a.mul(zz));
                }
                acc.store(z, i * k + jb);
                jb += LANES;
            }
            while jb < k {
                let mut acc = *r.get_unchecked(i * k + jb);
                for p in lo..dp {
                    acc -=
                        *vals.get_unchecked(p) * *z.get_unchecked(*cols.get_unchecked(p) * k + jb);
                }
                *z.get_unchecked_mut(i * k + jb) = acc;
                jb += 1;
            }
        }
        // Backward solve U z = y.
        for i in (0..n).rev() {
            let lo = *row_ptr.get_unchecked(i);
            let hi = *row_ptr.get_unchecked(i + 1);
            let dp = lo + *self.diag_pos.get_unchecked(i);
            let d = *vals.get_unchecked(dp);
            let mut jb = 0;
            while jb + LANES <= k {
                let mut acc = F64x4::load(z, i * k + jb);
                for p in dp + 1..hi {
                    let a = F64x4::splat(*vals.get_unchecked(p));
                    let zz = F64x4::load(z, *cols.get_unchecked(p) * k + jb);
                    acc = acc.sub(a.mul(zz));
                }
                acc.div(F64x4::splat(d)).store(z, i * k + jb);
                jb += LANES;
            }
            while jb < k {
                let mut acc = *z.get_unchecked(i * k + jb);
                for p in dp + 1..hi {
                    acc -=
                        *vals.get_unchecked(p) * *z.get_unchecked(*cols.get_unchecked(p) * k + jb);
                }
                *z.get_unchecked_mut(i * k + jb) = acc / d;
                jb += 1;
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    #[target_feature(enable = "avx2")]
    unsafe fn apply_multi_lanes_avx2(&self, k: usize, r: &[f64], z: &mut [f64]) {
        self.apply_multi_lanes(k, r, z)
    }
}

/// One forward wavefront block: lines `j0 .. j0+L`, lane `k` on line
/// `j0+k`, skewed so lane `k` sits one column behind lane `k-1`. At
/// wavefront step `t`, lane `k` updates column `t−k`; its west operand is
/// its own previous value (`carry[k]`) and its north operand is lane
/// `k−1`'s previous value (`carry[k−1]`, still unwritten at step `t`
/// because lanes run in descending `k`) — lane 0 reads the north line from
/// `z`, finalized by the previous block, except in the grid's first block
/// (`TOP`), where lane 0 is line 0 and has no north term at all. Per row:
/// north subtract before west subtract (ascending columns), exactly the
/// scalar sweep's operation sequence.
///
/// # Safety
/// The stencil plan must hold for lines `j0 ..= j0+L-1` (and `j0-1` when
/// not `TOP`) of the pattern behind `row_ptr`/`vals` (callers pass a
/// verified [`StencilPlan`]); `r.len() == z.len() == w·h` with
/// `j0+L <= h`; `TOP` iff `j0 == 0`.
#[inline(always)]
unsafe fn fwd_wave_block<const L: usize, const TOP: bool>(
    j0: usize,
    w: usize,
    row_ptr: &[usize],
    vals: &[f64],
    r: &[f64],
    z: &mut [f64],
) {
    let mut carry = [0.0f64; L];
    for t in 0..w + L - 1 {
        let mut k = L;
        while k > 0 {
            k -= 1;
            if t < k || t - k >= w {
                continue;
            }
            let c = t - k;
            let i = (j0 + k) * w + c;
            let base = *row_ptr.get_unchecked(i);
            let mut acc;
            if TOP && k == 0 {
                // Line 0: no north entry, so the west value (when present)
                // sits first in the row.
                acc = *r.get_unchecked(i);
                if c > 0 {
                    acc -= *vals.get_unchecked(base) * carry[0];
                }
            } else {
                let zup = if k == 0 {
                    *z.get_unchecked(i - w)
                } else {
                    carry[k - 1]
                };
                acc = *r.get_unchecked(i) - *vals.get_unchecked(base) * zup;
                if c > 0 {
                    acc -= *vals.get_unchecked(base + 1) * carry[k];
                }
            }
            *z.get_unchecked_mut(i) = acc;
            carry[k] = acc;
        }
    }
}

/// One backward wavefront block: lines `jtop, jtop-1, …`, lane `k` on line
/// `jtop−k`, columns walked east-to-west. The east operand is the lane's
/// own previous value, the south operand is lane `k−1`'s (lane 0 reads the
/// finalized south line from `z`, except in the grid's first block
/// (`BOTTOM`), where lane 0 is line h-1 and has no south term at all). Per
/// row: east subtract before south subtract (ascending columns), then the
/// diagonal divide — the scalar sweep's exact sequence.
///
/// Each step runs in two phases: numerators and diagonals for every active
/// lane first (all carry reads see step `t-1` values), then packed divides
/// — inactive lanes divide padding by 1.0 and are discarded. IEEE division
/// is per-lane correctly rounded, so each quotient is bit-identical to its
/// scalar divide; batching quadruples divider throughput, which is what
/// the backward recurrence is bound on.
///
/// # Safety
/// As [`fwd_wave_block`], for lines `jtop-L+1 ..= jtop` (and `jtop+1` when
/// not `BOTTOM`) with `L-1 <= jtop <= h-1`; `BOTTOM` iff `jtop == h-1`.
#[inline(always)]
unsafe fn bwd_wave_block<const L: usize, const BOTTOM: bool>(
    jtop: usize,
    w: usize,
    row_ptr: &[usize],
    vals: &[f64],
    z: &mut [f64],
) {
    let mut carry = [0.0f64; L];
    for t in 0..w + L - 1 {
        let mut acc = [0.0f64; L];
        let mut d = [1.0f64; L];
        for k in 0..L {
            if t < k || t - k >= w {
                continue;
            }
            let c = (w - 1) - (t - k);
            let i = (jtop - k) * w + c;
            let base = *row_ptr.get_unchecked(i);
            let dp = base + usize::from(jtop - k > 0) + usize::from(c > 0);
            let mut a = *z.get_unchecked(i);
            if BOTTOM && k == 0 {
                // Line h-1: no south entry; only the east term remains.
                if c + 1 < w {
                    a -= *vals.get_unchecked(dp + 1) * carry[0];
                }
            } else {
                let zdown = if k == 0 {
                    *z.get_unchecked(i + w)
                } else {
                    carry[k - 1]
                };
                let up_pos = if c + 1 < w {
                    a -= *vals.get_unchecked(dp + 1) * carry[k];
                    dp + 2
                } else {
                    dp + 1
                };
                a -= *vals.get_unchecked(up_pos) * zdown;
            }
            acc[k] = a;
            d[k] = *vals.get_unchecked(dp);
        }
        let mut out = [0.0f64; L];
        if L.is_multiple_of(4) {
            let mut b = 0;
            while b < L {
                let num = F64x4([acc[b], acc[b + 1], acc[b + 2], acc[b + 3]]);
                let den = F64x4([d[b], d[b + 1], d[b + 2], d[b + 3]]);
                out[b..b + 4].copy_from_slice(&num.div(den).0);
                b += 4;
            }
        } else {
            for k in 0..L {
                out[k] = acc[k] / d[k];
            }
        }
        for k in 0..L {
            if t < k || t - k >= w {
                continue;
            }
            let i = (jtop - k) * w + (w - 1) - (t - k);
            *z.get_unchecked_mut(i) = out[k];
            carry[k] = out[k];
        }
    }
}

impl Preconditioner for Ilu0 {
    /// Backend-dispatched sweeps, bit-identical to [`Ilu0::apply_scalar`]
    /// on every backend: stencil-plan factorizations take the skewed
    /// wavefront ([`Ilu0::apply_wavefront`]), everything else the
    /// lane-blocked level schedule — in both, per-row operation order is
    /// unchanged and only the scheduling across independent rows differs.
    fn apply(&self, r: &[f64], z: &mut [f64], work: &mut WorkCounter) {
        assert_eq!(r.len(), self.lu.n());
        assert_eq!(z.len(), self.lu.n());
        match simd::backend() {
            #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
            // SAFETY: backend() returned Avx2, so the CPU supports it; the
            // sweep invariants are documented on `apply_scalar`/`apply_lanes`,
            // and `self.plan` was verified against this pattern in `new`.
            Backend::Avx2 => unsafe {
                // Any detected stencil takes the wavefront: even at the
                // minimum line width (w = 3) it breaks the serial
                // west-neighbor chain across four lines, beating the
                // chain-bound scalar sweep (measured on the level-8
                // anisotropic family — see BENCH_solver.json).
                match self.plan {
                    Some(plan) => self.apply_wavefront_avx2(plan, r, z),
                    None => self.apply_lanes_avx2(r, z),
                }
            },
            Backend::Scalar => self.apply_scalar(r, z),
            // SAFETY: sweep invariants as documented on `apply_scalar`.
            _ => unsafe {
                match self.plan {
                    Some(plan) => self.apply_wavefront(plan, r, z),
                    None => self.apply_lanes(r, z),
                }
            },
        }
        work.add_precond_apply(self.lu.nnz());
    }
}

/// Why a solve failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// Scalar breakdown (`rho` or `omega` vanished) before convergence.
    Breakdown {
        /// Iterations completed before the breakdown.
        iterations: usize,
    },
    /// Iteration limit reached.
    MaxIterations {
        /// Relative residual at the limit.
        residual: f64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Breakdown { iterations } => {
                write!(f, "BiCGSTAB breakdown after {iterations} iterations")
            }
            SolveError::MaxIterations { residual } => {
                write!(f, "BiCGSTAB hit max iterations (residual {residual:.3e})")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Statistics of a successful solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveStats {
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Tier-dispatched dot product: strict sequential order on the exact tier
/// (bit-identical to `solver::reference`), the fixed stride-8 reassociated
/// pattern of [`crate::simd::dot_fast`] on the fast tier.
#[inline]
fn tier_dot(tier: Tier, a: &[f64], b: &[f64]) -> f64 {
    match tier {
        Tier::Exact => simd::dot_exact(a, b),
        Tier::Fast => simd::dot_fast(a, b),
    }
}

#[inline]
fn tier_norm2(tier: Tier, a: &[f64]) -> f64 {
    tier_dot(tier, a, a).sqrt()
}

/// Reusable scratch vectors for the Krylov solvers ([`bicgstab_with`] and
/// [`crate::gmres::gmres_with`]). Allocate one per integration (or per
/// subsolve) and thread it through every stage solve: after the first call
/// at a given size, subsequent solves perform zero heap allocations.
#[derive(Debug, Default)]
pub struct KrylovWorkspace {
    pub(crate) r: Vec<f64>,
    pub(crate) r_hat: Vec<f64>,
    pub(crate) v: Vec<f64>,
    pub(crate) p: Vec<f64>,
    pub(crate) p_hat: Vec<f64>,
    pub(crate) s: Vec<f64>,
    pub(crate) s_hat: Vec<f64>,
    pub(crate) t: Vec<f64>,
    /// GMRES Arnoldi basis vectors (grown on demand, reused across calls).
    pub(crate) basis: Vec<Vec<f64>>,
    /// GMRES Hessenberg columns, Givens factors, rotated rhs, solution.
    pub(crate) h: Vec<Vec<f64>>,
    pub(crate) cs: Vec<f64>,
    pub(crate) sn: Vec<f64>,
    pub(crate) g: Vec<f64>,
    pub(crate) y: Vec<f64>,
}

impl KrylovWorkspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the BiCGSTAB vectors for problems of dimension `n`.
    pub(crate) fn ensure(&mut self, n: usize) {
        for buf in [
            &mut self.r,
            &mut self.r_hat,
            &mut self.v,
            &mut self.p,
            &mut self.p_hat,
            &mut self.s,
            &mut self.s_hat,
            &mut self.t,
        ] {
            buf.resize(n, 0.0);
        }
    }
}

/// Preconditioned BiCGSTAB: solve `A x = b` in place (`x` holds the initial
/// guess on entry, the solution on success). Allocates its own scratch;
/// hot paths should use [`bicgstab_with`] and a reused [`KrylovWorkspace`].
pub fn bicgstab(
    a: &Csr,
    precond: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
    work: &mut WorkCounter,
) -> Result<SolveStats, SolveError> {
    let mut ws = KrylovWorkspace::new();
    bicgstab_with(a, precond, b, x, rel_tol, max_iters, &mut ws, work)
}

/// [`bicgstab`] on caller-owned scratch: zero heap allocations once the
/// workspace has been sized (first call at dimension `n`). Bit-identical to
/// the allocating entry point — same operations in the same order.
#[allow(clippy::too_many_arguments)] // a solver signature, mirrors gmres
pub fn bicgstab_with(
    a: &Csr,
    precond: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
    ws: &mut KrylovWorkspace,
    work: &mut WorkCounter,
) -> Result<SolveStats, SolveError> {
    bicgstab_tiered(a, precond, b, x, rel_tol, max_iters, Tier::Exact, ws, work)
}

/// [`bicgstab_with`] with an explicit numerical [`Tier`].
///
/// `Tier::Exact` is byte-for-byte the historical solver: every reduction in
/// strict sequential order. `Tier::Fast` reroutes the seven per-iteration
/// dot products/norms — the latency-bound scalar chains that dominate the
/// iteration once sweeps and matvec are vectorized — through the
/// reassociated [`crate::simd::dot_fast`] pattern; the elementwise updates
/// and sweeps are identical between the tiers. Fast-tier results carry a
/// measured error bound (see the tier tests and DESIGN.md), not bitwise
/// reproducibility against the reference oracle.
#[allow(clippy::too_many_arguments)] // a solver signature, mirrors gmres
pub fn bicgstab_tiered(
    a: &Csr,
    precond: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
    tier: Tier,
    ws: &mut KrylovWorkspace,
    work: &mut WorkCounter,
) -> Result<SolveStats, SolveError> {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let bnorm = tier_norm2(tier, b).max(1e-300);

    ws.ensure(n);
    let KrylovWorkspace {
        r,
        r_hat,
        v,
        p,
        p_hat,
        s,
        s_hat,
        t,
        ..
    } = ws;

    a.matvec_into(x, r);
    work.add_matvec(a.nnz());
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    r_hat.copy_from_slice(r);
    let mut rho = 1.0_f64;
    let mut alpha = 1.0_f64;
    let mut omega = 1.0_f64;
    v.fill(0.0);
    p.fill(0.0);

    let mut resid = tier_norm2(tier, r) / bnorm;
    if resid <= rel_tol {
        return Ok(SolveStats {
            iterations: 0,
            residual: resid,
        });
    }

    for it in 1..=max_iters {
        work.add_lin_iter();
        let rho_new = tier_dot(tier, r_hat, r);
        if rho_new.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it - 1 });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        simd::p_update(p, r, beta, omega, v);
        precond.apply(p, p_hat, work);
        a.matvec_into(p_hat, v);
        work.add_matvec(a.nnz());
        let rv = tier_dot(tier, r_hat, v);
        if rv.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        alpha = rho_new / rv;
        simd::s_update(s, r, alpha, v);
        if tier_norm2(tier, s) / bnorm <= rel_tol {
            simd::axpy(x, alpha, p_hat);
            work.add_vector_ops(n, 6);
            return Ok(SolveStats {
                iterations: it,
                residual: tier_norm2(tier, s) / bnorm,
            });
        }
        precond.apply(s, s_hat, work);
        a.matvec_into(s_hat, t);
        work.add_matvec(a.nnz());
        let tt = tier_dot(tier, t, t);
        if tt.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        omega = tier_dot(tier, t, s) / tt;
        if omega.abs() < 1e-300 {
            return Err(SolveError::Breakdown { iterations: it });
        }
        simd::x_update(x, alpha, p_hat, omega, s_hat);
        // r = s - omega * t: same expression shape as the s-update kernel.
        simd::s_update(r, s, omega, t);
        work.add_vector_ops(n, 10);
        resid = tier_norm2(tier, r) / bnorm;
        if resid <= rel_tol {
            return Ok(SolveStats {
                iterations: it,
                residual: resid,
            });
        }
        rho = rho_new;
    }
    Err(SolveError::MaxIterations { residual: resid })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;
    use crate::grid::Grid2;
    use crate::problem::Problem;

    fn laplacian_1d(n: usize) -> Csr {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Csr::from_triplets(n, &t)
    }

    /// A w×h 5-point-stencil matrix with row-distinct values (mirrors the
    /// sparse-module helper; here it drives the wavefront sweeps).
    fn stencil_matrix(w: usize, h: usize) -> Csr {
        let n = w * h;
        let mut t = Vec::new();
        for j in 0..h {
            for c in 0..w {
                let i = j * w + c;
                let f = i as f64;
                if j > 0 {
                    t.push((i, i - w, -1.0 - 0.01 * f));
                }
                if c > 0 {
                    t.push((i, i - 1, -0.5 - 0.002 * f));
                }
                t.push((i, i, 4.0 + 0.1 * f));
                if c + 1 < w {
                    t.push((i, i + 1, -0.6 + 0.003 * f));
                }
                if j + 1 < h {
                    t.push((i, i + w, -1.1 + 0.004 * f));
                }
            }
        }
        Csr::from_triplets(n, &t)
    }

    #[test]
    fn wavefront_apply_matches_scalar_bitwise_on_manual_stencils() {
        // h drives the line-block partition: h-1 wavefront lines split into
        // blocks of four plus a 1/2/3-line remainder — every remainder size
        // and the multi-block case are covered, as are w = 2 (no interior
        // columns) and wide lines with chunk remainders.
        for (w, h) in [
            (2, 2),
            (3, 3),
            (2, 6),
            (5, 4),
            (4, 5),
            (6, 6),
            (9, 7),
            (3, 9),
            (17, 5),
        ] {
            let a = stencil_matrix(w, h);
            assert_eq!(a.stencil_plan().is_some(), w >= 3 && h >= 3, "{w}x{h}");
            let mut wk = WorkCounter::new();
            let ilu = Ilu0::new(&a, &mut wk);
            let n = w * h;
            let r: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.17).sin() * 3.0 - 0.4)
                .collect();
            let mut z = vec![0.0; n];
            let mut z_scalar = vec![0.0; n];
            ilu.apply(&r, &mut z, &mut wk);
            ilu.apply_scalar(&r, &mut z_scalar);
            assert_eq!(z, z_scalar, "{w}x{h}");
        }
    }

    #[test]
    fn wavefront_apply_matches_scalar_bitwise_on_assembled_grids() {
        // The production path: assembled advection-diffusion stage matrices,
        // including the strongly anisotropic shapes. Non-stencil shapes (if
        // a grid degenerates below the plan's minimum) still must agree —
        // they take the lane-blocked path instead.
        let p = Problem::transport_benchmark();
        let mut planned = 0;
        for (lx, ly) in [(1, 1), (2, 2), (0, 4), (4, 0), (1, 3), (3, 1), (2, 3)] {
            let g = Grid2::new(2, lx, ly);
            let mut wk = WorkCounter::new();
            let d = assemble(&g, &p, &mut wk);
            let m = d.a.identity_minus_scaled(0.013);
            if m.stencil_plan().is_some() {
                planned += 1;
            }
            let ilu = Ilu0::new(&m, &mut wk);
            let r: Vec<f64> = (0..m.n()).map(|i| ((i % 23) as f64) * 0.11 - 1.0).collect();
            let mut z = vec![0.0; m.n()];
            let mut z_scalar = vec![0.0; m.n()];
            ilu.apply(&r, &mut z, &mut wk);
            ilu.apply_scalar(&r, &mut z_scalar);
            assert_eq!(z, z_scalar, "({lx},{ly})");
        }
        assert!(planned >= 4, "only {planned} grids had a stencil plan");
    }

    #[test]
    fn ilu0_of_triangular_matrix_is_exact() {
        // For a lower or upper triangular matrix, ILU(0) = exact LU, so the
        // preconditioner solves exactly.
        let a = Csr::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, -1.0),
                (2, 2, 4.0),
            ],
        );
        let mut w = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut w);
        let b = [2.0, 8.0, 3.0];
        let mut z = vec![0.0; 3];
        ilu.apply(&b, &mut z, &mut w);
        let az = a.matvec(&z);
        for (ai, bi) in az.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12, "{az:?} vs {b:?}");
        }
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // Tridiagonal matrices incur no fill, so ILU(0) == LU.
        let a = laplacian_1d(10);
        let mut w = WorkCounter::new();
        let ilu = Ilu0::new(&a, &mut w);
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin() + 1.0).collect();
        let mut z = vec![0.0; 10];
        ilu.apply(&b, &mut z, &mut w);
        let az = a.matvec(&z);
        for (ai, bi) in az.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn bicgstab_solves_identity_instantly() {
        let a = Csr::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut x = vec![0.0; 4];
        let mut w = WorkCounter::new();
        let stats = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-12, 10, &mut w).unwrap();
        assert!(stats.iterations <= 1);
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn bicgstab_solves_spd_system() {
        let a = laplacian_1d(50);
        let x_true: Vec<f64> = (0..50).map(|i| (0.3 * i as f64).cos()).collect();
        let b = a.matvec(&x_true);
        let mut x = vec![0.0; 50];
        let mut w = WorkCounter::new();
        let stats = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-10, 500, &mut w).unwrap();
        assert!(stats.residual <= 1e-10);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn ilu_precondition_cuts_iterations() {
        // 2D advection-diffusion operator: nonsymmetric, modest size.
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 2, 2); // 16x16 → 225 unknowns
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(0.01);
        let x_true: Vec<f64> = (0..m.n()).map(|i| ((i % 17) as f64) / 17.0).collect();
        let b = m.matvec(&x_true);

        let mut x1 = vec![0.0; m.n()];
        let plain = bicgstab(&m, &IdentityPrecond, &b, &mut x1, 1e-10, 2000, &mut w).unwrap();

        let ilu = Ilu0::new(&m, &mut w);
        let mut x2 = vec![0.0; m.n()];
        let pre = bicgstab(&m, &ilu, &b, &mut x2, 1e-10, 2000, &mut w).unwrap();

        assert!(
            pre.iterations < plain.iterations,
            "ILU ({}) should beat plain ({})",
            pre.iterations,
            plain.iterations
        );
        for (xi, ti) in x2.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        // Refactoring in place from a same-pattern matrix must produce the
        // same factors (bitwise) as a fresh Ilu0::new.
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 1, 2);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m1 = d.a.identity_minus_scaled(0.01);
        let m2 = d.a.identity_minus_scaled(0.037);

        let mut reused = Ilu0::new(&m1, &mut w);
        reused.refactor(&m2, &mut w);
        let fresh = Ilu0::new(&m2, &mut w);

        let r: Vec<f64> = (0..m2.n()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut z1 = vec![0.0; m2.n()];
        let mut z2 = vec![0.0; m2.n()];
        reused.apply(&r, &mut z1, &mut w);
        fresh.apply(&r, &mut z2, &mut w);
        assert_eq!(z1, z2, "refactor must be bit-identical to new");
        assert_eq!(w.refactorizations, 1);
    }

    #[test]
    fn workspace_bicgstab_matches_allocating_entry_point() {
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 2, 1);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(0.02);
        let ilu = Ilu0::new(&m, &mut w);
        let b: Vec<f64> = (0..m.n()).map(|i| ((i % 11) as f64) / 11.0).collect();

        let mut x1 = vec![0.0; m.n()];
        let s1 = bicgstab(&m, &ilu, &b, &mut x1, 1e-10, 500, &mut w).unwrap();
        let mut ws = KrylovWorkspace::new();
        let mut x2 = vec![0.0; m.n()];
        // Two calls on the same workspace: the second must not be polluted
        // by the first.
        bicgstab_with(&m, &ilu, &b, &mut x2, 1e-10, 500, &mut ws, &mut w).unwrap();
        let mut x3 = vec![0.0; m.n()];
        let s3 = bicgstab_with(&m, &ilu, &b, &mut x3, 1e-10, 500, &mut ws, &mut w).unwrap();
        assert_eq!(x1, x2);
        assert_eq!(x1, x3);
        assert_eq!(s1.iterations, s3.iterations);
    }

    #[test]
    fn jacobi_preconditioner_scales_by_diagonal() {
        let a = Csr::from_triplets(2, &[(0, 0, 2.0), (1, 1, 4.0)]);
        let j = JacobiPrecond::new(&a);
        let mut z = vec![0.0; 2];
        let mut w = WorkCounter::new();
        j.apply(&[2.0, 4.0], &mut z, &mut w);
        assert_eq!(z, vec![1.0, 1.0]);
    }

    #[test]
    fn max_iterations_error() {
        let a = laplacian_1d(100);
        let b = vec![1.0; 100];
        let mut x = vec![0.0; 100];
        let mut w = WorkCounter::new();
        let err = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-14, 2, &mut w).unwrap_err();
        assert!(matches!(err, SolveError::MaxIterations { .. }));
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_1d(10);
        let b = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let mut w = WorkCounter::new();
        let stats = bicgstab(&a, &IdentityPrecond, &b, &mut x, 1e-10, 10, &mut w).unwrap();
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn rosenbrock_matrix_is_well_conditioned_for_small_dt() {
        // I - γ dt A with small dt should need very few iterations.
        let p = Problem::transport_benchmark();
        let g = Grid2::new(2, 1, 1);
        let mut w = WorkCounter::new();
        let d = assemble(&g, &p, &mut w);
        let m = d.a.identity_minus_scaled(1e-4);
        let ilu = Ilu0::new(&m, &mut w);
        let b = vec![1.0; m.n()];
        let mut x = vec![0.0; m.n()];
        let stats = bicgstab(&m, &ilu, &b, &mut x, 1e-10, 100, &mut w).unwrap();
        assert!(stats.iterations <= 5, "took {}", stats.iterations);
    }
}
