//! # solver — sparse-grid advection-diffusion application
//!
//! A from-scratch Rust reimplementation of the sequential ANSI C program the
//! paper renovates: a time-dependent advection-diffusion problem
//!
//! ```text
//! u_t + a·u_x + b·u_y = ε (u_xx + u_yy) + s(x, y, t)
//! ```
//!
//! on the unit square, solved with the **sparse-grid combination
//! technique**: instead of one fine isotropic grid, the problem is solved on
//! a family of cheap anisotropic grids `(l, m)` and the coarse solutions are
//! *prolongated* and *combined* on the finest grid. The time integrator is a
//! two-stage **Rosenbrock** method (ROS2) with an adaptive step controlled
//! by the tolerance the paper calls `le_tol`; each step requires assembling
//! and solving sparse linear systems, which is why `subsolve` dominates the
//! run time and is the natural "cut" line for the renovation.
//!
//! Crate layout (one module per subsystem of the original program):
//!
//! * [`grid`] — anisotropic tensor grids `(l, m)` over the unit square;
//! * [`problem`] — problem definitions with exact solutions for testing;
//! * [`sparse`] — CSR sparse matrices;
//! * [`assemble`] — finite-difference discretization (hybrid
//!   central/upwind advection, central diffusion, Dirichlet boundaries);
//! * [`linsolve`] — ILU(0)-preconditioned BiCGSTAB (plus helpers);
//! * [`rosenbrock`] — the adaptive ROS2 integrator (zero-allocation hot
//!   path after workspace warm-up);
//! * [`reference`] — the retained pre-optimization solver path, kept as a
//!   bit-identity oracle for the optimized hot loop;
//! * [`mod subsolve`](mod@crate::subsolve) — the per-grid solve, the unit of work delegated to
//!   workers in the renovated application;
//! * [`combine`] — bilinear prolongation and the combination formula;
//! * [`sequential`] — the whole sequential program (`SeqSourceCode.c`);
//! * [`work`] — work (flop) accounting used to calibrate the cluster
//!   simulator's cost model.

pub mod assemble;
pub mod batch;
pub mod combine;
pub mod gmres;
pub mod grid;
pub mod linsolve;
pub mod problem;
pub mod reference;
pub mod restrict;
pub mod rosenbrock;
pub mod sequential;
pub mod simd;
pub mod sparse;
pub mod study;
pub mod subsolve;
pub mod theta;
pub mod work;

pub use batch::{integrate_batch, subsolve_batch, subsolve_batch_tiered, BatchWorkspace};
pub use grid::{Grid2, GridIndex};
pub use problem::Problem;
pub use sequential::{SequentialApp, SequentialResult};
pub use simd::Tier;
pub use subsolve::{subsolve, subsolve_tiered, subsolve_with, SubsolveRequest, SubsolveResult};
pub use work::WorkCounter;

/// Discrete L2 norm of a vector (RMS): `sqrt(Σ v_i² / n)`.
pub fn l2_norm(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt()
}

/// Maximum (infinity) norm.
pub fn linf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(l2_norm(&[]), 0.0);
        assert!((l2_norm(&[3.0, 4.0]) - (12.5_f64).sqrt()).abs() < 1e-14);
        assert_eq!(linf_norm(&[1.0, -5.0, 2.0]), 5.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }
}
