//! Explicit-width SIMD lanes for the solver hot path.
//!
//! Everything here follows one discipline, inherited from the PR-3 rule that
//! the optimized path must stay bit-identical to [`crate::reference`]:
//!
//! * **Lanewise kernels** (axpy-style elementwise updates, lane-per-row
//!   sweeps and matvecs) evaluate *exactly the same expression tree per
//!   element* as the scalar code — lanes never interact — so they are
//!   bit-identical to scalar by construction and safe on the default tier.
//! * **Reassociating reductions** ([`dot_fast`], [`norm2_fast`]) change the
//!   summation order (a fixed stride-8, two-register accumulation pattern)
//!   and therefore live behind the opt-in [`Tier::Fast`]; the error is
//!   bounded and measured by tests, and the pattern is *deterministic* —
//!   the AVX2 and portable instantiations produce the same bits, only the
//!   exact tier differs from them.
//!
//! Dispatch is resolved once at startup ([`backend`]): on `x86_64` with AVX2
//! detected at runtime the kernels run as `#[target_feature(enable =
//! "avx2")]` instantiations of the same portable [`F64x4`] bodies (plus a
//! hand-written `core::arch` path for the reductions); otherwise the
//! portable bodies run under the baseline ISA. Building the crate with the
//! `force-scalar` feature pins plain scalar loops everywhere, which is the
//! baseline CI keeps green and the denominator the benches report against.

use std::sync::OnceLock;

/// Lane width of the explicit vector type. All blocked kernels consume
/// elements in chunks of this many `f64`s with a scalar remainder loop.
pub const LANES: usize = 4;

/// Numerical tier for the Krylov solver's reductions.
///
/// `Exact` (the default) keeps every dot product and norm in strict
/// left-to-right order — bit-identical to `solver::reference`. `Fast`
/// reassociates reductions into the fixed stride-8 pattern implemented in
/// this module; everything *else* (sweeps, matvecs, elementwise updates)
/// is identical between the tiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Tier {
    #[default]
    Exact,
    Fast,
}

impl Tier {
    /// Parse a CLI-style tier name.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "exact" => Some(Tier::Exact),
            "fast" => Some(Tier::Fast),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::Fast => "fast",
        }
    }
}

/// Which instantiation of the kernels this process runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// `#[target_feature(enable = "avx2")]` instantiations (x86_64, detected
    /// at startup).
    Avx2,
    /// Portable [`F64x4`] bodies compiled for the baseline target ISA.
    Portable,
    /// Plain scalar loops (the `force-scalar` build).
    Scalar,
}

impl Backend {
    pub fn name(self) -> &'static str {
        match self {
            Backend::Avx2 => "avx2",
            Backend::Portable => "portable",
            Backend::Scalar => "scalar",
        }
    }
}

/// The process-wide kernel backend, detected once on first use.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(detect)
}

#[cfg(feature = "force-scalar")]
fn detect() -> Backend {
    Backend::Scalar
}

#[cfg(not(feature = "force-scalar"))]
fn detect() -> Backend {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Backend::Avx2;
    }
    Backend::Portable
}

/// Four `f64` lanes. Operations are plain per-lane IEEE ops (no FMA, no
/// reassociation), so a lane computes exactly what the scalar code computes
/// for the same element. LLVM lowers this to `ymm` arithmetic inside the
/// AVX2-instantiated kernels and to the baseline vector ISA elsewhere.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(32))]
pub struct F64x4(pub [f64; 4]);

// The named lane-wise ops deliberately shadow the operator names: kernel
// code spells arithmetic as explicit method chains (`a.mul(x).add(y)`) so
// the unfused, per-lane evaluation order the bit-identity contract relies
// on stays visible at every call site.
#[allow(clippy::should_implement_trait)]
impl F64x4 {
    #[inline(always)]
    pub fn splat(v: f64) -> F64x4 {
        F64x4([v; 4])
    }

    #[inline(always)]
    pub fn zero() -> F64x4 {
        F64x4([0.0; 4])
    }

    /// Load four consecutive elements starting at `s[i]`.
    ///
    /// # Safety
    /// `i + 4 <= s.len()`.
    #[inline(always)]
    pub unsafe fn load(s: &[f64], i: usize) -> F64x4 {
        debug_assert!(i + 4 <= s.len());
        F64x4([
            *s.get_unchecked(i),
            *s.get_unchecked(i + 1),
            *s.get_unchecked(i + 2),
            *s.get_unchecked(i + 3),
        ])
    }

    /// Store the four lanes to consecutive elements starting at `s[i]`.
    ///
    /// # Safety
    /// `i + 4 <= s.len()`.
    #[inline(always)]
    pub unsafe fn store(self, s: &mut [f64], i: usize) {
        debug_assert!(i + 4 <= s.len());
        *s.get_unchecked_mut(i) = self.0[0];
        *s.get_unchecked_mut(i + 1) = self.0[1];
        *s.get_unchecked_mut(i + 2) = self.0[2];
        *s.get_unchecked_mut(i + 3) = self.0[3];
    }

    #[inline(always)]
    pub fn add(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }

    #[inline(always)]
    pub fn sub(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] - o.0[0],
            self.0[1] - o.0[1],
            self.0[2] - o.0[2],
            self.0[3] - o.0[3],
        ])
    }

    #[inline(always)]
    pub fn mul(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] * o.0[0],
            self.0[1] * o.0[1],
            self.0[2] * o.0[2],
            self.0[3] * o.0[3],
        ])
    }

    #[inline(always)]
    pub fn div(self, o: F64x4) -> F64x4 {
        F64x4([
            self.0[0] / o.0[0],
            self.0[1] / o.0[1],
            self.0[2] / o.0[2],
            self.0[3] / o.0[3],
        ])
    }

    #[inline(always)]
    pub fn abs(self) -> F64x4 {
        F64x4([
            self.0[0].abs(),
            self.0[1].abs(),
            self.0[2].abs(),
            self.0[3].abs(),
        ])
    }
}

// ---------------------------------------------------------------------------
// Exact-tier reductions (strict left-to-right order, same as reference).
// ---------------------------------------------------------------------------

/// Sequential dot product — the exact-tier reduction, bit-identical to the
/// reference solver's.
#[inline]
pub fn dot_exact(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sequential 2-norm (exact tier).
#[inline]
pub fn norm2_exact(a: &[f64]) -> f64 {
    dot_exact(a, a).sqrt()
}

// ---------------------------------------------------------------------------
// Fast-tier reductions: fixed stride-8, two-register accumulation.
//
// Scalar dot products are *latency*-bound: one dependent add every ~4
// cycles, and strict IEEE semantics forbid the compiler from breaking the
// chain. BiCGSTAB performs seven reductions per iteration, which makes this
// the single hottest scalar pattern left after PR 3. The fast tier keeps
// eight partial sums in flight (two F64x4 registers), which hides the add
// latency and vectorizes; the final combine order is fixed:
//
//   acc = acc0 + acc1 (lanewise);  h = (acc[0]+acc[1]) + (acc[2]+acc[3]);
//   h += tail elements in order.
//
// Because that pattern is fixed, the AVX2 and portable instantiations give
// identical bits — only the *exact* tier differs from the fast tier.
// ---------------------------------------------------------------------------

macro_rules! fast_reduce_body {
    ($a:ident, $b:ident) => {{
        debug_assert_eq!($a.len(), $b.len());
        let n = $a.len();
        let mut acc0 = F64x4::zero();
        let mut acc1 = F64x4::zero();
        let mut i = 0;
        // SAFETY: i + 8 <= n inside the loop.
        unsafe {
            while i + 8 <= n {
                acc0 = acc0.add(F64x4::load($a, i).mul(F64x4::load($b, i)));
                acc1 = acc1.add(F64x4::load($a, i + 4).mul(F64x4::load($b, i + 4)));
                i += 8;
            }
        }
        let acc = acc0.add(acc1);
        let mut h = (acc.0[0] + acc.0[1]) + (acc.0[2] + acc.0[3]);
        while i < n {
            h += $a[i] * $b[i];
            i += 1;
        }
        h
    }};
}

#[inline]
fn dot_fast_portable(a: &[f64], b: &[f64]) -> f64 {
    fast_reduce_body!(a, b)
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
#[target_feature(enable = "avx2")]
unsafe fn dot_fast_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let x0 = _mm256_loadu_pd(pa.add(i));
        let y0 = _mm256_loadu_pd(pb.add(i));
        let x1 = _mm256_loadu_pd(pa.add(i + 4));
        let y1 = _mm256_loadu_pd(pb.add(i + 4));
        // mul + add, not FMA: keeps the bits identical to the portable body.
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(x0, y0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(x1, y1));
        i += 8;
    }
    let acc = _mm256_add_pd(acc0, acc1);
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut h = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    while i < n {
        h += *pa.add(i) * *pb.add(i);
        i += 1;
    }
    h
}

/// Fast-tier dot product: reassociated (stride-8, two registers), backend
/// dispatched. Deterministic for a given input regardless of backend.
#[inline]
pub fn dot_fast(a: &[f64], b: &[f64]) -> f64 {
    match backend() {
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        Backend::Avx2 => unsafe { dot_fast_avx2(a, b) },
        _ => dot_fast_portable(a, b),
    }
}

/// Fast-tier 2-norm.
#[inline]
pub fn norm2_fast(a: &[f64]) -> f64 {
    dot_fast(a, a).sqrt()
}

// ---------------------------------------------------------------------------
// Lanewise elementwise kernels (exact on every tier).
//
// Each kernel's per-element expression tree is written once in a portable
// body; `dispatch_lanes!` instantiates it a second time under
// `#[target_feature(enable = "avx2")]` so the hot builds use ymm registers
// without a separate source body to keep in sync. Under `force-scalar` the
// scalar loop below each body is used instead.
// ---------------------------------------------------------------------------

macro_rules! dispatch_lanes {
    ($pub_name:ident, $portable:ident, $avx2:ident, ($($arg:ident : $ty:ty),*)) => {
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) {
            $portable($($arg),*)
        }

        #[inline]
        pub fn $pub_name($($arg: $ty),*) {
            match backend() {
                #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
                Backend::Avx2 => unsafe { $avx2($($arg),*) },
                _ => $portable($($arg),*),
            }
        }
    };
}

/// `y[i] += a * x[i]` — same op order per element as the scalar loop.
#[inline(always)]
fn axpy_portable(y: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let av = F64x4::splat(a);
    let mut i = 0;
    // SAFETY: i + 4 <= n inside the loop.
    unsafe {
        while i + 4 <= n {
            let yy = F64x4::load(y, i).add(av.mul(F64x4::load(x, i)));
            yy.store(y, i);
            i += 4;
        }
    }
    while i < n {
        y[i] += a * x[i];
        i += 1;
    }
}

dispatch_lanes!(axpy, axpy_portable, axpy_avx2, (y: &mut [f64], a: f64, x: &[f64]));

/// BiCGSTAB search-direction update: `p[i] = r[i] + beta * (p[i] - omega * v[i])`.
#[inline(always)]
fn p_update_portable(p: &mut [f64], r: &[f64], beta: f64, omega: f64, v: &[f64]) {
    debug_assert!(p.len() == r.len() && p.len() == v.len());
    let n = p.len();
    let (bv, ov) = (F64x4::splat(beta), F64x4::splat(omega));
    let mut i = 0;
    // SAFETY: i + 4 <= n inside the loop.
    unsafe {
        while i + 4 <= n {
            let pp =
                F64x4::load(r, i).add(bv.mul(F64x4::load(p, i).sub(ov.mul(F64x4::load(v, i)))));
            pp.store(p, i);
            i += 4;
        }
    }
    while i < n {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
        i += 1;
    }
}

dispatch_lanes!(
    p_update,
    p_update_portable,
    p_update_avx2,
    (p: &mut [f64], r: &[f64], beta: f64, omega: f64, v: &[f64])
);

/// `s[i] = r[i] - alpha * v[i]`.
#[inline(always)]
fn s_update_portable(s: &mut [f64], r: &[f64], alpha: f64, v: &[f64]) {
    debug_assert!(s.len() == r.len() && s.len() == v.len());
    let n = s.len();
    let av = F64x4::splat(alpha);
    let mut i = 0;
    // SAFETY: i + 4 <= n inside the loop.
    unsafe {
        while i + 4 <= n {
            F64x4::load(r, i).sub(av.mul(F64x4::load(v, i))).store(s, i);
            i += 4;
        }
    }
    while i < n {
        s[i] = r[i] - alpha * v[i];
        i += 1;
    }
}

dispatch_lanes!(
    s_update,
    s_update_portable,
    s_update_avx2,
    (s: &mut [f64], r: &[f64], alpha: f64, v: &[f64])
);

/// `x[i] += alpha * p[i] + omega * s[i]`.
#[inline(always)]
fn x_update_portable(x: &mut [f64], alpha: f64, p: &[f64], omega: f64, s: &[f64]) {
    debug_assert!(x.len() == p.len() && x.len() == s.len());
    let n = x.len();
    let (av, ov) = (F64x4::splat(alpha), F64x4::splat(omega));
    let mut i = 0;
    // SAFETY: i + 4 <= n inside the loop.
    unsafe {
        while i + 4 <= n {
            let xx =
                F64x4::load(x, i).add(av.mul(F64x4::load(p, i)).add(ov.mul(F64x4::load(s, i))));
            xx.store(x, i);
            i += 4;
        }
    }
    while i < n {
        x[i] += alpha * p[i] + omega * s[i];
        i += 1;
    }
}

dispatch_lanes!(
    x_update,
    x_update_portable,
    x_update_avx2,
    (x: &mut [f64], alpha: f64, p: &[f64], omega: f64, s: &[f64])
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_is_detected_once() {
        assert_eq!(backend(), backend());
        #[cfg(feature = "force-scalar")]
        assert_eq!(backend(), Backend::Scalar);
        #[cfg(not(feature = "force-scalar"))]
        assert_ne!(backend(), Backend::Scalar);
    }

    #[test]
    fn tier_parse_roundtrip() {
        assert_eq!(Tier::parse("exact"), Some(Tier::Exact));
        assert_eq!(Tier::parse("fast"), Some(Tier::Fast));
        assert_eq!(Tier::parse("FAST"), None);
        assert_eq!(Tier::default(), Tier::Exact);
        assert_eq!(Tier::Fast.name(), "fast");
    }

    #[test]
    fn elementwise_kernels_match_scalar_bitwise() {
        // Odd length exercises the remainder loop; values with different
        // exponents make reassociation visible if it ever sneaks in.
        let n = 37;
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.7).sin() * 1e3_f64.powi((i % 5) as i32 - 2))
            .collect();
        let v: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 1.3).cos() + 0.01 * i as f64)
            .collect();
        let r: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let (a, beta, omega) = (1.625, -0.3125, 0.78125);

        let mut y1 = x.clone();
        let mut y2 = x.clone();
        axpy(&mut y1, a, &v);
        for i in 0..n {
            y2[i] += a * v[i];
        }
        assert_eq!(y1, y2);

        let mut p1 = x.clone();
        let mut p2 = x.clone();
        p_update(&mut p1, &r, beta, omega, &v);
        for i in 0..n {
            p2[i] = r[i] + beta * (p2[i] - omega * v[i]);
        }
        assert_eq!(p1, p2);

        let mut s1 = vec![0.0; n];
        let mut s2 = vec![0.0; n];
        s_update(&mut s1, &r, a, &v);
        for i in 0..n {
            s2[i] = r[i] - a * v[i];
        }
        assert_eq!(s1, s2);

        let mut x1 = x.clone();
        let mut x2 = x.clone();
        x_update(&mut x1, a, &r, omega, &v);
        for i in 0..n {
            x2[i] += a * r[i] + omega * v[i];
        }
        assert_eq!(x1, x2);
    }

    #[test]
    fn fast_dot_matches_portable_pattern_and_bounds_error() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 63, 64, 65, 1000] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
            let fast = dot_fast(&a, &b);
            // The dispatched result must equal the portable fixed pattern
            // bitwise (backend-independence of the fast tier).
            assert_eq!(fast.to_bits(), dot_fast_portable(&a, &b).to_bits());
            let exact = dot_exact(&a, &b);
            let mag: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let bound = (n as f64) * f64::EPSILON * mag + f64::MIN_POSITIVE;
            assert!(
                (fast - exact).abs() <= bound,
                "n={n}: |{fast} - {exact}| > {bound}"
            );
        }
    }
}
