//! The `Strategy` trait, combinators, and primitive strategies.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply produces a value from an RNG.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred` (regenerating instead).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Build recursive structures: `f` maps a strategy for smaller
    /// instances to a strategy for larger ones, applied up to `depth`
    /// times. `desired_size` and `expected_branch_size` are accepted for
    /// API parity; termination here is guaranteed by the bounded depth.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            // Mix the base back in at every level so generated trees
            // thin out toward the leaves.
            let smaller = Union::new(vec![base.clone(), current]).boxed();
            current = f(smaller).boxed();
        }
        Union::new(vec![base, current]).boxed()
    }

    /// Type-erase this strategy behind an `Arc`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cheaply cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.arms.len());
        self.arms[idx].generate(rng)
    }
}

// ------------------------------------------------------------ primitives

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.i64_in(self.start as i64, self.end as i64) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.f64_in(self.start as f64, self.end as f64) as f32
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.f64_in(-300.0, 300.0);
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * rng.unit_f64() * 10f64.powf(mag / 30.0)
    }
}

/// Strategy for [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary + 'static>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary + 'static> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// --------------------------------------------------- string patterns

/// One quantified character class of a pattern.
struct Segment {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the character-class subset of regex the tests use.
fn parse_pattern(pattern: &str) -> Vec<Segment> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut segments = Vec::new();
    while i < chars.len() {
        let set = if chars[i] == '[' {
            let (set, next) = parse_class(&chars, i + 1);
            i = next;
            set
        } else {
            // Literal (possibly escaped) character.
            let c = if chars[i] == '\\' {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n: usize = body.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        segments.push(Segment {
            chars: set,
            min,
            max,
        });
    }
    segments
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parse a `[...]` class starting just after the `[`. Returns the
/// character set and the index just past the closing `]`. Supports
/// negation (`[^…]`, complemented over printable ASCII + newline) and
/// class intersection (`&&[…]`, used for subtraction as `&&[^…]`).
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let negated = chars[i] == '^';
    if negated {
        i += 1;
    }
    let mut set: Vec<char> = Vec::new();
    let mut intersect: Option<Vec<char>> = None;
    while chars[i] != ']' {
        if chars[i] == '&' && chars.get(i + 1) == Some(&'&') {
            assert_eq!(chars[i + 2], '[', "&& must be followed by a class");
            let (sub, next) = parse_class(chars, i + 3);
            intersect = Some(sub);
            i = next;
            continue;
        }
        let (c, consumed_escape) = if chars[i] == '\\' {
            (unescape(chars[i + 1]), true)
        } else {
            (chars[i], false)
        };
        i += if consumed_escape { 2 } else { 1 };
        // Range `a-z`? Only when the dash and upper bound are unescaped
        // and the dash is not the class terminator.
        if !consumed_escape && chars[i] == '-' && chars.get(i + 1).is_some_and(|&n| n != ']') {
            let hi = if chars[i + 1] == '\\' {
                i += 1;
                unescape(chars[i + 1])
            } else {
                chars[i + 1]
            };
            i += 2;
            for code in c as u32..=hi as u32 {
                if let Some(ch) = char::from_u32(code) {
                    set.push(ch);
                }
            }
        } else {
            set.push(c);
        }
    }
    i += 1; // consume ']'
    if negated {
        let complement: Vec<char> = (0x20u32..=0x7e)
            .filter_map(char::from_u32)
            .chain(std::iter::once('\n'))
            .filter(|c| !set.contains(c))
            .collect();
        set = complement;
    }
    if let Some(other) = intersect {
        set.retain(|c| other.contains(c));
    }
    (set, i)
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per call keeps the type stateless; patterns are tiny.
        let segments = parse_pattern(self);
        let mut out = String::new();
        for seg in &segments {
            let count = rng.usize_in(seg.min, seg.max + 1);
            for _ in 0..count {
                out.push(seg.chars[rng.usize_in(0, seg.chars.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------- macros

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assertion inside `proptest!` bodies (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        let s = (0usize..5, -2.0..2.0f64);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut r);
            assert!(a < 5);
            assert!((-2.0..2.0).contains(&b));
        }
    }

    #[test]
    fn map_filter_union() {
        let mut r = rng();
        let s = crate::prop_oneof![(0i64..10).prop_map(|x| x * 2), Just(99i64),]
            .prop_filter("nonzero", |&x| x != 0);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(v == 99 || (v % 2 == 0 && v != 0 && v < 20));
        }
    }

    #[test]
    fn string_patterns() {
        let mut r = rng();
        let ident = "[a-z][a-z0-9_]{0,6}";
        for _ in 0..200 {
            let s = ident.generate(&mut r);
            assert!((1..=7).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
        let printable = "[ -~&&[^\"\\\\{}]]{0,12}";
        for _ in 0..200 {
            let s = printable.generate(&mut r);
            assert!(s.len() <= 12);
            for c in s.chars() {
                assert!((' '..='~').contains(&c));
                assert!(!"\"\\{}".contains(c), "{s:?}");
            }
        }
        let with_newline = "[ -~\\n]{0,20}";
        for _ in 0..100 {
            let s = with_newline.generate(&mut r);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v));
                    1
                }
                Tree::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut r)) <= 7);
        }
    }

    #[test]
    fn vec_and_option() {
        let mut r = rng();
        let s = crate::collection::vec(crate::option::of(0u8..4), 2..6);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..6).contains(&v.len()));
            for o in v {
                match o {
                    None => saw_none = true,
                    Some(x) => {
                        saw_some = true;
                        assert!(x < 4);
                    }
                }
            }
        }
        assert!(saw_none && saw_some);
    }
}
