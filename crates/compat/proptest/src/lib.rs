//! Offline stand-in for `proptest` (API subset).
//!
//! The vendored registry is unreachable in this build environment, so the
//! workspace ships a minimal re-implementation of the `proptest` surface
//! its tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_recursive`, range / tuple / vec / option /
//! string-pattern strategies, `prop_oneof!`, `Just`, `any`, and the
//! `proptest!` test macro.
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking: a failing case panics with the generated inputs'
//!   `Debug` representation instead of a minimized one;
//! - string strategies implement only the character-class subset of
//!   regex syntax that the in-tree tests use (`[a-z]`, ranges, escapes,
//!   `&&[^…]` class subtraction, `{m,n}` quantifiers);
//! - generation is deterministic per test name and case index, so runs
//!   are reproducible without a persistence file.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: an exact size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy + 'static> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or `Some(inner)`, roughly evenly.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy + 'static> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports, mirroring upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}
