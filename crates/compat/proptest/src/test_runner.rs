//! Deterministic RNG and per-test configuration for the proptest shim.

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic xoshiro256++ generator seeded from the test's identity
/// and case index, so every run regenerates the same inputs (the shim
/// keeps no regression persistence files).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case number `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h ^ ((case as u64) << 32 | 0x9e37);
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)` (`hi > lo`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo);
        lo.wrapping_add((self.next_u64() % hi.abs_diff(lo)) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            assert!((3..9).contains(&r.usize_in(3, 9)));
            assert!((-5..5).contains(&r.i64_in(-5, 5)));
            let f = r.f64_in(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
