//! Offline stand-in for `criterion` (API subset).
//!
//! Implements the pieces the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock measurement loop.
//! Reports median time per iteration on stdout. Statistical machinery
//! (outlier analysis, HTML reports) is intentionally out of scope; the
//! numbers are comparable within a run, which is what the repo's
//! `BENCH_*.json` snapshots record.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark case, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Measure `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for samples of at least ~2ms each, capped so a
        // slow routine still completes quickly.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).max(1);
        self.iters_per_sample = per_sample.min(1_000_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        per_iter[per_iter.len() / 2]
    }
}

fn run_bench(label: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_count,
    };
    f(&mut b);
    let ns = b.median_ns();
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("{label:<40} time: [{human}]");
}

/// Group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_count, |b| f(b));
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_count, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 20 }
    }
}

impl Criterion {
    /// Set the default number of timing samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_count, |b| f(b));
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            _parent: self,
        }
    }

    /// Parse CLI args (accepted and ignored; cargo-bench passes
    /// `--bench` and filters which this shim does not implement).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { sample_count: 3 };
        sample_bench(&mut c);
    }
}
