//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types to
//! keep them wire-ready, but no in-tree code path actually serializes
//! (there is no serializer crate in the dependency set). This shim keeps
//! the annotations compiling in the offline build environment: the
//! traits are markers with blanket impls, and the re-exported derives
//! expand to nothing.

/// Marker for types that could be serialized. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that could be deserialized. Blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// `serde::de` namespace subset.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// `serde::ser` namespace subset.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
