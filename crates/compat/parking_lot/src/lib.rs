//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment vendors no external sources, so this workspace
//! ships a minimal API-compatible subset of `parking_lot`: `Mutex`,
//! `MutexGuard`, `RwLock`, `Condvar` and `WaitTimeoutResult`. Semantics
//! match `parking_lot`'s: locks do not poison — a panicked holder simply
//! releases the lock for the next acquirer.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A mutex that, like `parking_lot::Mutex`, never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`].
///
/// Unlike `std`, `parking_lot`'s `wait` takes the guard by `&mut` — we
/// reproduce that calling convention here because all in-tree callers
/// rely on it.
pub struct Condvar {
    inner: std::sync::Condvar,
    /// `std::sync::Condvar` panics if used with two different mutexes;
    /// parking_lot relaxes this. In-tree usage is one-mutex, so we keep
    /// a debug flag only to make misuse loud.
    used: AtomicBool,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
            used: AtomicBool::new(false),
        }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.used.store(true, Ordering::Relaxed);
        replace_guard(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        self.used.store(true, Ordering::Relaxed);
        let mut timed_out = false;
        replace_guard(&mut guard.inner, |g| {
            let now = Instant::now();
            let dur = deadline.saturating_duration_since(now);
            if dur.is_zero() {
                timed_out = true;
                return g;
            }
            match self.inner.wait_timeout(g, dur) {
                Ok((g, r)) => {
                    timed_out = r.timed_out();
                    g
                }
                Err(p) => {
                    let (g, r) = p.into_inner();
                    timed_out = r.timed_out();
                    g
                }
            }
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Run `f` on the owned guard behind `slot`, putting the result back.
///
/// `std`'s condvar consumes the guard while parking_lot's borrows it, so
/// we temporarily move the guard out of the borrow. The closure always
/// returns a live guard (poison is unwrapped), so `slot` is always
/// restored; if `f` unwinds, the process is already tearing the lock down.
fn replace_guard<'a, T: ?Sized>(
    slot: &mut std::sync::MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    unsafe {
        let guard = std::ptr::read(slot);
        std::ptr::write(slot, f(guard));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
