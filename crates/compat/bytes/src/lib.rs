//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset this workspace uses: an immutable, cheaply
//! cloneable byte buffer backed by `Arc<[u8]>`. Cloning a [`Bytes`] is a
//! reference-count bump — never a deep copy — which is the property the
//! stream layer relies on for zero-copy port transfers.

use std::fmt;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from([]),
        }
    }

    /// Buffer borrowing nothing: copies the slice once at construction.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Wrap a static slice (copied once; the real crate borrows, but the
    /// observable API is identical for in-tree use).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn round_trips() {
        let b = Bytes::from("hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
