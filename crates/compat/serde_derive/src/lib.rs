//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace actually serializes (there is no
//! `serde_json` or similar in-tree), so the derives only need to make
//! `#[derive(Serialize, Deserialize)]` compile. The companion `serde`
//! shim provides blanket impls of the marker traits, so these macros
//! emit no code at all.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (blanket impl lives in the `serde` shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (blanket impl lives in the `serde` shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
