//! Offline stand-in for the `rand` crate (API subset).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen::<T>()` for the primitive types the workspace samples. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, which is all the simulator's noise model requires (it never
//! promises cross-version stream compatibility with upstream `rand`).

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Uniform {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Random number generator interface (subset).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its canonical uniform
    /// distribution (`f64` in `[0, 1)`, integers over their full range).
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample a value uniformly from `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        range.start + f64::sample(self) * (range.end - range.start)
    }
}

impl Uniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits => [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Uniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Uniform for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Uniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Generators constructible from a seed (subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator (xoshiro256++ core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, per Vigna's recommendation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn mean_is_near_half() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
