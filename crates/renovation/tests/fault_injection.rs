//! Fault injection: a worker process killed mid-job must cost the run one
//! re-dispatch, not its correctness. Instance 0 is scheduled (via a
//! `chaos::FaultPlan`, carried to the child in `MF_CHAOS_PLAN`) to exit
//! abruptly — no reply, no cleanup — upon receiving its second job; the
//! master must observe the loss through the normal event mechanism,
//! re-dispatch the recovered job, and still produce the bit-identical
//! result within the retry budget.

use std::path::PathBuf;
use std::sync::Arc;

use protocol::PaperFaithful;
use renovation::{run_concurrent_procs, ProcsConfig};
use solver::sequential::SequentialApp;

#[test]
fn killed_worker_is_redispatched_and_run_completes() {
    let app = SequentialApp::new(2, 2, 1e-3);
    let seq = app.run().unwrap();

    let mut cfg = ProcsConfig::new(2);
    cfg.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_subsolve_worker")));
    // Every incarnation of instance 0 dies on its second job, so the slot
    // keeps making progress (one job per incarnation) while exercising
    // crash → lost-marker → re-dispatch → respawn repeatedly.
    cfg = cfg.with_crash_on_job(0, 2);
    cfg.retry_budget = 6;

    let procs = run_concurrent_procs(&app, &cfg, true, Arc::new(PaperFaithful)).unwrap();

    // Correct despite the losses — and not approximately: bit-identical.
    assert_eq!(procs.result.combined, seq.combined);
    assert_eq!(procs.result.l2_error, seq.l2_error);
    assert_eq!(procs.result.per_grid.len(), seq.per_grid.len());

    // The recovery path really fired: the master logged the loss and the
    // re-dispatch, and extra workers were created for the re-sent jobs.
    let losses = procs
        .records
        .iter()
        .filter(|r| r.message.contains("worker lost"))
        .count();
    assert!(losses >= 1, "no worker-lost trace line; fault never fired");
    assert!(
        procs.outcome.pools()[0].workers_created > 5,
        "re-dispatch should create extra workers (got {})",
        procs.outcome.pools()[0].workers_created
    );
}

#[test]
fn exhausted_retry_budget_fails_the_run_cleanly() {
    let app = SequentialApp::new(2, 2, 1e-3);

    let mut cfg = ProcsConfig::new(1);
    cfg.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_subsolve_worker")));
    // The only instance dies on its *first* job, every incarnation: no
    // progress is possible, so the budget must run out with a clear error
    // instead of a hang.
    cfg = cfg.with_crash_on_job(0, 1);
    cfg.retry_budget = 2;
    cfg.job_timeout = std::time::Duration::from_secs(20);

    let err = run_concurrent_procs(&app, &cfg, true, Arc::new(PaperFaithful)).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("retry budget") || msg.contains("respawn budget") || msg.contains("lost"),
        "unexpected failure shape: {msg}"
    );
}
