//! Repeated-kill soak: a full level-5 run on the procs backend where a
//! worker process is killed on the second job of *every* incarnation, on
//! *both* instances. Each incarnation completes exactly one job before it
//! dies, so the run advances one job per respawn per slot — brutal but
//! survivable within the retry budget. The solution must still come out
//! bit-identical to the sequential program, and the whole ordeal must end
//! inside the watchdog window rather than hang.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use chaos::{FaultKind, FaultPlan, Watchdog};
use protocol::PaperFaithful;
use renovation::{run_concurrent_procs, ProcsConfig};
use solver::sequential::SequentialApp;

#[test]
fn procs_survives_a_worker_kill_on_every_incarnation() {
    let dog = Watchdog::arm("repeated-kill soak", Duration::from_secs(300));

    let app = SequentialApp::new(1, 5, 1e-3); // 11 jobs
    let seq = app.run().unwrap();

    // Job ordinals restart on respawn, so `crash@2` re-arms in every
    // incarnation: each worker does one job, takes a second, dies mid-way.
    let plan = FaultPlan::new(0)
        .push(FaultKind::WorkerCrash {
            instance: 0,
            on_job: 2,
        })
        .push(FaultKind::WorkerCrash {
            instance: 1,
            on_job: 2,
        });

    let mut cfg = ProcsConfig::new(2);
    cfg.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_subsolve_worker")));
    cfg.faults = Some(plan);
    cfg.retry_budget = 24;

    let run = run_concurrent_procs(&app, &cfg, true, Arc::new(PaperFaithful)).unwrap();

    assert_eq!(run.result.combined, seq.combined);
    assert_eq!(run.result.l2_error, seq.l2_error);

    // With 11 jobs across 2 slots that each lose every second job, the run
    // cannot finish without a sustained series of losses and respawns.
    let losses = run
        .records
        .iter()
        .filter(|r| r.message.contains("worker lost"))
        .count();
    assert!(
        losses >= 3,
        "expected a sustained kill schedule, saw {losses} losses"
    );

    dog.disarm();
}
