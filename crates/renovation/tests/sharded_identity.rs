//! Sharded-vs-flat identity: partitioning a job's dispatch sequence
//! across hierarchical shard masters (with or without work stealing, with
//! or without membership churn) must not change a single bit of the
//! numerical result. The shard topology is a *deployment* choice, exactly
//! as the paper's thread/process split is — the numbers must not know.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use protocol::{ChurnPlan, CostAware, PaperFaithful, PolicyRef, ShardSpec};
use renovation::{
    run_concurrent_opts, run_concurrent_procs, AppConfig, Engine, EngineOpts, ProcsConfig, RunMode,
    RunOpts,
};
use solver::sequential::SequentialApp;
use transport::BindMode;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_subsolve_worker"))
}

fn threads_run(
    app: &SequentialApp,
    policy: PolicyRef,
    opts: &RunOpts,
) -> renovation::ConcurrentResult {
    run_concurrent_opts(app, &RunMode::Parallel, true, policy, opts).unwrap()
}

/// The `dispatch subsolve(...)` trace lines, chronological.
fn dispatch_lines(records: &[manifold::trace::TraceRecord]) -> Vec<String> {
    records
        .iter()
        .filter(|r| r.message.starts_with("dispatch subsolve("))
        .map(|r| r.message.clone())
        .collect()
}

fn count_prefix(records: &[manifold::trace::TraceRecord], prefix: &str) -> usize {
    records
        .iter()
        .filter(|r| r.message.starts_with(prefix))
        .count()
}

#[test]
fn sharded_threads_runs_are_bit_identical_to_flat() {
    let app = SequentialApp::new(2, 4, 1e-3);
    let seq = app.run().unwrap();
    let flat = threads_run(&app, Arc::new(PaperFaithful), &RunOpts::default());
    assert_eq!(flat.result.combined, seq.combined);
    // The flat trace carries the original, unattributed dispatch line.
    assert!(dispatch_lines(&flat.records)
        .iter()
        .all(|l| !l.contains("[shard")));

    for shards in [2usize, 4, 8] {
        let opts = RunOpts {
            shards: ShardSpec::new(shards),
            ..RunOpts::default()
        };
        let sharded = threads_run(&app, Arc::new(PaperFaithful), &opts);
        assert_eq!(
            sharded.result.combined, seq.combined,
            "{shards}-shard combined field differs from sequential"
        );
        assert_eq!(sharded.result.l2_error, seq.l2_error);
        assert_eq!(sharded.result.per_grid.len(), flat.result.per_grid.len());
        assert_eq!(sharded.result.work, flat.result.work);

        // Every dispatch is attributed to a shard, and every shard (up to
        // the job count) issues at least one.
        let lines = dispatch_lines(&sharded.records);
        assert_eq!(lines.len(), 9, "level 4 dispatches 9 subsolves");
        let mut seen = BTreeSet::new();
        for l in &lines {
            let tag = l
                .split("[shard ")
                .nth(1)
                .unwrap_or_else(|| panic!("unattributed sharded dispatch line: {l}"));
            let id: usize = tag.trim_end_matches(']').parse().unwrap();
            seen.insert(id);
        }
        assert_eq!(
            seen.len(),
            shards.min(9),
            "idle shard masters at {shards} shards"
        );
    }
}

#[test]
fn steal_off_and_cost_aware_orders_stay_bit_identical() {
    let app = SequentialApp::new(2, 3, 1e-3);
    let seq = app.run().unwrap();
    for steal in [true, false] {
        let opts = RunOpts {
            shards: ShardSpec::new(3).with_steal(steal),
            ..RunOpts::default()
        };
        let r = threads_run(&app, Arc::new(CostAware), &opts);
        assert_eq!(r.result.combined, seq.combined, "steal={steal}");
        assert_eq!(r.result.l2_error, seq.l2_error);
    }
}

#[test]
fn work_stealing_is_attributed_in_the_live_trace() {
    // Nine level-4 jobs over four shard masters give LPT queues of
    // unequal length; the shortest drains first and steals. The steal
    // must be visible in the trace and must not perturb the numbers.
    let app = SequentialApp::new(2, 4, 1e-3);
    let seq = app.run().unwrap();
    let opts = RunOpts {
        shards: ShardSpec::new(4),
        ..RunOpts::default()
    };
    let r = threads_run(&app, Arc::new(CostAware), &opts);
    assert_eq!(r.result.combined, seq.combined);
    assert!(
        count_prefix(&r.records, "steal: shard") >= 1,
        "no steal event in the 4-shard cost-aware trace"
    );
}

#[test]
fn sharded_engine_jobs_match_flat_engine_jobs() {
    // An 8-job interleaved fleet: every job's result must be bit-identical
    // between a flat fleet and 2-/4-shard fleets.
    let levels = [2u32, 3, 4, 2, 3, 4, 2, 3];
    let run_fleet = |shards: usize| -> Vec<(u64, Vec<f64>, f64)> {
        let opts = EngineOpts {
            capacity_level: 4,
            shards: ShardSpec::new(shards),
            ..EngineOpts::default()
        };
        let mut eng = Engine::threads(RunMode::Parallel, Arc::new(PaperFaithful), opts).unwrap();
        let handles: Vec<_> = levels
            .iter()
            .map(|&lvl| {
                eng.submit(AppConfig::new(SequentialApp::new(2, lvl, 1e-3)))
                    .unwrap()
            })
            .collect();
        let reports: Vec<_> = handles
            .into_iter()
            .map(|h| {
                let r = h.wait().unwrap();
                (r.job, r.result.combined, r.result.l2_error)
            })
            .collect();
        eng.shutdown();
        reports
    };
    let flat = run_fleet(1);
    for shards in [2usize, 4] {
        let sharded = run_fleet(shards);
        assert_eq!(flat.len(), sharded.len());
        for (f, s) in flat.iter().zip(&sharded) {
            assert_eq!(f.0, s.0);
            assert_eq!(f.1, s.1, "job {} differs at {shards} shards", f.0);
            assert_eq!(f.2, s.2);
        }
    }
}

#[test]
fn sharded_sim_backend_matches_flat() {
    let run_sim = |shards: usize| {
        let opts = EngineOpts {
            capacity_level: 4,
            shards: ShardSpec::new(shards),
            ..EngineOpts::default()
        };
        let mut eng = Engine::sim(None, Arc::new(PaperFaithful), opts).unwrap();
        let h = eng
            .submit(AppConfig::new(SequentialApp::new(2, 4, 1e-3)))
            .unwrap();
        let r = h.wait().unwrap();
        eng.shutdown();
        (r.result.combined, r.result.l2_error)
    };
    let (flat, flat_l2) = run_sim(1);
    let (sharded, sharded_l2) = run_sim(4);
    assert_eq!(flat, sharded);
    assert_eq!(flat_l2, sharded_l2);
}

#[test]
fn sharded_procs_match_sharded_threads_line_for_line() {
    let app = SequentialApp::new(2, 3, 1e-3);
    let opts = RunOpts {
        shards: ShardSpec::new(2),
        ..RunOpts::default()
    };
    let threads = threads_run(&app, Arc::new(PaperFaithful), &opts);

    let mut cfg = ProcsConfig::new(2);
    cfg.bind = BindMode::Unix;
    cfg.worker_exe = Some(worker_exe());
    cfg.shards = ShardSpec::new(2);
    let procs = run_concurrent_procs(&app, &cfg, true, Arc::new(PaperFaithful)).unwrap();

    assert_eq!(threads.result.combined, procs.result.combined);
    assert_eq!(threads.result.l2_error, procs.result.l2_error);
    // Identical shard-attributed dispatch order, line for line.
    let a = dispatch_lines(&threads.records);
    let b = dispatch_lines(&procs.records);
    assert_eq!(a, b, "sharded dispatch order differs between backends");
    assert!(a.iter().all(|l| l.contains("[shard ")));
}

/// The CI `scaling-smoke` invariant: a 2-shard procs fleet that gains one
/// worker and loses one worker mid-run finishes every job and produces
/// the same bits as the flat threads run.
#[test]
fn procs_churn_join_and_leave_loses_nothing() {
    let app = SequentialApp::new(2, 3, 1e-3);
    let seq = app.run().unwrap();

    let mut cfg = ProcsConfig::new(2);
    cfg.bind = BindMode::Unix;
    cfg.worker_exe = Some(worker_exe());
    cfg.shards = ShardSpec::new(2);
    cfg.churn = ChurnPlan::parse("join@2,leave@5").unwrap();
    let r = run_concurrent_procs(&app, &cfg, true, Arc::new(PaperFaithful)).unwrap();

    assert_eq!(r.result.combined, seq.combined, "churn changed the numbers");
    assert_eq!(r.result.l2_error, seq.l2_error);
    assert_eq!(r.result.per_grid.len(), 7, "level 3 collects 7 subsolves");
    assert_eq!(count_prefix(&r.records, "join: instance"), 1);
    assert_eq!(count_prefix(&r.records, "leave: instance"), 1);
    assert_eq!(
        count_prefix(&r.records, "worker lost"),
        0,
        "a planned retirement must not look like a loss"
    );
}

/// The chaos `poolkill@N` token drives the sharded DES through the same
/// parse path the harness uses: the sentenced shard master dies once, its
/// queue is re-homed exactly once, and no job is lost.
#[test]
fn poolkill_fault_plan_rehomes_exactly_once() {
    use cluster::{paper_cluster, Job, ShardSimOpts, ShardedSim, Workload};

    let jobs = 48usize;
    let wl = Workload {
        name: format!("{jobs} uniform jobs"),
        init_flops: 1e6,
        prolong_flops: 1e6,
        pools: vec![(0..jobs)
            .map(|i| Job::new(format!("subsolve(0, {i})"), 5e9, 64 * 1024, 64 * 1024))
            .collect()],
        feed_flops_per_byte: 2.0,
        collect_flops_per_byte: 2.0,
    };
    let sim = ShardedSim::new(paper_cluster(1e9));
    let mut opts = ShardSimOpts::new(4).quiet();
    opts.faults = chaos::FaultPlan::parse("seed:3,poolkill@2").unwrap();
    let r = sim.run(&wl, &PaperFaithful, &opts);
    assert_eq!(r.rehomes, 1, "exactly one re-home per poolkill");
    assert_eq!(
        r.per_shard_jobs.iter().sum::<usize>(),
        jobs + r.redispatches
    );
    assert!(r
        .records
        .iter()
        .any(|rec| rec.message.starts_with("poolkill: shard 2")));
}
