//! Batched dispatch through the persistent Engine: bundles of subsolve
//! requests ride one worker each, and every answer stays bit-identical to
//! the sequential oracle.
//!
//! `batch_width` is a pure dispatch-shape knob — it changes how many jobs
//! travel per worker message, never what any job computes. These tests
//! interleave widths (1, 2, 3, 5, wider than the whole job list) across
//! problem sizes and policies on both live backends and the simulator, so
//! a width-dependent result, a dropped bundle member, or a reordered
//! result stream cannot cancel out.

use std::path::PathBuf;
use std::sync::Arc;

use protocol::{BoundedReuse, CostAware, PaperFaithful, PolicyRef};
use renovation::{AppConfig, Engine, EngineOpts, ProcsConfig, RunMode};
use solver::sequential::SequentialApp;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_subsolve_worker"))
}

/// (root, level, batch_width, per-job policy) — widths interleave with
/// problem shapes and dispatch policies; width 99 exceeds every job's
/// grid count, forcing the "everything in one bundle" edge.
fn batched_mix() -> Vec<(u32, u32, usize, Option<PolicyRef>)> {
    vec![
        (2, 2, 3, None),
        (1, 4, 2, Some(Arc::new(BoundedReuse::new(2)))),
        (2, 1, 5, Some(Arc::new(CostAware))),
        (2, 3, 1, None),
        (1, 2, 99, Some(Arc::new(CostAware))),
        (2, 0, 2, None),
        (1, 3, 3, Some(Arc::new(BoundedReuse::new(3)))),
        (2, 2, 4, Some(Arc::new(PaperFaithful))),
    ]
}

fn submit_batched_mix_and_check(engine: &mut Engine) {
    for (i, (root, level, width, policy)) in batched_mix().into_iter().enumerate() {
        let app = SequentialApp::new(root, level, 1e-3);
        let oracle = app.run().unwrap();
        let mut cfg = AppConfig::new(app).with_batch_width(width);
        if let Some(p) = policy {
            cfg = cfg.with_policy(p);
        }
        let report = engine
            .submit(cfg)
            .expect("engine admission")
            .wait()
            .unwrap();
        assert_eq!(
            report.result.combined,
            oracle.combined,
            "job {} (root {root}, level {level}, width {width}) drifted from the oracle",
            i + 1
        );
        assert_eq!(report.result.l2_error, oracle.l2_error);
        assert_eq!(report.result.per_grid.len(), oracle.per_grid.len());
    }
}

#[test]
fn threads_fleet_serves_batched_jobs_bit_identically() {
    let opts = EngineOpts {
        capacity_level: 4,
        ..EngineOpts::default()
    };
    let mut engine = Engine::threads(RunMode::Parallel, Arc::new(PaperFaithful), opts).unwrap();
    submit_batched_mix_and_check(&mut engine);
    assert_eq!(engine.jobs_served(), 8);
    engine.shutdown();
}

#[test]
fn procs_fleet_serves_batched_jobs_bit_identically() {
    let mut cfg = ProcsConfig::new(2);
    cfg.worker_exe = Some(worker_exe());
    let opts = EngineOpts {
        capacity_level: 4,
        ..EngineOpts::default()
    };
    let mut engine = Engine::procs(cfg, Arc::new(PaperFaithful), opts).unwrap();
    submit_batched_mix_and_check(&mut engine);
    assert_eq!(engine.jobs_served(), 8);
    let summary = engine.shutdown();
    assert_eq!(summary.jobs_served, 8);
}

#[test]
fn sim_fleet_accepts_batched_jobs() {
    // The simulator replays the sequential core for the answer, so width
    // cannot change results there — but submitting batched configs must
    // be admitted and reported exactly like unbatched ones.
    let mut engine = Engine::sim(None, Arc::new(PaperFaithful), EngineOpts::default()).unwrap();
    submit_batched_mix_and_check(&mut engine);
    assert_eq!(engine.jobs_served(), 8);
    engine.shutdown();
}

#[test]
fn widths_on_one_warm_fleet_agree_with_each_other() {
    // The same problem at widths 1..=4 over one warm threads fleet: all
    // four answers bit-equal, and worker bookkeeping still balances.
    let opts = EngineOpts {
        capacity_level: 3,
        ..EngineOpts::default()
    };
    let mut engine = Engine::threads(RunMode::Parallel, Arc::new(PaperFaithful), opts).unwrap();
    let app = SequentialApp::new(2, 3, 1e-3);
    let mut results = Vec::new();
    for width in 1..=4usize {
        let report = engine
            .submit(AppConfig::new(app).with_batch_width(width))
            .unwrap()
            .wait()
            .unwrap();
        let pools = report.outcome.pools();
        assert_eq!(
            pools[0].workers_created, pools[0].deaths_counted,
            "width {width}: unbalanced worker lifecycle"
        );
        results.push((report.result.combined, report.result.l2_error));
    }
    for w in 1..results.len() {
        assert_eq!(results[0], results[w], "width {} diverged", w + 1);
    }
    engine.shutdown();
}
