//! Kill-and-resume bit-identity: a run killed at an arbitrary point and
//! resumed from its checkpoint must produce exactly the bits of an
//! uninterrupted run — across several fault seeds, on both live backends.
//!
//! The work-counter oracle is an *uninterrupted concurrent* run (the
//! master counts per-grid data-staging ops the sequential program does not
//! perform); the solution fields are compared against the sequential run,
//! which every backend must reproduce bit for bit.

use std::path::PathBuf;
use std::sync::Arc;

use chaos::{FaultKind, FaultPlan};
use protocol::PaperFaithful;
use renovation::{
    run_concurrent, run_concurrent_opts, run_concurrent_procs, ProcsConfig, RunMode, RunOpts,
};
use solver::sequential::SequentialApp;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mf-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn threads_kill_at_every_point_resumes_bit_identically() {
    let app = SequentialApp::new(2, 2, 1e-3);
    let seq = app.run().unwrap();
    let uninterrupted = run_concurrent(&app, &RunMode::Parallel, true).unwrap();
    let jobs = 2 * app.level as u64 + 1;

    // Kill after every possible number of collected results — including
    // the last one, where the resumed master dispatches nothing and the
    // pool must still rendezvous.
    for kill_at in 1..=jobs {
        let dir = tmp_dir(&format!("threads-{kill_at}"));
        let opts = RunOpts {
            faults: Some(
                FaultPlan::new(kill_at).push(FaultKind::MasterKill { at_result: kill_at }),
            ),
            checkpoint_dir: Some(dir.clone()),
            ..RunOpts::default()
        };
        let err = run_concurrent_opts(
            &app,
            &RunMode::Parallel,
            true,
            Arc::new(PaperFaithful),
            &opts,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("master killed"), "kill_at {kill_at}: {err}");

        let resumed = RunOpts {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..RunOpts::default()
        };
        let run = run_concurrent_opts(
            &app,
            &RunMode::Parallel,
            true,
            Arc::new(PaperFaithful),
            &resumed,
        )
        .unwrap();
        assert_eq!(run.result.combined, seq.combined, "kill_at {kill_at}");
        assert_eq!(run.result.l2_error, seq.l2_error, "kill_at {kill_at}");
        assert_eq!(
            run.result.work, uninterrupted.result.work,
            "kill_at {kill_at}: resumed work accounting diverged"
        );
        // The restored results were logged, and a finished run cleared its
        // snapshot.
        assert!(run
            .records
            .iter()
            .any(|r| r.message.contains("restored from checkpoint")));
        assert!(!dir.join("run.ckpt").exists(), "stale snapshot left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn procs_kill_and_resume_is_bit_identical_across_seeds() {
    let app = SequentialApp::new(2, 2, 1e-3);
    let seq = app.run().unwrap();
    let jobs = 2 * app.level as u64 + 1;

    for seed in 1..=3u64 {
        let dog = chaos::Watchdog::arm(
            &format!("procs kill-resume seed {seed}"),
            std::time::Duration::from_secs(120),
        );
        let dir = tmp_dir(&format!("procs-{seed}"));
        // A seeded schedule of worker faults *plus* a master kill: the
        // resumed run must survive both kinds of failure in one go.
        let plan = FaultPlan::from_seed_with_master_kill(seed, 2, jobs);

        let mut cfg = ProcsConfig::new(2);
        cfg.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_subsolve_worker")));
        cfg.retry_budget = 16;
        cfg.faults = Some(plan);
        cfg.checkpoint_dir = Some(dir.clone());
        let err = run_concurrent_procs(&app, &cfg, true, Arc::new(PaperFaithful))
            .unwrap_err()
            .to_string();
        assert!(err.contains("master killed"), "seed {seed}: {err}");

        // Resume without the master kill (its job is done); worker faults
        // restart per incarnation and must still be harmless.
        let mut cfg2 = ProcsConfig::new(2);
        cfg2.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_subsolve_worker")));
        cfg2.retry_budget = 16;
        cfg2.faults = Some(FaultPlan::from_seed(seed, 2, jobs));
        cfg2.checkpoint_dir = Some(dir.clone());
        cfg2.resume = true;
        let run = run_concurrent_procs(&app, &cfg2, true, Arc::new(PaperFaithful)).unwrap();

        assert_eq!(run.result.combined, seq.combined, "seed {seed}");
        assert_eq!(run.result.l2_error, seq.l2_error, "seed {seed}");
        assert!(!dir.join("run.ckpt").exists(), "stale snapshot left behind");
        let _ = std::fs::remove_dir_all(&dir);
        dog.disarm();
    }
}
