//! Property-based tests of the stream codec: every well-formed request and
//! result survives the unit encoding bit-for-bit, including the degenerate
//! grids (empty interior, single cell) and the `initial_interior: None`
//! sentinel, and bulk payloads stay shared rather than copied.

use std::sync::Arc;

use proptest::prelude::*;
use renovation::codec::{request_from_unit, request_to_unit, result_from_unit, result_to_unit};
use solver::grid::Grid2;
use solver::problem::{Problem, ProblemKind};
use solver::subsolve::{SubsolveRequest, SubsolveResult};
use solver::WorkCounter;

fn arb_problem() -> impl Strategy<Value = Problem> {
    (
        -2.0..2.0f64,
        -2.0..2.0f64,
        1e-6..1.0f64,
        0.0..0.5f64,
        0.5..2.0f64,
        prop_oneof![
            Just(ProblemKind::Manufactured),
            (0.0..1.0f64, 0.0..1.0f64, 0.01..0.3f64)
                .prop_map(|(x0, y0, s0)| ProblemKind::Gaussian { x0, y0, s0 }),
        ],
    )
        .prop_map(|(ax, ay, eps, t0, t_end, kind)| Problem {
            ax,
            ay,
            eps,
            t0,
            t_end,
            kind,
        })
}

fn arb_request() -> impl Strategy<Value = SubsolveRequest> {
    (
        (0u32..3, 0u32..5, 0u32..5),
        (0.0..1.0f64, 1.0..2.0f64, 1e-6..1e-2f64),
        arb_problem(),
        prop::option::of(prop::collection::vec(-10.0..10.0f64, 0..40)),
    )
        .prop_map(
            |((root, l, m), (t0, t1, tol), problem, init)| SubsolveRequest {
                root,
                l,
                m,
                t0,
                t1,
                tol,
                problem,
                initial_interior: init.map(Arc::new),
            },
        )
}

fn arb_result() -> impl Strategy<Value = SubsolveResult> {
    (
        (0u32..8, 0u32..8),
        prop::collection::vec(-100.0..100.0f64, 0..60),
        (0usize..10_000, 0usize..100),
        prop::collection::vec(0u64..1_000_000, 8),
    )
        .prop_map(|((l, m), values, (steps, rejected), w)| SubsolveResult {
            l,
            m,
            values: Arc::new(values),
            steps,
            rejected,
            work: WorkCounter {
                flops: w[0],
                steps: w[1],
                rejected: w[2],
                lin_iters: w[3],
                factorizations: w[4],
                refactorizations: w[5],
                assemblies: w[6],
                batched_rhs: w[7],
            },
        })
}

proptest! {
    /// Any request — with or without initial data, including the empty
    /// payload — round-trips exactly.
    #[test]
    fn request_round_trips(req in arb_request()) {
        let back = request_from_unit(&request_to_unit(&req)).unwrap();
        prop_assert_eq!(back, req);
    }

    /// Any result round-trips exactly, values bit-for-bit.
    #[test]
    fn result_round_trips(res in arb_result()) {
        let back = result_from_unit(&result_to_unit(&res)).unwrap();
        prop_assert_eq!(back, res);
    }

    /// The bulk buffers cross the codec as shared allocations: what comes
    /// back is pointer-equal to what went in, never a deep copy.
    #[test]
    fn payloads_stay_shared(req in arb_request(), res in arb_result()) {
        let breq = request_from_unit(&request_to_unit(&req)).unwrap();
        if let (Some(a), Some(b)) = (&req.initial_interior, &breq.initial_interior) {
            prop_assert!(Arc::ptr_eq(a, b));
        }
        let bres = result_from_unit(&result_to_unit(&res)).unwrap();
        prop_assert!(Arc::ptr_eq(&bres.values, &res.values));
    }

    /// Degenerate grids: the initial payload sized to the *actual* interior
    /// of an `(root, l, m)` grid — which is empty for any grid with a
    /// single row or column of cells — still round-trips.
    #[test]
    fn degenerate_grid_payloads_round_trip(
        root in 0u32..2,
        l in 0u32..3,
        m in 0u32..3,
        p in arb_problem()
    ) {
        let g = Grid2::new(root, l, m);
        let interior = g.sample_interior(|x, y| x + 2.0 * y);
        prop_assert_eq!(interior.len(), g.interior_count());
        let mut req = SubsolveRequest::for_grid(root, l, m, 1e-3, p);
        req.initial_interior = Some(Arc::new(interior));
        let back = request_from_unit(&request_to_unit(&req)).unwrap();
        prop_assert_eq!(back, req);
    }
}

#[test]
fn empty_and_single_cell_grids_have_empty_interiors() {
    // root 0, l 0, m 0: one cell, no interior nodes at all — the smallest
    // payload the codec must carry.
    let g = Grid2::new(0, 0, 0);
    assert_eq!(g.interior_count(), 0);
    assert!(g.sample_interior(|_, _| 1.0).is_empty());
    let mut req = SubsolveRequest::for_grid(0, 0, 0, 1e-3, Problem::transport_benchmark());
    req.initial_interior = Some(Arc::new(Vec::new()));
    let back = request_from_unit(&request_to_unit(&req)).unwrap();
    assert_eq!(back, req);
}
