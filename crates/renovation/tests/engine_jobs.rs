//! Multi-job engine isolation: one persistent fleet, many interleaved
//! jobs, every answer bit-identical to a solo run.
//!
//! The solo oracle is the sequential program itself — the tier-1 suite
//! already proves every one-shot backend reproduces it bit for bit, so a
//! multi-job engine whose per-job results equal the sequential results is
//! transitively identical to the solo concurrent runs too. Jobs are
//! deliberately interleaved across problem sizes, roots, data paths, and
//! dispatch policies so state leaking from one job into the next (stale
//! results, policy carry-over, trace bleed) cannot cancel out.

use std::path::PathBuf;
use std::sync::Arc;

use protocol::{BoundedReuse, CostAware, PaperFaithful, PolicyRef};
use renovation::{AppConfig, Engine, EngineOpts, ProcsConfig, RunMode, SubmitError};
use solver::sequential::SequentialApp;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_subsolve_worker"))
}

/// (root, level, data_through_master, per-job policy) — a mix that changes
/// every knob between consecutive jobs.
fn job_mix() -> Vec<(u32, u32, bool, Option<PolicyRef>)> {
    vec![
        (2, 2, true, None),
        (1, 4, true, Some(Arc::new(BoundedReuse::new(2)))),
        (2, 1, false, Some(Arc::new(CostAware))),
        (2, 3, true, None),
        (1, 2, true, Some(Arc::new(CostAware))),
        (2, 0, true, None),
        (1, 3, false, Some(Arc::new(BoundedReuse::new(3)))),
        (2, 2, true, Some(Arc::new(PaperFaithful))),
    ]
}

fn submit_mix_and_check(engine: &mut Engine) {
    for (i, (root, level, through_master, policy)) in job_mix().into_iter().enumerate() {
        let app = SequentialApp::new(root, level, 1e-3);
        let oracle = app.run().unwrap();
        let mut cfg = AppConfig::new(app).with_data_through_master(through_master);
        if let Some(p) = policy {
            cfg = cfg.with_policy(p);
        }
        let handle = engine.submit(cfg).expect("engine admission");
        assert_eq!(handle.id(), (i + 1) as u64);
        let report = handle.wait().unwrap();
        assert_eq!(
            report.result.combined,
            oracle.combined,
            "job {} (root {root}, level {level}) drifted from the solo oracle",
            i + 1
        );
        assert_eq!(report.result.l2_error, oracle.l2_error);
        assert_eq!(report.result.per_grid.len(), oracle.per_grid.len());
    }
}

#[test]
fn threads_fleet_serves_eight_interleaved_jobs_bit_identically() {
    let opts = EngineOpts {
        capacity_level: 4,
        ..EngineOpts::default()
    };
    let mut engine = Engine::threads(RunMode::Parallel, Arc::new(PaperFaithful), opts).unwrap();
    submit_mix_and_check(&mut engine);
    assert_eq!(engine.jobs_served(), 8);
    // Every job created its own workers; the pool statistics span jobs.
    assert!(engine.fleet_workers_created() >= 8);
    let summary = engine.shutdown();
    assert_eq!(summary.jobs_served, 8);
}

#[test]
fn distributed_fleet_parks_perpetual_instances_between_jobs() {
    // In the distributed deployment each worker has its own task
    // instance; `{perpetual}` parks them between jobs instead of dying
    // (in the parallel deployment everything bundles into the start-up
    // instance, so there is nothing separate to park).
    let opts = EngineOpts {
        capacity_level: 2,
        ..EngineOpts::default()
    };
    let mode = RunMode::Distributed {
        hosts: RunMode::paper_hosts(),
    };
    let mut engine = Engine::threads(mode, Arc::new(PaperFaithful), opts).unwrap();
    for _ in 0..2 {
        let app = SequentialApp::new(2, 1, 1e-3);
        let oracle = app.run().unwrap();
        let report = engine.submit(AppConfig::new(app)).unwrap().wait().unwrap();
        assert_eq!(report.result.combined, oracle.combined);
        assert!(
            engine.parked_workers() >= 1,
            "no parked instances: {}",
            engine.parked_workers()
        );
    }
    engine.shutdown();
}

#[test]
fn procs_fleet_serves_eight_interleaved_jobs_bit_identically() {
    let mut cfg = ProcsConfig::new(2);
    cfg.worker_exe = Some(worker_exe());
    let opts = EngineOpts {
        capacity_level: 4,
        ..EngineOpts::default()
    };
    let mut engine = Engine::procs(cfg, Arc::new(PaperFaithful), opts).unwrap();
    submit_mix_and_check(&mut engine);
    assert_eq!(engine.jobs_served(), 8);
    let summary = engine.shutdown();
    assert_eq!(summary.jobs_served, 8);
    // The same two worker processes served all eight jobs and each ships
    // one shutdown report.
    assert_eq!(summary.child_reports.len(), 2);
}

#[test]
fn sim_fleet_serves_eight_jobs_and_warm_jobs_are_faster() {
    let mut engine = Engine::sim(None, Arc::new(PaperFaithful), EngineOpts::default()).unwrap();
    let mut latencies = Vec::new();
    for (root, level, through_master, policy) in job_mix() {
        let app = SequentialApp::new(root, level, 1e-3);
        let oracle = app.run().unwrap();
        let mut cfg = AppConfig::new(app).with_data_through_master(through_master);
        if let Some(p) = policy {
            cfg = cfg.with_policy(p);
        }
        let report = engine.submit(cfg).unwrap().wait().unwrap();
        assert_eq!(report.result.combined, oracle.combined);
        assert_eq!(report.result.l2_error, oracle.l2_error);
        latencies.push(report.latency_s);
    }
    assert_eq!(engine.jobs_served(), 8);
    assert!(engine.parked_workers() >= 1);
    // Job 1 paid the application startup on the virtual timeline; every
    // warm job must beat it.
    for (i, warm) in latencies.iter().enumerate().skip(1) {
        assert!(
            *warm < latencies[0],
            "job {} ({warm}s) not below cold job 1 ({}s)",
            i + 1,
            latencies[0]
        );
    }
}

#[test]
fn submit_over_capacity_is_a_typed_rejection_not_a_panic() {
    // The fleet was provisioned for level 2; a level-5 job must bounce
    // with a typed error, and the fleet keeps serving jobs it can hold.
    let opts = EngineOpts {
        capacity_level: 2,
        ..EngineOpts::default()
    };
    let mut engine = Engine::threads(RunMode::Parallel, Arc::new(PaperFaithful), opts).unwrap();
    match engine.submit(AppConfig::new(SequentialApp::new(2, 5, 1e-3))) {
        Err(err) => assert_eq!(
            err,
            SubmitError::OverCapacity {
                level: 5,
                capacity: 2
            }
        ),
        Ok(_) => panic!("over-capacity submit was admitted"),
    }
    let app = SequentialApp::new(2, 2, 1e-3);
    let oracle = app.run().unwrap();
    let report = engine.submit(AppConfig::new(app)).unwrap().wait().unwrap();
    assert_eq!(report.result.combined, oracle.combined);
    assert_eq!(engine.jobs_served(), 1);
    engine.shutdown();
}

#[test]
fn identical_jobs_on_one_engine_are_bit_identical_to_each_other() {
    // Same configuration served three times over one warm threads fleet:
    // job N's answer (and dispatch bookkeeping) must not depend on N.
    let opts = EngineOpts {
        capacity_level: 3,
        ..EngineOpts::default()
    };
    let mut engine = Engine::threads(RunMode::Parallel, Arc::new(PaperFaithful), opts).unwrap();
    let app = SequentialApp::new(2, 3, 1e-3);
    let mut results = Vec::new();
    for _ in 0..3 {
        let report = engine.submit(AppConfig::new(app)).unwrap().wait().unwrap();
        results.push((
            report.result.combined,
            report.result.l2_error,
            report.outcome.pools()[0].workers_created,
        ));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    engine.shutdown();
}
