//! Cross-backend equivalence: the *threads* backend (every process a
//! thread of one program) and the *procs* backend (worker task instances
//! as separate OS processes over the transport) must be observably the
//! same program — bit-identical combined solution and, per dispatch
//! policy, an identical trace-visible dispatch order.

use std::path::PathBuf;
use std::sync::Arc;

use protocol::{BoundedReuse, CostAware, PaperFaithful, PolicyRef};
use renovation::{run_concurrent_procs, run_concurrent_with_policy, ProcsConfig, RunMode};
use solver::sequential::SequentialApp;
use transport::BindMode;

fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_subsolve_worker"))
}

fn procs_cfg(instances: usize, bind: BindMode) -> ProcsConfig {
    let mut cfg = ProcsConfig::new(instances);
    cfg.bind = bind;
    cfg.worker_exe = Some(worker_exe());
    cfg
}

/// The dispatch-order signature: the master's `dispatch subsolve(l, m)`
/// trace lines, in chronological order.
fn dispatch_sequence(records: &[manifold::trace::TraceRecord]) -> Vec<String> {
    records
        .iter()
        .filter(|r| r.message.starts_with("dispatch subsolve("))
        .map(|r| r.message.clone())
        .collect()
}

fn assert_backends_match(policy: PolicyRef, bind: BindMode) {
    let app = SequentialApp::new(2, 2, 1e-3);
    let threads =
        run_concurrent_with_policy(&app, &RunMode::Parallel, true, policy.clone()).unwrap();
    let procs = run_concurrent_procs(&app, &procs_cfg(2, bind), true, policy).unwrap();

    // Bit-identical numbers, not approximately equal.
    assert_eq!(threads.result.combined, procs.result.combined);
    assert_eq!(threads.result.l2_error, procs.result.l2_error);
    assert_eq!(threads.result.per_grid.len(), procs.result.per_grid.len());

    // Identical dispatch order, line for line.
    let a = dispatch_sequence(&threads.records);
    let b = dispatch_sequence(&procs.records);
    assert_eq!(a.len(), 5, "level 2 dispatches 5 subsolves");
    assert_eq!(a, b, "dispatch order differs between backends");

    // Same protocol bookkeeping.
    assert_eq!(
        threads.outcome.pools()[0].workers_created,
        procs.outcome.pools()[0].workers_created
    );
}

#[test]
fn paper_faithful_matches_over_tcp() {
    assert_backends_match(Arc::new(PaperFaithful), BindMode::Tcp);
}

#[test]
fn bounded_reuse_matches_over_tcp() {
    assert_backends_match(Arc::new(BoundedReuse::new(2)), BindMode::Tcp);
}

#[test]
fn cost_aware_matches_over_tcp() {
    assert_backends_match(Arc::new(CostAware), BindMode::Tcp);
}

#[test]
fn paper_faithful_matches_over_unix_sockets() {
    assert_backends_match(Arc::new(PaperFaithful), BindMode::Unix);
}

#[test]
fn remote_traces_carry_real_host_and_child_task_uids() {
    let app = SequentialApp::new(2, 1, 1e-3);
    let procs = run_concurrent_procs(
        &app,
        &procs_cfg(2, BindMode::Tcp),
        true,
        Arc::new(PaperFaithful),
    )
    .unwrap();

    let real_host = transport::real_hostname();
    // The proxy workers adopt the children's reported identity: the
    // machine's *real* hostname, not the CONFIG label.
    assert!(
        procs
            .records
            .iter()
            .any(|r| r.manifold_name.as_str() == "Worker(event)" && r.host.as_str() == real_host),
        "no worker trace line carries the real hostname {real_host:?}"
    );
    // The children's own trace files were merged in, rewritten to their
    // pool slots' task-instance uids.
    for slot in 0..2u64 {
        let uid = renovation::procs::child_task_uid(slot);
        assert!(
            procs.records.iter().any(|r| r.task_uid == uid),
            "no merged trace record from child instance {slot} (uid {uid})"
        );
    }
    // Each worker announced itself in its own process: 3 remote Welcomes
    // (per job) + the proxies' and master's lines all interleave into one
    // chronology.
    let mut last = (0, 0);
    for r in &procs.records {
        assert!((r.secs, r.usecs) >= last, "merged trace not chronological");
        last = (r.secs, r.usecs);
    }
}
