//! Encoding solver payloads as MANIFOLD units.
//!
//! Workers are black boxes reading units from their input port; the master
//! writes units to its output port. These helpers define the wire shape of
//! a subsolve job and its result. Numeric bulk data travels as
//! [`Unit::Reals`], which is reference-counted, and the application types
//! carry `Arc`-shared buffers too — so encode, port transfer, and decode
//! all hand around one allocation, mirroring MANIFOLD's intra-task
//! pass-by-reference end to end.

use manifold::prelude::*;
use solver::problem::{Problem, ProblemKind};
use solver::subsolve::{SubsolveRequest, SubsolveResult};
use solver::WorkCounter;

pub(crate) fn problem_to_unit(p: &Problem) -> Unit {
    let (tag, x0, y0, s0) = match p.kind {
        ProblemKind::Gaussian { x0, y0, s0 } => (0i64, x0, y0, s0),
        ProblemKind::Manufactured => (1i64, 0.0, 0.0, 0.0),
    };
    Unit::tuple(vec![
        Unit::real(p.ax),
        Unit::real(p.ay),
        Unit::real(p.eps),
        Unit::real(p.t0),
        Unit::real(p.t_end),
        Unit::int(tag),
        Unit::real(x0),
        Unit::real(y0),
        Unit::real(s0),
    ])
}

pub(crate) fn problem_from_unit(u: &Unit) -> MfResult<Problem> {
    let t = u
        .as_tuple()
        .ok_or(MfError::UnitType { expected: "Tuple" })?;
    if t.len() != 9 {
        return Err(MfError::App(format!("problem tuple arity {}", t.len())));
    }
    let kind = match t[5].expect_int()? {
        0 => ProblemKind::Gaussian {
            x0: t[6].expect_real()?,
            y0: t[7].expect_real()?,
            s0: t[8].expect_real()?,
        },
        1 => ProblemKind::Manufactured,
        k => return Err(MfError::App(format!("unknown problem kind {k}"))),
    };
    Ok(Problem {
        ax: t[0].expect_real()?,
        ay: t[1].expect_real()?,
        eps: t[2].expect_real()?,
        t0: t[3].expect_real()?,
        t_end: t[4].expect_real()?,
        kind,
    })
}

/// Encode a subsolve request for the master → worker stream.
pub fn request_to_unit(req: &SubsolveRequest) -> Unit {
    let initial = match &req.initial_interior {
        // Share the buffer with the request — encoding copies nothing.
        Some(v) => Unit::reals_shared(v.clone()),
        None => Unit::int(-1), // sentinel: sample the initial condition
    };
    Unit::tuple(vec![
        Unit::int(req.root as i64),
        Unit::int(req.l as i64),
        Unit::int(req.m as i64),
        Unit::real(req.t0),
        Unit::real(req.t1),
        Unit::real(req.tol),
        problem_to_unit(&req.problem),
        initial,
    ])
}

/// Decode a subsolve request on the worker side.
pub fn request_from_unit(u: &Unit) -> MfResult<SubsolveRequest> {
    let t = u
        .as_tuple()
        .ok_or(MfError::UnitType { expected: "Tuple" })?;
    if t.len() != 8 {
        return Err(MfError::App(format!("request tuple arity {}", t.len())));
    }
    let initial_interior = match &t[7] {
        Unit::Int(-1) => None,
        Unit::Reals(v) => Some(v.clone()),
        other => return Err(MfError::App(format!("bad initial data field: {other:?}"))),
    };
    Ok(SubsolveRequest {
        root: t[0].expect_int()? as u32,
        l: t[1].expect_int()? as u32,
        m: t[2].expect_int()? as u32,
        t0: t[3].expect_real()?,
        t1: t[4].expect_real()?,
        tol: t[5].expect_real()?,
        problem: problem_from_unit(&t[6])?,
        initial_interior,
    })
}

/// Encode a subsolve result for the worker → master.dataport stream.
pub fn result_to_unit(res: &SubsolveResult) -> Unit {
    Unit::tuple(vec![
        Unit::int(res.l as i64),
        Unit::int(res.m as i64),
        Unit::reals_shared(res.values.clone()),
        Unit::int(res.steps as i64),
        Unit::int(res.rejected as i64),
        Unit::tuple(vec![
            Unit::int(res.work.flops as i64),
            Unit::int(res.work.steps as i64),
            Unit::int(res.work.rejected as i64),
            Unit::int(res.work.lin_iters as i64),
            Unit::int(res.work.factorizations as i64),
            Unit::int(res.work.refactorizations as i64),
            Unit::int(res.work.assemblies as i64),
        ]),
    ])
}

/// Decode a subsolve result on the master side.
pub fn result_from_unit(u: &Unit) -> MfResult<SubsolveResult> {
    let t = u
        .as_tuple()
        .ok_or(MfError::UnitType { expected: "Tuple" })?;
    if t.len() != 6 {
        return Err(MfError::App(format!("result tuple arity {}", t.len())));
    }
    let w = t[5]
        .as_tuple()
        .ok_or(MfError::UnitType { expected: "Tuple" })?;
    if w.len() != 7 {
        return Err(MfError::App("bad work tuple".into()));
    }
    Ok(SubsolveResult {
        l: t[0].expect_int()? as u32,
        m: t[1].expect_int()? as u32,
        values: t[2].expect_reals()?,
        steps: t[3].expect_int()? as usize,
        rejected: t[4].expect_int()? as usize,
        work: WorkCounter {
            flops: w[0].expect_int()? as u64,
            steps: w[1].expect_int()? as u64,
            rejected: w[2].expect_int()? as u64,
            lin_iters: w[3].expect_int()? as u64,
            factorizations: w[4].expect_int()? as u64,
            refactorizations: w[5].expect_int()? as u64,
            assemblies: w[6].expect_int()? as u64,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use solver::subsolve::subsolve;

    #[test]
    fn request_round_trip_without_data() {
        let p = Problem::transport_benchmark();
        let req = SubsolveRequest::for_grid(2, 3, 1, 1e-3, p);
        let back = request_from_unit(&request_to_unit(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_round_trip_with_data() {
        let p = Problem::manufactured_benchmark();
        let mut req = SubsolveRequest::for_grid(2, 1, 1, 1e-4, p);
        req.initial_interior = Some(std::sync::Arc::new(vec![1.0, 2.5, -3.0]));
        let back = request_from_unit(&request_to_unit(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn result_round_trip_is_exact() {
        let p = Problem::manufactured_benchmark();
        let req = SubsolveRequest::for_grid(2, 1, 0, 1e-3, p);
        let res = subsolve(&req).unwrap();
        let back = result_from_unit(&result_to_unit(&res)).unwrap();
        assert_eq!(back, res);
    }

    #[test]
    fn manufactured_problem_round_trips() {
        let p = Problem::manufactured_benchmark();
        let u = problem_to_unit(&p);
        assert_eq!(problem_from_unit(&u).unwrap(), p);
    }

    #[test]
    fn bad_payload_is_rejected() {
        assert!(request_from_unit(&Unit::int(3)).is_err());
        assert!(result_from_unit(&Unit::tuple(vec![Unit::int(1)])).is_err());
        assert!(problem_from_unit(&Unit::tuple(vec![Unit::int(1); 9])).is_err());
    }

    #[test]
    fn bulk_data_is_shared_not_copied() {
        let p = Problem::transport_benchmark();
        let req = SubsolveRequest::for_grid(2, 2, 2, 1e-3, p);
        let res = subsolve(&req).unwrap();
        let unit = result_to_unit(&res);
        let clone = unit.clone();
        match (&unit, &clone) {
            (Unit::Tuple(a), Unit::Tuple(b)) => {
                assert!(std::sync::Arc::ptr_eq(a, b));
            }
            _ => unreachable!(),
        }
        // Stronger: the whole encode → decode round trip hands back the
        // *same* allocation, so a result's node field crosses the port
        // without a single deep copy.
        let back = result_from_unit(&unit).unwrap();
        assert!(std::sync::Arc::ptr_eq(&back.values, &res.values));
    }

    #[test]
    fn request_initial_data_is_shared_not_copied() {
        let p = Problem::manufactured_benchmark();
        let mut req = SubsolveRequest::for_grid(2, 1, 1, 1e-4, p);
        req.initial_interior = Some(std::sync::Arc::new(vec![0.5; 9]));
        let back = request_from_unit(&request_to_unit(&req)).unwrap();
        assert!(std::sync::Arc::ptr_eq(
            back.initial_interior.as_ref().unwrap(),
            req.initial_interior.as_ref().unwrap()
        ));
    }
}
