//! Encoding solver payloads as MANIFOLD units.
//!
//! Workers are black boxes reading units from their input port; the master
//! writes units to its output port. These helpers define the wire shape of
//! a subsolve job and its result. Numeric bulk data travels as
//! [`Unit::Reals`], which is reference-counted, and the application types
//! carry `Arc`-shared buffers too — so encode, port transfer, and decode
//! all hand around one allocation, mirroring MANIFOLD's intra-task
//! pass-by-reference end to end.

use manifold::prelude::*;
use solver::problem::{Problem, ProblemKind};
use solver::subsolve::{SubsolveRequest, SubsolveResult};
use solver::WorkCounter;

pub(crate) fn problem_to_unit(p: &Problem) -> Unit {
    let (tag, x0, y0, s0) = match p.kind {
        ProblemKind::Gaussian { x0, y0, s0 } => (0i64, x0, y0, s0),
        ProblemKind::Manufactured => (1i64, 0.0, 0.0, 0.0),
    };
    Unit::tuple(vec![
        Unit::real(p.ax),
        Unit::real(p.ay),
        Unit::real(p.eps),
        Unit::real(p.t0),
        Unit::real(p.t_end),
        Unit::int(tag),
        Unit::real(x0),
        Unit::real(y0),
        Unit::real(s0),
    ])
}

pub(crate) fn problem_from_unit(u: &Unit) -> MfResult<Problem> {
    let t = u
        .as_tuple()
        .ok_or(MfError::UnitType { expected: "Tuple" })?;
    if t.len() != 9 {
        return Err(MfError::App(format!("problem tuple arity {}", t.len())));
    }
    let kind = match t[5].expect_int()? {
        0 => ProblemKind::Gaussian {
            x0: t[6].expect_real()?,
            y0: t[7].expect_real()?,
            s0: t[8].expect_real()?,
        },
        1 => ProblemKind::Manufactured,
        k => return Err(MfError::App(format!("unknown problem kind {k}"))),
    };
    Ok(Problem {
        ax: t[0].expect_real()?,
        ay: t[1].expect_real()?,
        eps: t[2].expect_real()?,
        t0: t[3].expect_real()?,
        t_end: t[4].expect_real()?,
        kind,
    })
}

/// Encode a subsolve request for the master → worker stream.
pub fn request_to_unit(req: &SubsolveRequest) -> Unit {
    let initial = match &req.initial_interior {
        // Share the buffer with the request — encoding copies nothing.
        Some(v) => Unit::reals_shared(v.clone()),
        None => Unit::int(-1), // sentinel: sample the initial condition
    };
    Unit::tuple(vec![
        Unit::int(req.root as i64),
        Unit::int(req.l as i64),
        Unit::int(req.m as i64),
        Unit::real(req.t0),
        Unit::real(req.t1),
        Unit::real(req.tol),
        problem_to_unit(&req.problem),
        initial,
    ])
}

/// Decode a subsolve request on the worker side.
pub fn request_from_unit(u: &Unit) -> MfResult<SubsolveRequest> {
    let t = u
        .as_tuple()
        .ok_or(MfError::UnitType { expected: "Tuple" })?;
    if t.len() != 8 {
        return Err(MfError::App(format!("request tuple arity {}", t.len())));
    }
    let initial_interior = match &t[7] {
        Unit::Int(-1) => None,
        Unit::Reals(v) => Some(v.clone()),
        other => return Err(MfError::App(format!("bad initial data field: {other:?}"))),
    };
    Ok(SubsolveRequest {
        root: t[0].expect_int()? as u32,
        l: t[1].expect_int()? as u32,
        m: t[2].expect_int()? as u32,
        t0: t[3].expect_real()?,
        t1: t[4].expect_real()?,
        tol: t[5].expect_real()?,
        problem: problem_from_unit(&t[6])?,
        initial_interior,
    })
}

/// Encode a subsolve result for the worker → master.dataport stream.
pub fn result_to_unit(res: &SubsolveResult) -> Unit {
    Unit::tuple(vec![
        Unit::int(res.l as i64),
        Unit::int(res.m as i64),
        Unit::reals_shared(res.values.clone()),
        Unit::int(res.steps as i64),
        Unit::int(res.rejected as i64),
        Unit::tuple(vec![
            Unit::int(res.work.flops as i64),
            Unit::int(res.work.steps as i64),
            Unit::int(res.work.rejected as i64),
            Unit::int(res.work.lin_iters as i64),
            Unit::int(res.work.factorizations as i64),
            Unit::int(res.work.refactorizations as i64),
            Unit::int(res.work.assemblies as i64),
            Unit::int(res.work.batched_rhs as i64),
        ]),
    ])
}

/// Decode a subsolve result on the master side. Accepts both the current
/// 8-field work tuple and the pre-batching 7-field shape (a result written
/// by an older worker simply reports `batched_rhs = 0`).
pub fn result_from_unit(u: &Unit) -> MfResult<SubsolveResult> {
    let t = u
        .as_tuple()
        .ok_or(MfError::UnitType { expected: "Tuple" })?;
    if t.len() != 6 {
        return Err(MfError::App(format!("result tuple arity {}", t.len())));
    }
    let w = t[5]
        .as_tuple()
        .ok_or(MfError::UnitType { expected: "Tuple" })?;
    if w.len() != 7 && w.len() != 8 {
        return Err(MfError::App("bad work tuple".into()));
    }
    Ok(SubsolveResult {
        l: t[0].expect_int()? as u32,
        m: t[1].expect_int()? as u32,
        values: t[2].expect_reals()?,
        steps: t[3].expect_int()? as usize,
        rejected: t[4].expect_int()? as usize,
        work: WorkCounter {
            flops: w[0].expect_int()? as u64,
            steps: w[1].expect_int()? as u64,
            rejected: w[2].expect_int()? as u64,
            lin_iters: w[3].expect_int()? as u64,
            factorizations: w[4].expect_int()? as u64,
            refactorizations: w[5].expect_int()? as u64,
            assemblies: w[6].expect_int()? as u64,
            batched_rhs: if w.len() == 8 {
                w[7].expect_int()? as u64
            } else {
                0
            },
        },
    })
}

/// Tag distinguishing a bundled (multi-request) job or result unit from a
/// single one. A single request tuple has arity 8 and a single result
/// arity 6, so a 2-tuple opening with this sentinel is unambiguous.
const BATCH_TAG: i64 = -2;

/// Encode a job bundle for the master → worker stream: the worker runs the
/// whole bundle through `solver::subsolve_batch`, batching same-shape
/// members through the multi-RHS kernels.
pub fn batch_request_to_unit(reqs: &[SubsolveRequest]) -> Unit {
    Unit::tuple(vec![
        Unit::int(BATCH_TAG),
        Unit::tuple(reqs.iter().map(request_to_unit).collect()),
    ])
}

fn as_batch(u: &Unit) -> Option<&[Unit]> {
    match u.as_tuple() {
        Some([tag, body]) if tag.as_int() == Some(BATCH_TAG) => body.as_tuple(),
        _ => None,
    }
}

/// Decode a worker job that may be a single request or a bundle. Returns
/// the requests plus whether the job arrived bundled (the reply must use
/// the same shape).
pub fn requests_from_unit(u: &Unit) -> MfResult<(Vec<SubsolveRequest>, bool)> {
    match as_batch(u) {
        Some(items) => {
            let reqs = items
                .iter()
                .map(request_from_unit)
                .collect::<MfResult<Vec<_>>>()?;
            if reqs.is_empty() {
                return Err(MfError::App("empty job bundle".into()));
            }
            Ok((reqs, true))
        }
        None => Ok((vec![request_from_unit(u)?], false)),
    }
}

/// Encode a bundle of results (the reply to a bundled job).
pub fn batch_results_to_unit(rs: &[SubsolveResult]) -> Unit {
    Unit::tuple(vec![
        Unit::int(BATCH_TAG),
        Unit::tuple(rs.iter().map(result_to_unit).collect()),
    ])
}

/// Decode a collected unit that may hold one result or a bundle.
pub fn results_from_unit(u: &Unit) -> MfResult<Vec<SubsolveResult>> {
    match as_batch(u) {
        Some(items) => items.iter().map(result_from_unit).collect(),
        None => Ok(vec![result_from_unit(u)?]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solver::subsolve::subsolve;

    #[test]
    fn request_round_trip_without_data() {
        let p = Problem::transport_benchmark();
        let req = SubsolveRequest::for_grid(2, 3, 1, 1e-3, p);
        let back = request_from_unit(&request_to_unit(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_round_trip_with_data() {
        let p = Problem::manufactured_benchmark();
        let mut req = SubsolveRequest::for_grid(2, 1, 1, 1e-4, p);
        req.initial_interior = Some(std::sync::Arc::new(vec![1.0, 2.5, -3.0]));
        let back = request_from_unit(&request_to_unit(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn result_round_trip_is_exact() {
        let p = Problem::manufactured_benchmark();
        let req = SubsolveRequest::for_grid(2, 1, 0, 1e-3, p);
        let res = subsolve(&req).unwrap();
        let back = result_from_unit(&result_to_unit(&res)).unwrap();
        assert_eq!(back, res);
    }

    #[test]
    fn manufactured_problem_round_trips() {
        let p = Problem::manufactured_benchmark();
        let u = problem_to_unit(&p);
        assert_eq!(problem_from_unit(&u).unwrap(), p);
    }

    #[test]
    fn bad_payload_is_rejected() {
        assert!(request_from_unit(&Unit::int(3)).is_err());
        assert!(result_from_unit(&Unit::tuple(vec![Unit::int(1)])).is_err());
        assert!(problem_from_unit(&Unit::tuple(vec![Unit::int(1); 9])).is_err());
    }

    #[test]
    fn bulk_data_is_shared_not_copied() {
        let p = Problem::transport_benchmark();
        let req = SubsolveRequest::for_grid(2, 2, 2, 1e-3, p);
        let res = subsolve(&req).unwrap();
        let unit = result_to_unit(&res);
        let clone = unit.clone();
        match (&unit, &clone) {
            (Unit::Tuple(a), Unit::Tuple(b)) => {
                assert!(std::sync::Arc::ptr_eq(a, b));
            }
            _ => unreachable!(),
        }
        // Stronger: the whole encode → decode round trip hands back the
        // *same* allocation, so a result's node field crosses the port
        // without a single deep copy.
        let back = result_from_unit(&unit).unwrap();
        assert!(std::sync::Arc::ptr_eq(&back.values, &res.values));
    }

    #[test]
    fn batch_request_round_trips_and_single_decode_passes_through() {
        let p = Problem::transport_benchmark();
        let reqs: Vec<SubsolveRequest> = [1e-3, 1e-4, 2e-3]
            .iter()
            .map(|&tol| SubsolveRequest::for_grid(2, 1, 1, tol, p))
            .collect();
        let (back, batched) = requests_from_unit(&batch_request_to_unit(&reqs)).unwrap();
        assert!(batched);
        assert_eq!(back, reqs);
        let (one, batched) = requests_from_unit(&request_to_unit(&reqs[0])).unwrap();
        assert!(!batched);
        assert_eq!(one, vec![reqs[0].clone()]);
        // Empty bundles are wire errors, not silent no-ops.
        assert!(requests_from_unit(&batch_request_to_unit(&[])).is_err());
    }

    #[test]
    fn batch_results_round_trip_exactly() {
        let p = Problem::manufactured_benchmark();
        let a = subsolve(&SubsolveRequest::for_grid(2, 1, 0, 1e-3, p)).unwrap();
        let b = subsolve(&SubsolveRequest::for_grid(2, 0, 1, 1e-3, p)).unwrap();
        let rs = vec![a.clone(), b];
        let back = results_from_unit(&batch_results_to_unit(&rs)).unwrap();
        assert_eq!(back, rs);
        // A single result unit decodes as a one-element batch.
        assert_eq!(results_from_unit(&result_to_unit(&a)).unwrap(), vec![a]);
    }

    #[test]
    fn legacy_seven_field_work_tuple_still_decodes() {
        // Results written before the batched_rhs field existed must decode
        // with batched_rhs = 0 and everything else intact.
        let p = Problem::manufactured_benchmark();
        let res = subsolve(&SubsolveRequest::for_grid(2, 1, 0, 1e-3, p)).unwrap();
        let mut u = result_to_unit(&res);
        if let Unit::Tuple(t) = &mut u {
            let t = std::sync::Arc::make_mut(t);
            if let Unit::Tuple(w) = &mut t[5] {
                std::sync::Arc::make_mut(w).pop();
            }
        }
        let legacy = result_from_unit(&u).unwrap();
        assert_eq!(legacy.work.batched_rhs, 0);
        assert_eq!(legacy.work.flops, res.work.flops);
        assert_eq!(legacy.values, res.values);
    }

    #[test]
    fn request_initial_data_is_shared_not_copied() {
        let p = Problem::manufactured_benchmark();
        let mut req = SubsolveRequest::for_grid(2, 1, 1, 1e-4, p);
        req.initial_interior = Some(std::sync::Arc::new(vec![0.5; 9]));
        let back = request_from_unit(&request_to_unit(&req)).unwrap();
        assert!(std::sync::Arc::ptr_eq(
            back.initial_interior.as_ref().unwrap(),
            req.initial_interior.as_ref().unwrap()
        ));
    }
}
