//! The Table 1 / Figure 1 experiment driver.
//!
//! Runs the paper's full parameter sweep — root 2, additional refinement
//! levels 0 through 15, integrator tolerances 1.0e-3 and 1.0e-4, five runs
//! averaged — on the simulated 32-machine cluster, producing the same
//! four columns the paper reports: average sequential time (`st`), average
//! concurrent time (`ct`), weighted average machines (`m`), and speedup
//! (`su = st / ct`).

use cluster::hosts::paper_cluster;
use cluster::sim::{DistributedReport, DistributedSim};
use protocol::{DispatchPolicy, PaperFaithful};

use crate::cost::CostModel;

/// One cell group of Table 1.
#[derive(Clone, Debug)]
pub struct ExperimentPoint {
    /// Additional refinement level (0–15).
    pub level: u32,
    /// Integrator tolerance.
    pub tol: f64,
    /// Average sequential time (s).
    pub st: f64,
    /// Average concurrent time (s).
    pub ct: f64,
    /// Weighted average of machines used.
    pub m: f64,
    /// Average speedup `st / ct`.
    pub su: f64,
    /// Peak machines over the averaged runs.
    pub peak: i64,
    /// Task forks in the first run (diagnostic).
    pub forks: usize,
}

/// The simulator configured as in §7 (32 paper machines, 100 Mbps switched
/// Ethernet, paper-era coordination costs).
pub fn paper_sim(model: &CostModel) -> DistributedSim {
    DistributedSim::new(paper_cluster(model.ref_flops_per_sec))
}

/// Reproduce Table 1: every `(tol, level)` combination, `runs` seeded
/// repetitions averaged. `data_through_master` selects the paper's design
/// (true) or the I/O-worker ablation (false).
pub fn run_distributed_experiment(
    levels: impl IntoIterator<Item = u32>,
    tols: &[f64],
    runs: usize,
    base_seed: u64,
    data_through_master: bool,
) -> Vec<ExperimentPoint> {
    run_distributed_experiment_with_policy(
        levels,
        tols,
        runs,
        base_seed,
        data_through_master,
        &PaperFaithful,
    )
}

/// [`run_distributed_experiment`] under an explicit dispatch policy, so the
/// Table 1 sweep can be regenerated per policy (the `--policy` flag of the
/// `table1` binary).
pub fn run_distributed_experiment_with_policy(
    levels: impl IntoIterator<Item = u32>,
    tols: &[f64],
    runs: usize,
    base_seed: u64,
    data_through_master: bool,
    policy: &dyn DispatchPolicy,
) -> Vec<ExperimentPoint> {
    let model = CostModel::paper_calibrated();
    let sim = paper_sim(&model);
    let mut out = Vec::new();
    let levels: Vec<u32> = levels.into_iter().collect();
    for &tol in tols {
        for &level in &levels {
            let wl = model.workload(2, level, tol, data_through_master);
            let seed = base_seed
                .wrapping_add(level as u64)
                .wrapping_add((tol * 1e7) as u64);
            let (st, ct, m, reports) = sim.run_averaged_with_policy(&wl, runs, seed, policy);
            let peak = reports.iter().map(|r| r.peak_machines).max().unwrap_or(0);
            let forks = reports.first().map_or(0, |r| r.task_forks);
            out.push(ExperimentPoint {
                level,
                tol,
                st,
                ct,
                m,
                su: st / ct,
                peak,
                forks,
            });
        }
    }
    out
}

/// One noise-free distributed run at `(level, tol)` returning the full
/// report (machine ebb & flow for Figure 1, chronological trace, …).
pub fn figure1_run(level: u32, tol: f64, seed: u64) -> DistributedReport {
    let model = CostModel::paper_calibrated();
    let sim = paper_sim(&model);
    let wl = model.workload(2, level, tol, true);
    let mut noise = cluster::noise::Perturbation::overnight(seed);
    sim.run(&wl, &mut noise)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole-table shape criteria from DESIGN.md, on a reduced sweep
    /// (full sweep in the bench binaries).
    #[test]
    fn shape_speedup_crossover_and_growth() {
        let pts = run_distributed_experiment([0, 4, 8, 10, 12, 15], &[1e-3], 3, 42, true);
        let by_level = |lvl: u32| pts.iter().find(|p| p.level == lvl).unwrap();
        // Criterion 1: no gain at low levels.
        assert!(by_level(0).su < 1.0, "su(0) = {}", by_level(0).su);
        assert!(by_level(4).su < 1.0, "su(4) = {}", by_level(4).su);
        assert!(by_level(8).su < 1.0, "su(8) = {}", by_level(8).su);
        // Crossover around level 10.
        assert!(by_level(10).su > 0.8, "su(10) = {}", by_level(10).su);
        assert!(by_level(12).su > 1.5, "su(12) = {}", by_level(12).su);
        // Criterion 2: substantial speedup at level 15.
        let su15 = by_level(15).su;
        assert!((5.0..12.0).contains(&su15), "su(15) = {su15}");
        // Criterion 3: machine usage grows with level.
        assert!(by_level(15).m > by_level(10).m);
        assert!(by_level(10).m > by_level(0).m);
        assert!(by_level(0).m >= 1.0 && by_level(0).m < 4.0);
    }

    #[test]
    fn tighter_tolerance_slower_but_similar_speedup() {
        let pts = run_distributed_experiment([12], &[1e-3, 1e-4], 2, 7, true);
        let loose = &pts[0];
        let tight = &pts[1];
        assert!(
            tight.st > 1.8 * loose.st,
            "st ratio {}",
            tight.st / loose.st
        );
        assert!(tight.ct > loose.ct);
        // Speedups of the two tolerance families are close (paper: 2.9 vs
        // 4.6 at level 12; same order).
        assert!((tight.su / loose.su) > 0.5 && (tight.su / loose.su) < 2.5);
    }

    #[test]
    fn figure1_run_reaches_peak_32() {
        // The paper's Figure 1 run: level 15, "sometimes uses 32 machines".
        // At tolerance 1.0e-4 the lm = 14 workers outlive the feeding phase
        // and all 31 workers plus the master are briefly alive together.
        let report = figure1_run(15, 1e-4, 1);
        assert!(report.elapsed > 100.0, "elapsed {}", report.elapsed);
        assert!(report.peak_machines >= 25, "peak {}", report.peak_machines);
        assert!(report.peak_machines <= 32);
    }

    #[test]
    fn figure1_run_has_ebb_and_flow() {
        // At 1.0e-3 the cheap mid-diagonal lm = 14 workers die while the
        // master is still feeding the lm = 15 diagonal: the machine count
        // dips and then grows again — the expansion/shrinking of Figure 1.
        let report = figure1_run(15, 1e-3, 1);
        let samples = report.busy.sample(0.0, report.elapsed, 400);
        let vals: Vec<i64> = samples.iter().map(|&(_, v)| v).collect();
        let mut best_dip = 0i64;
        let mut running_max = vals[0];
        let mut min_since_max = vals[0];
        for &v in &vals[1..] {
            if v > running_max {
                running_max = v;
                min_since_max = v;
            }
            min_since_max = min_since_max.min(v);
            best_dip =
                best_dip.max((running_max - min_since_max).min(v.saturating_sub(min_since_max)));
        }
        assert!(
            best_dip >= 2,
            "expected a ≥2-machine dip-then-rise, best was {best_dip}"
        );
        // And it shrinks back down after the peak.
        let peak = report.peak_machines;
        assert!(vals.last().copied().unwrap_or(0) < peak);
    }

    #[test]
    fn bounded_policy_throttles_the_sweep() {
        let paper = run_distributed_experiment([12], &[1e-3], 2, 9, true);
        let bounded = run_distributed_experiment_with_policy(
            [12],
            &[1e-3],
            2,
            9,
            true,
            &protocol::BoundedReuse::new(2),
        );
        // Two workers in flight + the master: peak machines capped at 3,
        // and the concurrent time can only grow.
        assert!(bounded[0].peak <= 3, "peak {}", bounded[0].peak);
        assert!(bounded[0].peak < paper[0].peak);
        assert!(bounded[0].ct >= paper[0].ct);
        // The sequential column does not depend on the policy.
        assert_eq!(bounded[0].st, paper[0].st);
    }

    #[test]
    fn workers_match_formula_in_reports() {
        let report = figure1_run(3, 1e-3, 2);
        // 2*3+1 workers → 7 Welcome + 7 Bye + master's pair.
        let welcomes = report
            .records
            .iter()
            .filter(|r| r.message == "Welcome")
            .count();
        assert_eq!(welcomes, 8);
    }
}
