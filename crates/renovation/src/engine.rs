//! The multi-job [`Engine`]: one persistent worker fleet, many jobs.
//!
//! The one-shot entry points ([`run_concurrent`](crate::run_concurrent),
//! [`run_concurrent_procs`](crate::run_concurrent_procs), the simulated
//! runs) bring a whole deployment up — MANIFOLD environment, worker
//! processes, sockets — solve one problem, and tear everything down. That
//! is the paper's batch shape, but a renovated application serving a
//! *stream* of problems should pay the bring-up once. `Engine` is that
//! refactor: construct it once with a backend, then [`Engine::submit`] any
//! number of [`AppConfig`]s against the same fleet.
//!
//! Lifecycle:
//!
//! ```text
//! Engine::new ──► fleet up (env / worker processes / simulated cluster)
//!    submit(cfg₁) ─► job-scoped master #1 ─► JobReport (bit-identical)
//!    submit(cfg₂) ─► job-scoped master #2 ─► JobReport (warm: no bring-up)
//!    ...
//! engine.shutdown() ──► fleet down, EngineSummary
//! ```
//!
//! Every job runs a *fresh, job-scoped* master over the *shared* fleet:
//! the [`protocol::PerpetualPool`] serves each master in turn (threads and
//! procs), worker processes survive across jobs with every wire unit
//! tagged by job id (procs), and the discrete-event simulation keeps one
//! virtual timeline with parked perpetual task instances
//! ([`cluster::SimFleet`]). Per-job numerical results are bit-identical to
//! a solo one-shot run of the same configuration on every backend; the
//! one-shot entry points are now thin wrappers over a single-job engine.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chaos::{FaultKind, FaultPlan};
use cluster::{Perturbation, SimFleet};
use manifold::prelude::*;
use manifold::remote::{ConduitSource, RemoteIdentity};
use manifold::trace::TraceRecord;
use parking_lot::Mutex;
use protocol::{MasterHandle, PaperFaithful, PerpetualPool, PolicyRef, PoolStats, ProtocolOutcome};
use solver::sequential::{SequentialApp, SequentialResult};
use transport::{PoolConfig, RemoteWorkerPool};

use crate::app::{ConcurrentResult, RunMode};
use crate::checkpoint::CheckpointStore;
use crate::cost::CostModel;
use crate::master::{master_body, FleetMembership, MasterConfig};
use crate::procs::{GaugedSource, ProcsConfig};
use crate::virtualrun::paper_sim;
use crate::worker::{worker_factory_chaos, worker_factory_with_gauge, WorkerGauge};

/// Which fleet an [`Engine`] runs on.
pub enum EngineBackend {
    /// Worker process instances as threads in one OS process (the paper's
    /// parallel/distributed deployments, chosen by [`RunMode`]).
    Threads {
        /// Link/configure stage choice for the fleet's environment.
        mode: RunMode,
    },
    /// Worker task instances as separate OS processes over TCP or Unix
    /// sockets; the processes survive across jobs.
    Procs {
        /// Pool shape (instances, bind mode, worker binary, timeouts).
        cfg: ProcsConfig,
    },
    /// The discrete-event simulation of the paper's workstation cluster,
    /// on one continuous virtual timeline.
    Sim {
        /// `None` runs noise-free; `Some(seed)` applies the seeded
        /// overnight multi-user noise model.
        noise_seed: Option<u64>,
    },
}

/// Fleet-construction options — the engine-lifetime analogue of
/// [`RunOpts`](crate::RunOpts).
#[derive(Clone, Debug)]
pub struct EngineOpts {
    /// Largest `app.level` the fleet must accommodate: sizes the MANIFOLD
    /// link load (threads/procs). Submitting a job above this capacity
    /// exhausts the instance load and fails the job, not the fleet.
    pub capacity_level: u32,
    /// Fault schedule. Job ordinals count across the fleet's whole life,
    /// so a plan can target any job the engine will ever serve — fault
    /// plans extend across job boundaries.
    pub faults: Option<FaultPlan>,
    /// Persist a checkpoint after every collected result (per job).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume the *first* submitted job from the checkpoint in
    /// `checkpoint_dir` (no-op when none exists yet).
    pub resume: bool,
    /// Override the lost-worker retry budget (default: backend's own).
    pub retry_budget: Option<usize>,
    /// Sharded dispatch: partition each job's dispatch sequence across
    /// this many shard masters (with optional work stealing). The default
    /// single shard is the flat master, byte for byte. On the procs
    /// backend the worker processes are also partitioned into matching
    /// pools and checkouts prefer the dispatching shard's pool.
    pub shards: protocol::ShardSpec,
    /// Membership churn plan: worker joins/leaves fired at 1-based
    /// dispatch ordinals (per job). Real on the procs backend (processes
    /// are added/retired mid-run); inert on threads and sim, whose
    /// workers are anonymous.
    pub churn: protocol::ChurnPlan,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            capacity_level: 15,
            faults: None,
            checkpoint_dir: None,
            resume: false,
            retry_budget: None,
            shards: protocol::ShardSpec::default(),
            churn: protocol::ChurnPlan::default(),
        }
    }
}

/// One job's configuration: the problem plus its per-job knobs.
#[derive(Clone)]
pub struct AppConfig {
    /// The problem to solve (root grid, level, tolerance).
    pub app: SequentialApp,
    /// The paper's design (true) or the §4.1 I/O-worker variant (false).
    pub data_through_master: bool,
    /// Dispatch policy for this job; `None` uses the engine's default.
    pub policy: Option<PolicyRef>,
    /// Jobs per worker dispatch (see [`MasterConfig::batch_width`]); the
    /// default 1 is the paper's one-job-per-worker protocol.
    pub batch_width: usize,
}

impl AppConfig {
    /// A job with the paper's defaults (data through the master).
    pub fn new(app: SequentialApp) -> Self {
        AppConfig {
            app,
            data_through_master: true,
            policy: None,
            batch_width: 1,
        }
    }

    /// Bundle up to `width` subsolves per worker dispatch; the worker runs
    /// each bundle through the batched multi-RHS solver path.
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width.max(1);
        self
    }

    /// Select the §4.1 I/O-worker data path.
    pub fn with_data_through_master(mut self, through_master: bool) -> Self {
        self.data_through_master = through_master;
        self
    }

    /// Dispatch this job under `policy` instead of the engine's default.
    pub fn with_policy(mut self, policy: PolicyRef) -> Self {
        self.policy = Some(policy);
        self
    }
}

/// What one served job produced.
#[derive(Debug)]
pub struct JobReport {
    /// Engine-assigned job id (1-based, fleet-lifetime).
    pub job: u64,
    /// The numerical result — bit-identical to a solo run.
    pub result: SequentialResult,
    /// Protocol bookkeeping for *this job's* pools.
    pub outcome: ProtocolOutcome,
    /// This job's slice of the chronological §6 trace. On the procs
    /// backend the children's records arrive only at fleet shutdown, so
    /// this holds the coordinator-side records.
    pub records: Vec<TraceRecord>,
    /// Machines hosting task instances (procs: coordinator side only).
    pub machines_used: usize,
    /// Peak workers simultaneously in their compute section during this
    /// job (sim: peak busy machines).
    pub peak_concurrent_workers: usize,
    /// Submit-to-completion latency: wall-clock seconds on the live
    /// backends, virtual seconds on the simulator.
    pub latency_s: f64,
}

impl JobReport {
    /// Lower to the one-shot result shape.
    pub fn into_concurrent(self) -> ConcurrentResult {
        ConcurrentResult {
            result: self.result,
            outcome: self.outcome,
            records: self.records,
            machines_used: self.machines_used,
            peak_concurrent_workers: self.peak_concurrent_workers,
        }
    }
}

/// Why [`Engine::submit`] refused a job *before* running it.
///
/// These are admission-shaped errors: a serving layer in front of the
/// engine (see `crates/serve`) converts them into backpressure replies
/// instead of failing a whole connection, and nothing in this path
/// panics. A job that was *accepted* and then failed reports through
/// [`JobHandle::wait`] as usual.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The job's `app.level` exceeds the fleet's provisioned
    /// [`EngineOpts::capacity_level`]. Running it would exhaust the
    /// MANIFOLD instance load mid-job; refusing it up front keeps the
    /// fleet serviceable and gives the caller a typed retry-with-smaller
    /// signal.
    OverCapacity {
        /// The requested refinement level.
        level: u32,
        /// What the fleet was provisioned for.
        capacity: u32,
    },
    /// An earlier job's failure took the fleet itself down (environment
    /// killed, worker pool gone). Every subsequent submit is refused with
    /// the original diagnosis; the engine must be rebuilt.
    FleetDown {
        /// Root-cause diagnosis recorded when the fleet died.
        reason: String,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::OverCapacity { level, capacity } => write!(
                f,
                "job level {level} exceeds the fleet's provisioned capacity level {capacity}"
            ),
            SubmitError::FleetDown { reason } => {
                write!(f, "fleet is down: {reason}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<SubmitError> for MfError {
    fn from(e: SubmitError) -> MfError {
        MfError::App(e.to_string())
    }
}

/// Handle to one submitted job.
///
/// Submission currently runs the job to completion before returning, so
/// the handle is already resolved; the API keeps the submit/wait split so
/// callers are written against the streaming shape.
pub struct JobHandle {
    id: u64,
    report: MfResult<JobReport>,
}

impl JobHandle {
    /// Engine-assigned job id (1-based).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job's outcome.
    pub fn wait(self) -> MfResult<JobReport> {
        self.report
    }
}

/// What the fleet did over its whole life.
#[derive(Debug)]
pub struct EngineSummary {
    /// Jobs served to completion (successful masters).
    pub jobs_served: usize,
    /// Workers created across every job.
    pub fleet_workers_created: usize,
    /// Procs backend only: per-child (slot, identity, trace text) reports
    /// collected at shutdown.
    pub child_reports: Vec<(u64, RemoteIdentity, Option<String>)>,
}

type WorkerFactory = Box<dyn FnMut(&Coord, &Name) -> ProcessRef>;

// One value per Engine; the variant size spread is irrelevant.
#[allow(clippy::large_enum_variant)]
enum BackendState {
    ThreadsFleet {
        env: Environment,
        gauge: Arc<WorkerGauge>,
        factory: WorkerFactory,
    },
    ProcsFleet {
        env: Environment,
        pool: Arc<RemoteWorkerPool>,
        gauge: Arc<WorkerGauge>,
        // Concrete so it can serve as both the ConduitSource and the
        // master's FleetMembership backend.
        source: Arc<GaugedSource>,
        instances: usize,
    },
    SimFleetState {
        fleet: SimFleet,
        noise: Perturbation,
        model: CostModel,
        workers_created: usize,
    },
}

/// A persistent worker fleet serving a stream of jobs. See the module
/// docs for the lifecycle.
pub struct Engine {
    state: BackendState,
    policy: PolicyRef,
    opts: EngineOpts,
    store: Option<Arc<CheckpointStore>>,
    resume_pending: bool,
    protocol_pool: PerpetualPool,
    next_job: u64,
    /// `Some(diagnosis)` once a failure killed the fleet itself; every
    /// later submit is refused with [`SubmitError::FleetDown`].
    down: Option<String>,
}

impl Engine {
    /// Bring a fleet up on `backend`. For procs this launches the worker
    /// processes — a missing worker binary fails here, not at submit.
    pub fn new(backend: EngineBackend, policy: PolicyRef, opts: EngineOpts) -> MfResult<Engine> {
        let store = match &opts.checkpoint_dir {
            Some(dir) => Some(Arc::new(CheckpointStore::new(dir)?)),
            None => None,
        };
        let state = match backend {
            EngineBackend::Threads { mode } => {
                let env = Environment::with_specs(
                    mode.link_spec(opts.capacity_level),
                    mode.config_spec(),
                );
                let gauge = WorkerGauge::new();
                // One factory for the fleet's whole life: a chaos factory's
                // pool-wide job counter then spans job boundaries, exactly
                // like a remote child's per-incarnation counter.
                let factory: WorkerFactory = match worker_faults(&opts.faults) {
                    Some(faults) if !faults.is_empty() => {
                        Box::new(worker_factory_chaos(gauge.clone(), faults))
                    }
                    _ => Box::new(worker_factory_with_gauge(gauge.clone())),
                };
                BackendState::ThreadsFleet {
                    env,
                    gauge,
                    factory,
                }
            }
            EngineBackend::Procs { cfg } => {
                let retry = opts.retry_budget.unwrap_or(cfg.retry_budget);
                let program = crate::procs::resolve_worker_exe(&cfg)?;
                let mut pool_cfg = PoolConfig::new(program);
                pool_cfg.instances = cfg.instances;
                pool_cfg.bind = cfg.bind;
                pool_cfg.hosts = cfg.hosts.clone();
                pool_cfg.job_timeout = cfg.job_timeout;
                pool_cfg.respawn_budget = retry;
                pool_cfg.shards = opts.shards.shards.max(1);
                pool_cfg.base_env = vec![(
                    "MF_WORKER_HEARTBEAT_MS".into(),
                    cfg.heartbeat.as_millis().to_string(),
                )];
                if let Some(plan) = opts.faults.as_ref().or(cfg.faults.as_ref()) {
                    pool_cfg
                        .base_env
                        .push(("MF_CHAOS_PLAN".into(), plan.to_string()));
                }
                let pool = Arc::new(RemoteWorkerPool::launch(
                    pool_cfg,
                    Arc::new(transport::LocalSpawner),
                )?);
                let link = LinkSpec::default()
                    .task("mainprog")
                    .perpetual(true)
                    .load(2 * opts.capacity_level + 8 + retry as u32)
                    .weight("Master", 1)
                    .weight("Worker", 1);
                let env = Environment::with_specs(
                    link,
                    manifold::config::ConfigSpec::with_startup("bumpa.sen.cwi.nl"),
                );
                let gauge = WorkerGauge::new();
                let source = Arc::new(GaugedSource::new(Arc::clone(&pool), Arc::clone(&gauge)));
                BackendState::ProcsFleet {
                    env,
                    pool,
                    gauge,
                    source,
                    instances: cfg.instances,
                }
            }
            EngineBackend::Sim { noise_seed } => {
                let model = CostModel::paper_calibrated();
                let sim = paper_sim(&model);
                let plan = opts.faults.clone().unwrap_or_default();
                let fleet = SimFleet::new(sim, &plan, opts.retry_budget.unwrap_or(3));
                let noise = match noise_seed {
                    Some(seed) => Perturbation::overnight(seed),
                    None => Perturbation::none(),
                };
                BackendState::SimFleetState {
                    fleet,
                    noise,
                    model,
                    workers_created: 0,
                }
            }
        };
        let resume_pending = opts.resume && store.is_some();
        Ok(Engine {
            state,
            policy,
            opts,
            store,
            resume_pending,
            protocol_pool: PerpetualPool::new(),
            next_job: 1,
            down: None,
        })
    }

    /// A threads-backend fleet.
    pub fn threads(mode: RunMode, policy: PolicyRef, opts: EngineOpts) -> MfResult<Engine> {
        Engine::new(EngineBackend::Threads { mode }, policy, opts)
    }

    /// A procs-backend fleet (launches the worker processes).
    pub fn procs(cfg: ProcsConfig, policy: PolicyRef, opts: EngineOpts) -> MfResult<Engine> {
        Engine::new(EngineBackend::Procs { cfg }, policy, opts)
    }

    /// A simulated fleet with the paper's defaults.
    pub fn sim(noise_seed: Option<u64>, policy: PolicyRef, opts: EngineOpts) -> MfResult<Engine> {
        Engine::new(EngineBackend::Sim { noise_seed }, policy, opts)
    }

    /// Fleet serving the paper's dispatch order with default options.
    pub fn paper_default(backend: EngineBackend) -> MfResult<Engine> {
        Engine::new(backend, Arc::new(PaperFaithful), EngineOpts::default())
    }

    /// Jobs this fleet has served to completion.
    pub fn jobs_served(&self) -> usize {
        match &self.state {
            BackendState::SimFleetState { fleet, .. } => fleet.jobs_served(),
            _ => self.protocol_pool.jobs_served(),
        }
    }

    /// Workers created across the fleet's whole life.
    pub fn fleet_workers_created(&self) -> usize {
        match &self.state {
            BackendState::SimFleetState {
                workers_created, ..
            } => *workers_created,
            _ => self.protocol_pool.fleet_workers_created(),
        }
    }

    /// Idle persistent capacity: parked perpetual task instances (threads,
    /// sim) or standing worker processes (procs).
    pub fn parked_workers(&self) -> usize {
        match &self.state {
            BackendState::ThreadsFleet { env, .. } => env.with_bundler(|b| b.parked_instances()),
            BackendState::ProcsFleet { instances, .. } => *instances,
            BackendState::SimFleetState { fleet, .. } => fleet.parked_workers(),
        }
    }

    /// Serve one job on the fleet. Runs to completion; the handle carries
    /// the report. A failed job leaves the fleet serviceable (its workers
    /// are reaped) unless the failure killed the fleet itself.
    ///
    /// Admission-shaped refusals — the job never started — come back as a
    /// typed [`SubmitError`] instead of a panic or an opaque `MfError`:
    /// a saturated fleet (job level above the provisioned capacity) and a
    /// dead fleet are both conditions a serving layer converts into
    /// backpressure replies.
    pub fn submit(&mut self, cfg: AppConfig) -> Result<JobHandle, SubmitError> {
        if let Some(reason) = &self.down {
            return Err(SubmitError::FleetDown {
                reason: reason.clone(),
            });
        }
        if cfg.app.level > self.opts.capacity_level {
            return Err(SubmitError::OverCapacity {
                level: cfg.app.level,
                capacity: self.opts.capacity_level,
            });
        }
        let id = self.next_job;
        self.next_job += 1;
        let report = self.run_job(id, cfg);
        if let Err(MfError::Killed) = &report {
            // The environment died under the job: the fleet is gone, not
            // just this job.
            self.down = Some("environment killed mid-job".into());
        }
        Ok(JobHandle { id, report })
    }

    /// Tear the fleet down and account for its life.
    pub fn shutdown(self) -> EngineSummary {
        let jobs_served = self.jobs_served();
        let fleet_workers_created = self.fleet_workers_created();
        let child_reports = match self.state {
            BackendState::ThreadsFleet { env, .. } => {
                env.shutdown();
                Vec::new()
            }
            BackendState::ProcsFleet { env, pool, .. } => {
                env.shutdown();
                pool.shutdown()
            }
            BackendState::SimFleetState { .. } => Vec::new(),
        };
        EngineSummary {
            jobs_served,
            fleet_workers_created,
            child_reports,
        }
    }

    fn master_config(&mut self, id: u64, cfg: &AppConfig) -> MfResult<(MasterConfig, PolicyRef)> {
        let policy = cfg.policy.clone().unwrap_or_else(|| self.policy.clone());
        let mut mc = MasterConfig::new(cfg.app, cfg.data_through_master)
            .with_policy(policy.clone())
            .with_batch_width(cfg.batch_width)
            .with_shards(self.opts.shards)
            .with_churn(self.opts.churn.clone());
        if let Some(budget) = self.opts.retry_budget {
            mc = mc.with_retry_budget(budget);
        }
        if let Some(store) = &self.store {
            if self.resume_pending {
                self.resume_pending = false;
                if let Some(ck) = store.load()? {
                    mc = mc.with_resume(ck);
                }
            }
            mc = mc.with_checkpoints(Arc::clone(store));
        }
        if let Some(plan) = &self.opts.faults {
            if let Some(k) = plan.master_kill() {
                // Collected-result ordinals restart with each job's
                // master, so the kill can fire once per job.
                mc = mc.with_master_kill_at(k);
            }
        }
        let _ = id;
        Ok((mc, policy))
    }

    fn run_job(&mut self, id: u64, cfg: AppConfig) -> MfResult<JobReport> {
        let (master_cfg, _policy) = self.master_config(id, &cfg)?;
        match &mut self.state {
            BackendState::ThreadsFleet {
                env,
                gauge,
                factory,
            } => run_live_job(
                id,
                master_cfg,
                env,
                gauge,
                &mut self.protocol_pool,
                LiveWorkers::Threads(factory),
            ),
            BackendState::ProcsFleet {
                env,
                pool,
                gauge,
                source,
                ..
            } => {
                pool.set_current_job(id);
                // The pool is the only backend with real membership:
                // sharded masters hint checkouts through it and churn
                // joins/retires worker processes.
                let master_cfg =
                    master_cfg.with_membership(Arc::clone(source) as Arc<dyn FleetMembership>);
                let dyn_source: Arc<dyn ConduitSource> = Arc::clone(source) as _;
                run_live_job(
                    id,
                    master_cfg,
                    env,
                    gauge,
                    &mut self.protocol_pool,
                    LiveWorkers::Remote(&dyn_source),
                )
            }
            BackendState::SimFleetState {
                fleet,
                noise,
                model,
                workers_created,
            } => {
                // The simulator replays the legacy computation for the
                // answer (bit-identical by construction) and runs the
                // fleet DES for the virtual-time performance report.
                let result = cfg
                    .app
                    .run()
                    .map_err(|e| MfError::App(format!("sequential core failed: {e}")))?;
                let policy = cfg.policy.unwrap_or_else(|| self.policy.clone());
                let wl = model.workload(
                    cfg.app.root,
                    cfg.app.level,
                    cfg.app.le_tol,
                    cfg.data_through_master,
                );
                let report = fleet
                    .submit(&wl, noise, policy.as_ref())
                    .map_err(MfError::App)?;
                let workers = report
                    .records
                    .iter()
                    .filter(|r| {
                        r.manifold_name.as_str() == "Worker(event)" && r.message == "Welcome"
                    })
                    .count();
                *workers_created += workers;
                let machines_used = report
                    .records
                    .iter()
                    .map(|r| r.host.as_str().to_string())
                    .collect::<BTreeSet<_>>()
                    .len();
                Ok(JobReport {
                    job: id,
                    result,
                    // One synthesized pool totalling the job: the DES has
                    // no per-pool protocol bookkeeping to report.
                    outcome: ProtocolOutcome::Finished {
                        pools: vec![PoolStats {
                            workers_created: workers,
                            deaths_counted: workers,
                        }],
                    },
                    machines_used,
                    peak_concurrent_workers: report.peak_machines.max(0) as usize,
                    latency_s: report.elapsed,
                    records: report.records,
                })
            }
        }
    }
}

enum LiveWorkers<'a> {
    Threads(&'a mut WorkerFactory),
    Remote(&'a Arc<dyn ConduitSource>),
}

/// One job on a live (threads or procs) fleet: a fresh job-scoped master
/// served by the shared [`PerpetualPool`] over the shared environment.
fn run_live_job(
    id: u64,
    master_cfg: MasterConfig,
    env: &Environment,
    gauge: &Arc<WorkerGauge>,
    protocol_pool: &mut PerpetualPool,
    workers: LiveWorkers<'_>,
) -> MfResult<JobReport> {
    let started = Instant::now();
    gauge.reset_peak();
    let trace_before = env.trace().len();
    let cell: Arc<Mutex<Option<SequentialResult>>> = Arc::new(Mutex::new(None));

    let run = env.run_coordinator("Main", |coord| {
        let coord_ref = coord.self_ref();
        let env2 = coord.env().clone();
        let cell2 = cell.clone();
        let master_cfg = master_cfg.clone();
        let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
            let h = MasterHandle::new(ctx, coord_ref, env2);
            let result = master_body(&h, &master_cfg)?;
            *cell2.lock() = Some(result);
            Ok(())
        });
        coord.activate(&master)?;
        let outcome = match workers {
            LiveWorkers::Threads(factory) => protocol_pool.serve(coord, &master, &mut **factory)?,
            LiveWorkers::Remote(source) => {
                let mut factory = protocol::remote_worker_factory(Arc::clone(source));
                protocol_pool.serve(coord, &master, &mut factory)?
            }
        };
        master.core().wait_terminated(Duration::from_secs(600))?;
        Ok(outcome)
    });

    // A failed job must not take the fleet with it: reap the job's dead
    // processes (collecting the root-cause failure detail the one-shot
    // paths surface) and leave the environment serving.
    let outcome = match run {
        Ok(o) => o,
        Err(e) => {
            if let Some((pid, err)) = env.reap().into_iter().next() {
                return Err(MfError::App(format!("process {pid:?} failed: {err}")));
            }
            return Err(e);
        }
    };
    let machines_used = env.with_bundler(|b| b.machines_in_use());
    // Only this job's slice: a warm fleet must not pay O(fleet history)
    // per submit.
    let records = env.trace().since(trace_before);
    if let Some((pid, err)) = env.reap().into_iter().next() {
        return Err(MfError::App(format!("process {pid:?} failed: {err}")));
    }
    let result = cell
        .lock()
        .take()
        .ok_or_else(|| MfError::App("master produced no result".into()))?;
    Ok(JobReport {
        job: id,
        result,
        outcome,
        machines_used: machines_used.max(
            records
                .iter()
                .map(|r| r.host.as_str().to_string())
                .collect::<BTreeSet<_>>()
                .len(),
        ),
        peak_concurrent_workers: gauge.peak(),
        latency_s: started.elapsed().as_secs_f64(),
        records,
    })
}

fn worker_faults(plan: &Option<FaultPlan>) -> Option<chaos::WorkerFaults> {
    let plan = plan.as_ref()?;
    let mut w = chaos::WorkerFaults::default();
    for f in &plan.faults {
        match *f {
            FaultKind::WorkerCrash { on_job, .. } => {
                w.crash_on_job.get_or_insert(on_job);
            }
            FaultKind::ConnStall { on_job, millis, .. } => {
                w.stall_on_job.get_or_insert((on_job, millis));
            }
            _ => {}
        }
    }
    Some(w)
}
