//! The Master wrapper: the original `main` minus `subsolve`, behind the
//! §4.3 master interface.
//!
//! The master performs the initialization ("the global data structure" —
//! here the per-grid initial fields), then delegates every `subsolve(l, m)`
//! of the nested loop to a worker in one pool, collects the results,
//! synchronizes through the rendezvous, and performs the prolongation
//! (combination) work itself — exactly the structure of the pseudo-program
//! in §3.

use manifold::mes;
use manifold::prelude::*;
use protocol::MasterHandle;
use solver::grid::Grid2;
use solver::sequential::{prolongation_phase, SequentialApp, SequentialResult};
use solver::subsolve::SubsolveResult;
use solver::{l2_norm, WorkCounter};

use crate::codec::{request_to_unit, result_from_unit};

/// Master-side configuration.
#[derive(Clone, Copy, Debug)]
pub struct MasterConfig {
    /// The application parameters (root, level, le_tol, problem).
    pub app: SequentialApp,
    /// When true (the paper's design), the master samples each grid's
    /// initial data during initialization and passes it to the worker
    /// through its own ports. When false (the §4.1 "I/O workers"
    /// alternative the authors did not try), workers obtain their input
    /// themselves and the master only sends job parameters.
    pub data_through_master: bool,
}

/// Run the master's life: steps 2–5 of the behavior interface. Returns the
/// full application result (identical to [`SequentialApp::run`]).
pub fn master_body(h: &MasterHandle, cfg: &MasterConfig) -> MfResult<SequentialResult> {
    let app = cfg.app;
    mes!(h.ctx(), "Welcome");

    // Step 2: initialization work — build the "global data structure".
    let grids = app.grids();
    let mut work = WorkCounter::new();
    let fine_grid = Grid2::finest(app.root, app.level);
    let problem = app.problem;
    let _init = fine_grid.sample(|x, y| problem.initial(x, y));
    work.add_vector_ops(fine_grid.node_count(), 2);

    // Step 3: one pool of workers, one per grid of the nested loop.
    h.create_pool();
    for idx in &grids {
        // (b)+(c): request a worker and activate it.
        let _worker = h.request_worker()?;
        // (d): write the job — with the initial data segment when the
        // master mediates all data.
        let mut req = app.request_for(*idx);
        if cfg.data_through_master {
            let g = Grid2::new(app.root, idx.l, idx.m);
            let mut interior = Vec::with_capacity(g.interior_count());
            for j in 1..g.ny {
                for i in 1..g.nx {
                    interior.push(problem.initial(g.x(i), g.y(j)));
                }
            }
            work.add_vector_ops(g.interior_count(), 2);
            req.initial_interior = Some(interior);
        }
        h.send_work(request_to_unit(&req))?;
    }

    // (f): collect all results from our own dataport.
    let mut per_grid: Vec<SubsolveResult> = Vec::with_capacity(grids.len());
    for _ in &grids {
        let res = result_from_unit(&h.collect()?)?;
        work.merge(&res.work);
        per_grid.push(res);
    }

    // (g)+(h): rendezvous.
    h.rendezvous()?;

    // Step 4: no more pools needed.
    h.finished();

    // Step 5: final sequential computation — the prolongation.
    // (`combine` looks grids up by index, so collection order — which is
    // nondeterministic under the port merge — cannot affect the result.)
    per_grid.sort_by_key(|r| (r.l + r.m, r.l));
    let combined = prolongation_phase(app.root, app.level, &per_grid, &mut work);
    let t_end = problem.t_end;
    let exact = fine_grid.sample(|x, y| problem.exact(x, y, t_end));
    let diff: Vec<f64> = combined.iter().zip(&exact).map(|(a, b)| a - b).collect();
    let l2_error = l2_norm(&diff);
    mes!(h.ctx(), "Bye");

    Ok(SequentialResult {
        combined,
        fine_grid,
        per_grid,
        work,
        l2_error,
    })
}
