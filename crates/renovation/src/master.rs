//! The Master wrapper: the original `main` minus `subsolve`, behind the
//! §4.3 master interface.
//!
//! The master performs the initialization ("the global data structure" —
//! here the per-grid initial fields), then delegates every `subsolve(l, m)`
//! of the nested loop to a worker in one pool, collects the results,
//! synchronizes through the rendezvous, and performs the prolongation
//! (combination) work itself — exactly the structure of the pseudo-program
//! in §3.
//!
//! Dispatch is *pipelined* and policy-driven: a [`DispatchPolicy`] decides
//! the job order (e.g. longest-processing-time-first from the a-priori
//! cost model in `solver::work`) and an in-flight window. The master keeps
//! at most `window` jobs outstanding, collecting a result before issuing
//! the next job once the window is full — so a bounded worker pool gets
//! backpressure instead of an unbounded feed-all-then-drain burst. The
//! default [`PaperFaithful`](protocol::PaperFaithful) policy uses natural
//! order and an unbounded window, reproducing the paper's protocol
//! exactly. Because the prolongation sorts per-grid results by index
//! before combining, *every* policy produces bit-identical output.

use std::fmt;
use std::sync::Arc;

use manifold::mes;
use manifold::prelude::*;
use protocol::{
    ChurnPlan, MasterHandle, PaperFaithful, PolicyRef, ShardPlan, ShardSpec, StealQueues,
};
use solver::grid::Grid2;
use solver::sequential::{prolongation_phase, SequentialApp, SequentialResult};
use solver::subsolve::SubsolveResult;
use solver::work::estimate_subsolve_flops;
use solver::{l2_norm, WorkCounter};

use crate::checkpoint::{Checkpoint, CheckpointStore, RunKey};
use crate::codec::{batch_request_to_unit, request_to_unit, results_from_unit};
use solver::subsolve::SubsolveRequest;

/// Master-side configuration.
#[derive(Clone)]
pub struct MasterConfig {
    /// The application parameters (root, level, le_tol, problem).
    pub app: SequentialApp,
    /// When true (the paper's design), the master samples each grid's
    /// initial data during initialization and passes it to the worker
    /// through its own ports. When false (the §4.1 "I/O workers"
    /// alternative the authors did not try), workers obtain their input
    /// themselves and the master only sends job parameters.
    pub data_through_master: bool,
    /// Dispatch policy: job order and in-flight window.
    pub policy: PolicyRef,
    /// How many lost-worker re-dispatches the master tolerates before
    /// giving up on the run. Only the process backend produces lost-job
    /// markers, so this is inert in a threads run.
    pub retry_budget: usize,
    /// When set, every collected result is checkpointed here, and the run
    /// can later resume bit-identically from the last snapshot.
    pub checkpoint: Option<Arc<CheckpointStore>>,
    /// A previously-saved snapshot to resume from: its results are
    /// restored (with full work accounting) and only the missing grids
    /// are dispatched.
    pub resume_from: Option<Checkpoint>,
    /// Chaos hook: abort the master (after checkpointing) once this many
    /// total results have been collected — the supervisor's relaunch path
    /// is exercised by exactly this failure.
    pub master_kill_at: Option<u64>,
    /// Jobs per worker dispatch. The default (1) is the paper's protocol:
    /// one subsolve per worker. Widths above 1 bundle consecutive jobs (in
    /// policy order) into one dispatch; the worker runs the bundle through
    /// `solver::subsolve_batch`, whose multi-RHS kernels batch same-shape
    /// members and whose results are bit-identical per job either way.
    pub batch_width: usize,
    /// Sharded dispatch: partition the policy-ordered job sequence across
    /// shard masters ([`ShardPlan`]) and dispatch in their interleaved
    /// round-robin order, with pop-two-merge work stealing when a shard's
    /// queue drains first. `ShardSpec::default()` (one shard) reproduces
    /// the flat master's dispatch loop byte for byte; any fixed shard
    /// count produces bit-identical numerics (the prolongation sorts by
    /// grid index).
    pub shards: ShardSpec,
    /// Membership churn: worker joins/leaves fired at 1-based dispatch
    /// ordinals. Requires a [`FleetMembership`] backend (procs); inert on
    /// backends without real membership (threads, sim).
    pub churn: ChurnPlan,
    /// Live membership operations (procs: the worker-process pool). `None`
    /// on backends whose workers are anonymous.
    pub membership: Option<Arc<dyn FleetMembership>>,
}

/// Live-fleet membership operations the master drives at dispatch
/// ordinals. The procs backend implements this over its worker-process
/// pool (`transport::RemoteWorkerPool`); backends with anonymous workers
/// have no implementation and churn is inert there.
pub trait FleetMembership: Send + Sync {
    /// Admit one worker, optionally into a specific pool (shard). Returns
    /// the new instance index.
    fn join(&self, pool: Option<u64>) -> MfResult<u64>;
    /// Retire one worker (the implementation chooses the victim). Returns
    /// the retired instance index, or `None` when nothing is retirable.
    fn leave(&self) -> MfResult<Option<u64>>;
    /// Affinity hint: the next worker checkout should prefer this pool
    /// (shard). Advisory and one-shot; implementations may ignore it.
    fn hint_pool(&self, _pool: u64) {}
}

impl MasterConfig {
    /// A configuration with the paper's verified dispatch behavior.
    pub fn new(app: SequentialApp, data_through_master: bool) -> Self {
        MasterConfig {
            app,
            data_through_master,
            policy: Arc::new(PaperFaithful),
            retry_budget: 3,
            checkpoint: None,
            resume_from: None,
            master_kill_at: None,
            batch_width: 1,
            shards: ShardSpec::default(),
            churn: ChurnPlan::default(),
            membership: None,
        }
    }

    /// Shard the dispatch across `spec.shards` shard masters.
    pub fn with_shards(mut self, spec: ShardSpec) -> Self {
        self.shards = spec;
        self
    }

    /// Fire worker joins/leaves at these dispatch ordinals.
    pub fn with_churn(mut self, churn: ChurnPlan) -> Self {
        self.churn = churn;
        self
    }

    /// Provide the live membership backend churn and pool hints act on.
    pub fn with_membership(mut self, membership: Arc<dyn FleetMembership>) -> Self {
        self.membership = Some(membership);
        self
    }

    /// Replace the dispatch policy.
    pub fn with_policy(mut self, policy: PolicyRef) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the lost-worker retry budget.
    pub fn with_retry_budget(mut self, budget: usize) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Checkpoint every collected result into `store`.
    pub fn with_checkpoints(mut self, store: Arc<CheckpointStore>) -> Self {
        self.checkpoint = Some(store);
        self
    }

    /// Resume from a previously-saved snapshot.
    pub fn with_resume(mut self, ck: Checkpoint) -> Self {
        self.resume_from = Some(ck);
        self
    }

    /// Inject a master death after `k` collected results.
    pub fn with_master_kill_at(mut self, k: u64) -> Self {
        self.master_kill_at = Some(k);
        self
    }

    /// Bundle up to `width` jobs per worker dispatch (1 = the paper's
    /// one-job-per-worker protocol).
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width.max(1);
        self
    }

    /// The identity of the run this configuration describes.
    pub fn run_key(&self) -> RunKey {
        RunKey::of(&self.app, self.data_through_master, self.policy.name())
    }
}

impl fmt::Debug for MasterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MasterConfig")
            .field("app", &self.app)
            .field("data_through_master", &self.data_through_master)
            .field("policy", &self.policy.name())
            .field("retry_budget", &self.retry_budget)
            .field("checkpointing", &self.checkpoint.is_some())
            .field(
                "resumed_results",
                &self.resume_from.as_ref().map(|c| c.completed.len()),
            )
            .field("master_kill_at", &self.master_kill_at)
            .field("batch_width", &self.batch_width)
            .field("shards", &self.shards)
            .field("churn", &self.churn)
            .field("membership", &self.membership.is_some())
            .finish()
    }
}

/// One planned dispatch: which job (index into the grid list), which
/// shard master issues it, and — when the shard obtained the job by
/// stealing — the steal event to attribute in the trace.
struct DispatchStep {
    job: usize,
    shard: usize,
    steal: Option<protocol::StealEvent>,
}

/// Lay out the sharded fleet's joint dispatch sequence and the per-shard
/// in-flight windows.
///
/// Each shard master drains its own queue round-robin, one job per turn;
/// a shard whose queue empties first steals from the longest queue
/// (pop-two-merge, [`StealQueues`]). The sequence this produces is the
/// same interleaved order the shard masters would jointly emit, so the
/// live master and the cluster DES agree on it by construction. With one
/// shard the sequence is exactly `order` and the per-shard window is
/// unbounded (the policy's global window alone governs), so the flat
/// dispatch loop is reproduced byte for byte.
fn plan_dispatch(
    order: &[usize],
    costs: &[f64],
    spec: &ShardSpec,
    policy: &PolicyRef,
) -> (Vec<DispatchStep>, Vec<usize>) {
    if spec.is_flat() || order.len() <= 1 {
        let steps = order
            .iter()
            .map(|&job| DispatchStep {
                job,
                shard: 0,
                steal: None,
            })
            .collect();
        return (steps, vec![usize::MAX]);
    }
    let shards = spec.shards.min(order.len());
    let seq_costs: Vec<f64> = order.iter().map(|&j| costs[j]).collect();
    let plan = ShardPlan::partition(&seq_costs, shards);
    let windows: Vec<usize> = plan
        .queues()
        .iter()
        .map(|q| policy.window(q.len()).max(1))
        .collect();
    let mut queues = StealQueues::new(&plan);
    let mut steps = Vec::with_capacity(order.len());
    let mut s = 0usize;
    while queues.total_pending() > 0 {
        if let Some(pos) = queues.pop_own(s) {
            steps.push(DispatchStep {
                job: order[pos],
                shard: s,
                steal: None,
            });
        } else if spec.steal {
            if let Some(ev) = queues.steal_into(s) {
                let pos = queues
                    .pop_own(s)
                    .expect("a steal leaves the thief's queue non-empty");
                steps.push(DispatchStep {
                    job: order[pos],
                    shard: s,
                    steal: Some(ev),
                });
            }
        }
        s = (s + 1) % shards;
    }
    debug_assert_eq!(steps.len(), order.len());
    (steps, windows)
}

/// Collect one worker's *computational* results from the dataport — one
/// result for a single-job dispatch, several for a bundle. A lost-job
/// marker (a proxy worker's remote instance died mid-job) is not a
/// result: the master requests a fresh worker, re-sends the recovered
/// job (single or bundle alike), and keeps collecting — so a killed
/// worker process costs one round-trip, bounded by the retry budget.
fn collect_results(h: &MasterHandle, retries_left: &mut usize) -> MfResult<Vec<SubsolveResult>> {
    loop {
        let unit = h.collect()?;
        if let Some((instance, reason, job)) = protocol::as_lost_job(&unit) {
            if *retries_left == 0 {
                return Err(MfError::App(format!(
                    "worker lost (instance {instance}: {reason}); retry budget exhausted"
                )));
            }
            *retries_left -= 1;
            mes!(
                h.ctx(),
                "worker lost (instance {instance}); re-dispatching job"
            );
            let _worker = h.request_worker()?;
            h.send_work(job.clone())?;
            continue;
        }
        return results_from_unit(&unit);
    }
}

/// Dispatch the accumulated bundle (if any) to a fresh worker: a bare
/// request unit for one job — byte-for-byte the paper's wire shape — or a
/// tagged bundle for several.
fn flush_bundle(
    h: &MasterHandle,
    pending: &mut Vec<SubsolveRequest>,
    in_flight: &mut usize,
) -> MfResult<()> {
    if pending.is_empty() {
        return Ok(());
    }
    let unit = if pending.len() == 1 {
        request_to_unit(&pending[0])
    } else {
        batch_request_to_unit(pending)
    };
    // (b)+(c): request a worker and activate it; (d): write the job.
    let _worker = h.request_worker()?;
    h.send_work(unit)?;
    *in_flight += 1;
    pending.clear();
    Ok(())
}

/// Run the master's life: steps 2–5 of the behavior interface. Returns the
/// full application result (identical to [`SequentialApp::run`]).
pub fn master_body(h: &MasterHandle, cfg: &MasterConfig) -> MfResult<SequentialResult> {
    let app = cfg.app;
    mes!(h.ctx(), "Welcome");

    // Step 2: initialization work — build the "global data structure".
    let grids = app.grids();
    let mut work = WorkCounter::new();
    let fine_grid = Grid2::finest(app.root, app.level);
    let problem = app.problem;
    let _init = fine_grid.sample(|x, y| problem.initial(x, y));
    work.add_vector_ops(fine_grid.node_count(), 2);

    // The policy sees the a-priori cost of each job (in natural grid
    // order) and answers with a dispatch order and an in-flight window.
    let costs: Vec<f64> = grids
        .iter()
        .map(|idx| estimate_subsolve_flops(app.root, idx.l, idx.m, app.le_tol))
        .collect();
    let order = cfg.policy.order(&costs);
    debug_assert_eq!(order.len(), grids.len());
    let window = cfg.policy.window(grids.len()).max(1);

    // Restore a snapshot before dispatching anything: the checkpoint must
    // belong to this exact run (parameters, problem, policy, and the
    // re-derived dispatch order), its results enter `per_grid` with the
    // same work accounting an uninterrupted run would have performed, and
    // the restored grids are simply never dispatched. WorkCounter adds
    // commute and the prolongation sorts by grid index, so the final
    // result is bit-identical either way.
    let key = cfg.run_key();
    let mut done = std::collections::BTreeSet::new();
    let mut per_grid: Vec<SubsolveResult> = Vec::with_capacity(grids.len());
    if let Some(ck) = &cfg.resume_from {
        ck.validate(&key, &order)?;
        for res in &ck.completed {
            if cfg.data_through_master {
                let g = Grid2::new(app.root, res.l, res.m);
                work.add_vector_ops(g.interior_count(), 2);
            }
            work.merge(&res.work);
            done.insert((res.l, res.m));
            per_grid.push(res.clone());
        }
        mes!(
            h.ctx(),
            "resume: {} of {} results restored from checkpoint",
            done.len(),
            grids.len()
        );
    }

    // Checkpoint after a freshly-collected result; then fire the injected
    // master death once the run has `kill_at` results in total. The
    // snapshot is written *before* the abort, and a resumed run restores
    // those `kill_at` results without re-collecting them — so the same
    // fault plan never kills the relaunched master a second time.
    let account = |work: &mut WorkCounter,
                   per_grid: &mut Vec<SubsolveResult>,
                   res: SubsolveResult|
     -> MfResult<()> {
        work.merge(&res.work);
        per_grid.push(res);
        if let Some(store) = &cfg.checkpoint {
            store.save(&Checkpoint {
                key: key.clone(),
                order: order.clone(),
                completed: per_grid.clone(),
            })?;
        }
        if cfg.master_kill_at == Some(per_grid.len() as u64) {
            return Err(MfError::App(format!(
                "chaos: master killed after {} results",
                per_grid.len()
            )));
        }
        Ok(())
    };

    // Step 3: one pool of workers. Pipelined dispatch: issue jobs in
    // policy order, but once `window` jobs are in flight, collect a result
    // before issuing the next — collection overlaps computation instead of
    // waiting for the full feed to finish.
    //
    // A sharded fleet dispatches the same jobs in the shard masters' joint
    // interleaved order, each shard bounded by its own window, with work
    // stealing and membership churn attributed in the trace. One shard is
    // byte-for-byte the flat loop.
    let (steps, shard_windows) = plan_dispatch(&order, &costs, &cfg.shards, &cfg.policy);
    let sharded = shard_windows.len() > 1;
    h.create_pool();
    let mut retries_left = cfg.retry_budget;
    let mut in_flight = 0usize;
    let mut shard_inflight = vec![0usize; shard_windows.len()];
    let mut shard_of: std::collections::BTreeMap<(u32, u32), usize> = Default::default();
    let mut dispatch_no: u64 = 0;
    let width = cfg.batch_width.max(1);
    let mut pending: Vec<SubsolveRequest> = Vec::new();
    let mut pending_shard = 0usize;
    for step in &steps {
        let idx = grids[step.job];
        if done.contains(&(idx.l, idx.m)) {
            continue;
        }
        while pending.is_empty()
            && in_flight > 0
            && (in_flight >= window || shard_inflight[step.shard] >= shard_windows[step.shard])
        {
            // (f): collect one worker's results from our own dataport,
            // freeing a slot.
            for res in collect_results(h, &mut retries_left)? {
                if let Some(&s) = shard_of.get(&(res.l, res.m)) {
                    shard_inflight[s] = shard_inflight[s].saturating_sub(1);
                }
                account(&mut work, &mut per_grid, res)?;
            }
            in_flight -= 1;
        }
        if let Some(ev) = &step.steal {
            mes!(
                h.ctx(),
                "steal: shard {} <- shard {} ({} jobs)",
                ev.thief,
                ev.victim,
                ev.jobs.len()
            );
        }
        // The dispatch sequence is the trace-visible signature of the
        // policy: the cross-backend tests require it to match between the
        // threads and the process backends line for line.
        if sharded {
            mes!(
                h.ctx(),
                "dispatch subsolve({}, {}) [shard {}]",
                idx.l,
                idx.m,
                step.shard
            );
        } else {
            mes!(h.ctx(), "dispatch subsolve({}, {})", idx.l, idx.m);
        }
        dispatch_no += 1;
        // Build the job — with the initial data segment when the master
        // mediates all data.
        let mut req = app.request_for(idx);
        if cfg.data_through_master {
            let g = Grid2::new(app.root, idx.l, idx.m);
            let interior = g.sample_interior(|x, y| problem.initial(x, y));
            work.add_vector_ops(g.interior_count(), 2);
            // Shared buffer: codec and port transfer add no copies.
            req.initial_interior = Some(Arc::new(interior));
        }
        if pending.is_empty() {
            pending_shard = step.shard;
        }
        shard_of.insert((idx.l, idx.m), step.shard);
        shard_inflight[step.shard] += 1;
        pending.push(req);
        if pending.len() >= width {
            if sharded {
                if let Some(members) = &cfg.membership {
                    members.hint_pool(pending_shard as u64);
                }
            }
            flush_bundle(h, &mut pending, &mut in_flight)?;
        }
        // Membership churn fires by dispatch ordinal, after the job that
        // reaches it: a joined worker is in the rotation from the next
        // dispatch on; a retirement waits for the victim's in-flight job
        // (the slot lock serializes them), so nothing is lost.
        if let Some(members) = &cfg.membership {
            if !cfg.churn.is_empty() {
                for _ in cfg.churn.joins.iter().filter(|&&at| at == dispatch_no) {
                    let inst = members.join(Some(step.shard as u64))?;
                    mes!(h.ctx(), "join: instance {} -> pool {}", inst, step.shard);
                }
                for _ in cfg.churn.leaves.iter().filter(|&&at| at == dispatch_no) {
                    if let Some(inst) = members.leave()? {
                        mes!(h.ctx(), "leave: instance {} retired", inst);
                    }
                }
            }
        }
    }
    if !pending.is_empty() && sharded {
        if let Some(members) = &cfg.membership {
            members.hint_pool(pending_shard as u64);
        }
    }
    flush_bundle(h, &mut pending, &mut in_flight)?;
    // (f): drain the remaining in-flight results.
    for _ in 0..in_flight {
        for res in collect_results(h, &mut retries_left)? {
            account(&mut work, &mut per_grid, res)?;
        }
    }
    // A finished run needs no snapshot; leaving one behind would make an
    // unrelated later run in the same directory refuse to start.
    if let Some(store) = &cfg.checkpoint {
        store.clear()?;
    }

    // (g)+(h): rendezvous.
    h.rendezvous()?;

    // Step 4: no more pools needed.
    h.finished();

    // Step 5: final sequential computation — the prolongation.
    // (`combine` looks grids up by index, so collection order — which
    // depends on the policy and the port merge — cannot affect the
    // result.)
    per_grid.sort_by_key(|r| (r.l + r.m, r.l));
    let combined = prolongation_phase(app.root, app.level, &per_grid, &mut work);
    let t_end = problem.t_end;
    let exact = fine_grid.sample(|x, y| problem.exact(x, y, t_end));
    let diff: Vec<f64> = combined.iter().zip(&exact).map(|(a, b)| a - b).collect();
    let l2_error = l2_norm(&diff);
    mes!(h.ctx(), "Bye");

    Ok(SequentialResult {
        combined,
        fine_grid,
        per_grid,
        work,
        l2_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn steps_of(order: &[usize], costs: &[f64], spec: &ShardSpec) -> Vec<DispatchStep> {
        let policy: PolicyRef = Arc::new(PaperFaithful);
        plan_dispatch(order, costs, spec, &policy).0
    }

    fn jobs_sorted(steps: &[DispatchStep]) -> Vec<usize> {
        let mut seen: Vec<usize> = steps.iter().map(|s| s.job).collect();
        seen.sort_unstable();
        seen
    }

    #[test]
    fn flat_plan_reproduces_the_order_verbatim() {
        let order = [3usize, 1, 4, 0, 2];
        let costs = [1.0; 5];
        let policy: PolicyRef = Arc::new(PaperFaithful);
        let (steps, windows) = plan_dispatch(&order, &costs, &ShardSpec::default(), &policy);
        assert_eq!(windows, vec![usize::MAX]);
        let jobs: Vec<usize> = steps.iter().map(|s| s.job).collect();
        assert_eq!(jobs, order);
        assert!(steps.iter().all(|s| s.shard == 0 && s.steal.is_none()));
    }

    #[test]
    fn skewed_costs_force_a_steal_and_lose_no_jobs() {
        // LPT hands shard 0 the one huge job and shard 1 the seven small
        // ones; shard 0's queue empties on its first turn and it must
        // steal to stay busy.
        let costs = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let order: Vec<usize> = (0..costs.len()).collect();
        let steps = steps_of(&order, &costs, &ShardSpec::new(2));
        assert_eq!(
            jobs_sorted(&steps),
            order,
            "every job dispatched exactly once"
        );
        assert!(
            steps.iter().any(|s| s.steal.is_some()),
            "the starved shard stole"
        );
        for s in &steps {
            assert!(s.shard < 2);
        }
    }

    #[test]
    fn disabling_steal_still_dispatches_every_job() {
        let costs = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let order: Vec<usize> = (0..costs.len()).collect();
        let steps = steps_of(&order, &costs, &ShardSpec::new(2).with_steal(false));
        assert!(steps.iter().all(|s| s.steal.is_none()));
        assert_eq!(jobs_sorted(&steps), order);
    }

    #[test]
    fn more_shards_than_jobs_clamps_to_the_job_count() {
        let costs = [2.0, 1.0];
        let order = [0usize, 1];
        let steps = steps_of(&order, &costs, &ShardSpec::new(8));
        assert_eq!(jobs_sorted(&steps), vec![0, 1]);
        assert!(steps.iter().all(|s| s.shard < 2));
    }
}
