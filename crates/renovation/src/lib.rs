//! # renovation — the renovated concurrent application
//!
//! The paper's end product: the sequential sparse-grid program restructured
//! into a concurrent application *without rewriting its numerical core*.
//! This crate contains the pieces §5 describes:
//!
//! * [`master`] — the Master wrapper: everything the original `main` did
//!   except the `subsolve` calls, expressed through the master behavior
//!   interface of §4.3 (create a pool, request workers, feed them, collect
//!   results, rendezvous, prolongate);
//! * [`worker`] — the Worker wrapper around `subsolve` (read the job from
//!   the input port, compute, write the result, raise `death_worker`);
//! * [`codec`] — the unit encoding of [`SubsolveRequest`] /
//!   [`SubsolveResult`] payloads travelling through MANIFOLD streams;
//! * [`app`] — `mainprog.m`: wiring Master + Worker into `ProtocolMW` under
//!   an [`Environment`], in the paper's two flavours — **parallel** (all
//!   processes bundled into one task instance: `load 6`) and
//!   **distributed** (one worker per task instance per machine: `load 1`,
//!   `perpetual`);
//! * [`engine`] — the multi-job [`Engine`](engine::Engine): one persistent
//!   worker fleet (threads, OS processes, or the simulated cluster)
//!   serving a stream of jobs, each bit-identical to a solo run; the
//!   one-shot entry points are thin wrappers over a single-job engine;
//! * [`cost`] — the calibrated cost model translating solver work into the
//!   virtual seconds of the `cluster` simulator;
//! * [`virtualrun`] — the Table 1 / Figure 1 experiment driver running the
//!   paper's full parameter sweep on the simulated cluster.
//!
//! The headline guarantee, tested end to end: the concurrent versions
//! produce **bit-identical** results to the sequential program ("These are
//! written to a file and are exactly the same as in the sequential
//! version", §6).
//!
//! [`SubsolveRequest`]: solver::SubsolveRequest
//! [`SubsolveResult`]: solver::SubsolveResult
//! [`Environment`]: manifold::Environment

pub mod app;
pub mod checkpoint;
pub mod codec;
pub mod cost;
pub mod engine;
pub mod master;
pub mod procs;
pub mod supervisor;
pub mod virtualrun;
pub mod worker;

pub use app::{
    run_concurrent, run_concurrent_opts, run_concurrent_with_policy, ConcurrentResult, RunMode,
    RunOpts,
};
pub use checkpoint::{atomic_replace, Checkpoint, CheckpointStore, RunKey};
pub use cost::{parse_subsolve_label, CostModel};
pub use engine::{
    AppConfig, Engine, EngineBackend, EngineOpts, EngineSummary, JobHandle, JobReport, SubmitError,
};
pub use master::{master_body, FleetMembership, MasterConfig};
pub use procs::{run_concurrent_procs, run_worker_child, ProcsConfig};
pub use supervisor::{supervise, SupervisedRun};
pub use virtualrun::{
    run_distributed_experiment, run_distributed_experiment_with_policy, ExperimentPoint,
};
pub use worker::{worker_factory, worker_factory_with_gauge, WorkerGauge};
