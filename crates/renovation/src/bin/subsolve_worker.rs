//! The worker-side task-instance executable.
//!
//! Launched by the coordinator's worker pool (or by hand for debugging),
//! parameterized entirely through the environment:
//!
//! * `MF_WORKER_ADDR` — `tcp:host:port` / `unix:path` to connect back to
//!   (required);
//! * `MF_WORKER_INSTANCE` — this child's pool slot (required);
//! * `MF_WORKER_HEARTBEAT_MS` — heartbeat cadence, default 100;
//! * `MF_CHAOS_PLAN` — fault injection: a [`chaos::FaultPlan`] in its
//!   textual form; this child applies only the faults naming its own
//!   instance (crash, connection drop, frame corruption, stall,
//!   heartbeat delay).
//!
//! Exit status: 0 after an orderly `Shutdown`, 1 on a configuration or
//! transport error, 42 on injected crash.

use std::process::exit;
use std::time::Duration;

use renovation::run_worker_child;
use transport::Addr;

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

fn main() {
    let addr = match std::env::var("MF_WORKER_ADDR")
        .map_err(|_| "missing".to_string())
        .and_then(|v| Addr::parse(&v))
    {
        Ok(a) => a,
        Err(e) => {
            eprintln!("subsolve_worker: MF_WORKER_ADDR: {e}");
            exit(1);
        }
    };
    let instance = match env_u64("MF_WORKER_INSTANCE") {
        Some(i) => i,
        None => {
            eprintln!("subsolve_worker: MF_WORKER_INSTANCE missing or unparsable");
            exit(1);
        }
    };
    let heartbeat = Duration::from_millis(env_u64("MF_WORKER_HEARTBEAT_MS").unwrap_or(100));
    let faults = match std::env::var("MF_CHAOS_PLAN") {
        Ok(text) => match chaos::FaultPlan::parse(&text) {
            Ok(plan) => plan.worker_faults(instance),
            Err(e) => {
                eprintln!("subsolve_worker: MF_CHAOS_PLAN: {e}");
                exit(1);
            }
        },
        Err(_) => chaos::WorkerFaults::default(),
    };

    match run_worker_child(addr, instance, heartbeat, faults) {
        Ok(summary) => {
            if !summary.clean_shutdown {
                eprintln!(
                    "subsolve_worker[{instance}]: coordinator vanished after {} job(s)",
                    summary.jobs_done + summary.jobs_failed
                );
            }
        }
        Err(e) => {
            eprintln!("subsolve_worker[{instance}]: {e}");
            exit(1);
        }
    }
}
