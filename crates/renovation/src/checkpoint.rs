//! Run-level checkpoints: versioned, atomically-written snapshots of the
//! master's progress, from which a killed run resumes bit-identically.
//!
//! A checkpoint records everything the master's deterministic replay
//! cannot recompute for free: the run's identity (parameters + problem +
//! policy — resuming under different ones is refused), the dispatch order
//! the policy chose, and every completed [`SubsolveResult`]. On resume the
//! master re-performs its (cheap, deterministic) initialization, replays
//! the recorded results into its accounting — including the per-grid
//! sampling work, so the final [`WorkCounter`](solver::WorkCounter) is
//! indistinguishable from an uninterrupted run's — and dispatches only the
//! grids that are still missing.
//!
//! On-disk format:
//!
//! ```text
//! "MFCK"  version:u32le  frame(encode_unit(state))
//! ```
//!
//! where `frame` is the transport's CRC-32-guarded framing — a torn or
//! bit-rotted checkpoint is *detected*, not silently resumed from.
//! Writes go to a temp file in the same directory followed by an atomic
//! rename, so a crash mid-write leaves the previous checkpoint intact.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use manifold::prelude::*;
use solver::sequential::SequentialApp;
use solver::subsolve::SubsolveResult;

use crate::codec::{problem_from_unit, problem_to_unit, result_from_unit, result_to_unit};

/// Magic bytes opening every checkpoint file.
pub const MAGIC: &[u8; 4] = b"MFCK";

/// Version of the checkpoint layout; mismatches are refused, not guessed.
pub const CHECKPOINT_VERSION: u32 = 1;

const FILE_NAME: &str = "run.ckpt";

/// Atomically replace `path` with `bytes`: write a temp file in the same
/// directory (same filesystem, so the rename cannot cross devices),
/// optionally fsync it, then rename over the destination. A crash at any
/// point leaves either the previous file or the new one — never a torn
/// mixture. This is the write discipline behind both the run checkpoints
/// here and the serving layer's journal segments.
pub fn atomic_replace(path: &Path, bytes: &[u8], fsync: bool) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "atomic".to_string());
    let tmp = dir.join(format!("{name}.tmp.{}", std::process::id()));
    let write = || -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        if fsync {
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    };
    write().inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// The identity of a run — a checkpoint only resumes a run with the very
/// same identity, because everything else about the replay is derived
/// deterministically from these.
#[derive(Clone, Debug, PartialEq)]
pub struct RunKey {
    /// Coarsest-grid refinement (`argv[1]`).
    pub root: u32,
    /// Refinement above the root (`argv[2]`).
    pub level: u32,
    /// Integrator tolerance, compared by bit pattern.
    pub le_tol: f64,
    /// Whether the master mediates all data (the paper's design).
    pub data_through_master: bool,
    /// Dispatch policy name — the order is persisted too, but a policy
    /// swap would silently change windowing, so it is part of identity.
    pub policy: String,
    /// The problem instance.
    pub problem: solver::problem::Problem,
}

impl RunKey {
    /// The key of a run of `app` under the named policy.
    pub fn of(app: &SequentialApp, data_through_master: bool, policy: &str) -> RunKey {
        RunKey {
            root: app.root,
            level: app.level,
            le_tol: app.le_tol,
            data_through_master,
            policy: policy.to_string(),
            problem: app.problem,
        }
    }

    fn matches(&self, other: &RunKey) -> Result<(), String> {
        if self.root != other.root
            || self.level != other.level
            || self.le_tol.to_bits() != other.le_tol.to_bits()
            || self.data_through_master != other.data_through_master
            || self.problem != other.problem
        {
            // Name both identities so the operator can tell at a glance
            // which side to fix; a mismatch is always an error, never a
            // silent fresh start.
            return Err(format!(
                "checkpoint is for root {}, level {}, tol {:e}, data_through_master {}; \
                 this run is root {}, level {}, tol {:e}, data_through_master {} — \
                 refusing to resume a run with different parameters",
                other.root,
                other.level,
                other.le_tol,
                other.data_through_master,
                self.root,
                self.level,
                self.le_tol,
                self.data_through_master
            ));
        }
        if self.policy != other.policy {
            return Err(format!(
                "checkpoint was written under dispatch policy {:?}, this run uses {:?}",
                other.policy, self.policy
            ));
        }
        Ok(())
    }
}

/// A snapshot of the master's progress.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Identity of the run this snapshot belongs to.
    pub key: RunKey,
    /// The policy's dispatch order (indices into the natural grid order),
    /// persisted so a resumed run can verify it re-derives the same
    /// schedule position.
    pub order: Vec<usize>,
    /// Completed per-grid results, in collection order.
    pub completed: Vec<SubsolveResult>,
}

impl Checkpoint {
    /// Validate that this checkpoint belongs to the run identified by
    /// `key` with dispatch order `order`.
    pub fn validate(&self, key: &RunKey, order: &[usize]) -> MfResult<()> {
        key.matches(&self.key).map_err(MfError::App)?;
        if self.order != order {
            return Err(MfError::App(
                "checkpoint dispatch order differs from the policy's re-derived order — \
                 refusing to resume"
                    .into(),
            ));
        }
        Ok(())
    }

    fn to_unit(&self) -> Unit {
        Unit::tuple(vec![
            Unit::int(self.key.root as i64),
            Unit::int(self.key.level as i64),
            Unit::real(self.key.le_tol),
            Unit::int(self.key.data_through_master as i64),
            Unit::text(&self.key.policy),
            problem_to_unit(&self.key.problem),
            Unit::tuple(self.order.iter().map(|&i| Unit::int(i as i64)).collect()),
            Unit::tuple(self.completed.iter().map(result_to_unit).collect()),
        ])
    }

    fn from_unit(u: &Unit) -> MfResult<Checkpoint> {
        let t = u
            .as_tuple()
            .ok_or(MfError::UnitType { expected: "Tuple" })?;
        if t.len() != 8 {
            return Err(MfError::App(format!("checkpoint tuple arity {}", t.len())));
        }
        let order = t[6]
            .as_tuple()
            .ok_or(MfError::UnitType { expected: "Tuple" })?
            .iter()
            .map(|u| Ok(u.expect_int()? as usize))
            .collect::<MfResult<Vec<usize>>>()?;
        let completed = t[7]
            .as_tuple()
            .ok_or(MfError::UnitType { expected: "Tuple" })?
            .iter()
            .map(result_from_unit)
            .collect::<MfResult<Vec<SubsolveResult>>>()?;
        Ok(Checkpoint {
            key: RunKey {
                root: t[0].expect_int()? as u32,
                level: t[1].expect_int()? as u32,
                le_tol: t[2].expect_real()?,
                data_through_master: t[3].expect_int()? != 0,
                policy: t[4]
                    .as_text()
                    .ok_or(MfError::UnitType { expected: "Text" })?
                    .to_string(),
                problem: problem_from_unit(&t[5])?,
            },
            order,
            completed,
        })
    }
}

/// A directory holding at most one current checkpoint per run.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> MfResult<CheckpointStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| MfError::App(format!("checkpoint dir {}: {e}", dir.display())))?;
        Ok(CheckpointStore { dir })
    }

    /// Path of the current checkpoint file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(FILE_NAME)
    }

    /// Atomically persist `ck`: write to a temp file in the same
    /// directory, fsync, then rename over the previous checkpoint.
    pub fn save(&self, ck: &Checkpoint) -> MfResult<()> {
        let payload = transport::encode_unit_vec(&ck.to_unit())
            .map_err(|e| MfError::App(format!("checkpoint encode: {e}")))?;
        let mut bytes = Vec::with_capacity(payload.len() + 16);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&transport::frame_vec(&payload));

        atomic_replace(&self.path(), &bytes, true)
            .map_err(|e| MfError::App(format!("checkpoint save {}: {e}", self.path().display())))
    }

    /// Load the current checkpoint; `Ok(None)` when none has been written
    /// yet. Truncation, bit rot (CRC), or a version mismatch is an error.
    pub fn load(&self) -> MfResult<Option<Checkpoint>> {
        let path = self.path();
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(MfError::App(format!(
                    "checkpoint read {}: {e}",
                    path.display()
                )))
            }
        };
        let fail = |what: &str| MfError::App(format!("checkpoint {}: {what}", path.display()));
        if bytes.len() < 8 || &bytes[..4] != MAGIC {
            return Err(fail("not a checkpoint file (bad magic)"));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(fail(&format!(
                "layout version {version}, this build reads {CHECKPOINT_VERSION}"
            )));
        }
        // Diagnose truncation explicitly, naming the byte offsets, before
        // handing what remains to the frame reader: "the file is 3 bytes
        // short" beats a generic EOF from somewhere inside the decoder.
        let body = &bytes[8..];
        if body.len() < 8 {
            return Err(fail(&format!(
                "truncated snapshot: the frame header needs 8 bytes at offset 8, \
                 but the file ends at offset {}",
                bytes.len()
            )));
        }
        let frame_len = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
        let expected = 16 + frame_len;
        if bytes.len() < expected {
            return Err(fail(&format!(
                "truncated snapshot: the payload of {frame_len} bytes at offset 16 \
                 ends at offset {expected}, but the file ends at offset {}",
                bytes.len()
            )));
        }
        let mut r = std::io::Cursor::new(body);
        let payload = transport::read_frame(&mut r)
            .map_err(|e| fail(&format!("corrupt frame: {e}")))?
            .ok_or_else(|| fail("truncated (no frame)"))?;
        if (r.position() as usize) < bytes.len() - 8 {
            return Err(fail("trailing bytes after checkpoint frame"));
        }
        let unit = transport::decode_unit(&payload).map_err(|e| fail(&e.to_string()))?;
        Checkpoint::from_unit(&unit).map(Some)
    }

    /// Remove the current checkpoint, if any (end of a successful run).
    pub fn clear(&self) -> MfResult<()> {
        match fs::remove_file(self.path()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(MfError::App(format!(
                "checkpoint clear {}: {e}",
                self.path().display()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solver::problem::Problem;
    use solver::subsolve::SubsolveRequest;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mfck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_checkpoint() -> Checkpoint {
        let app = SequentialApp::new(2, 1, 1e-3);
        let req = SubsolveRequest::for_grid(2, 1, 0, 1e-3, Problem::manufactured_benchmark());
        let res = solver::subsolve(&req).unwrap();
        Checkpoint {
            key: RunKey::of(&app, true, "paper-faithful"),
            order: vec![2, 0, 1],
            completed: vec![res],
        }
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let dir = tmp_dir("roundtrip");
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(store.load().unwrap().is_none());
        let ck = sample_checkpoint();
        store.save(&ck).unwrap();
        let back = store.load().unwrap().unwrap();
        assert_eq!(back.key, ck.key);
        assert_eq!(back.order, ck.order);
        assert_eq!(back.completed.len(), 1);
        assert_eq!(back.completed[0].values, ck.completed[0].values);
        assert_eq!(back.completed[0].work, ck.completed[0].work);
        store.clear().unwrap();
        assert!(store.load().unwrap().is_none());
        store.clear().unwrap(); // idempotent
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_are_detected() {
        let dir = tmp_dir("corrupt");
        let store = CheckpointStore::new(&dir).unwrap();
        store.save(&sample_checkpoint()).unwrap();
        let mut bytes = fs::read(store.path()).unwrap();

        // Flip one payload bit: the frame CRC must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        fs::write(store.path(), &bytes).unwrap();
        let err = store.load().unwrap_err().to_string();
        assert!(err.contains("checksum") || err.contains("corrupt"), "{err}");

        // Truncation mid-frame.
        bytes[last] ^= 0x04;
        fs::write(store.path(), &bytes[..bytes.len() - 3]).unwrap();
        assert!(store.load().is_err());

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        fs::write(store.path(), &bad).unwrap();
        assert!(store.load().unwrap_err().to_string().contains("magic"));

        // Future layout version.
        let mut newer = bytes.clone();
        newer[4] = 99;
        fs::write(store.path(), &newer).unwrap();
        assert!(store.load().unwrap_err().to_string().contains("version"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_errors_name_the_offsets() {
        let dir = tmp_dir("truncated");
        let store = CheckpointStore::new(&dir).unwrap();
        store.save(&sample_checkpoint()).unwrap();
        let bytes = fs::read(store.path()).unwrap();

        // Cut inside the frame header: the error names where the header
        // was expected and where the file actually ends.
        fs::write(store.path(), &bytes[..12]).unwrap();
        let err = store.load().unwrap_err().to_string();
        assert!(err.contains("truncated snapshot"), "{err}");
        assert!(err.contains("offset 8"), "{err}");
        assert!(err.contains("ends at offset 12"), "{err}");

        // Cut inside the payload: the error names the payload's declared
        // extent and the file's actual end.
        fs::write(store.path(), &bytes[..bytes.len() - 5]).unwrap();
        let err = store.load().unwrap_err().to_string();
        assert!(err.contains("truncated snapshot"), "{err}");
        assert!(err.contains("offset 16"), "{err}");
        assert!(
            err.contains(&format!("ends at offset {}", bytes.len() - 5)),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_key_resume_is_an_error_not_a_fresh_start() {
        use crate::{run_concurrent_opts, RunMode, RunOpts};
        use std::sync::Arc;

        let dir = tmp_dir("foreign-resume");
        // A finished level-1 run leaves its checkpoint behind (it would
        // normally be cleared, so plant one explicitly).
        let store = CheckpointStore::new(&dir).unwrap();
        store.save(&sample_checkpoint()).unwrap();

        // Resuming a *different* problem from it must fail loudly, naming
        // both parameter sets — silently starting fresh would hide that
        // the operator pointed at the wrong directory.
        let other = SequentialApp::new(2, 2, 1e-3);
        let opts = RunOpts {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..RunOpts::default()
        };
        let err = run_concurrent_opts(
            &other,
            &RunMode::Parallel,
            true,
            Arc::new(protocol::PaperFaithful),
            &opts,
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("different parameters"), "{err}");
        assert!(err.contains("level 1"), "checkpoint's own level: {err}");
        assert!(err.contains("level 2"), "this run's level: {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn validation_refuses_foreign_runs() {
        let ck = sample_checkpoint();
        let app = SequentialApp::new(2, 1, 1e-3);
        let key = RunKey::of(&app, true, "paper-faithful");
        ck.validate(&key, &[2, 0, 1]).unwrap();

        let other_app = SequentialApp::new(2, 2, 1e-3);
        let err = ck
            .validate(&RunKey::of(&other_app, true, "paper-faithful"), &[2, 0, 1])
            .unwrap_err();
        assert!(err.to_string().contains("different parameters"));

        let err = ck
            .validate(&RunKey::of(&app, true, "cost-aware"), &[2, 0, 1])
            .unwrap_err();
        assert!(err.to_string().contains("policy"));

        let err = ck.validate(&key, &[0, 1, 2]).unwrap_err();
        assert!(err.to_string().contains("order"));
    }
}
