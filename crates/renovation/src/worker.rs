//! The Worker wrapper: `subsolve` behind the §4.3 worker interface.
//!
//! "The master and worker manifolds are easy to write as C wrappers around
//! the original C subroutines of the sequential version" (§5). This is that
//! wrapper: the numerical core ([`solver::subsolve()`]) is reused untouched;
//! the wrapper only performs the four protocol steps — read, compute,
//! write, raise `death_worker` — plus the `Welcome`/`Bye` messages the
//! paper's chronological output shows.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use manifold::mes;
use manifold::prelude::*;
use protocol::{lost_job_marker, WorkerHandle, WORKER_LOST};

use crate::codec::{batch_results_to_unit, requests_from_unit, result_to_unit};

/// Concurrency gauge over worker compute sections.
///
/// A worker registers after it has read its job and deregisters *before*
/// writing its result, so by the time the master can collect a result the
/// gauge no longer counts that worker. Under windowed dispatch at most
/// `window` jobs are outstanding at once, making the observed peak a
/// deterministic upper-bounded measure of worker concurrency (and hence of
/// simultaneously computing OS threads in a parallel run).
#[derive(Debug, Default)]
pub struct WorkerGauge {
    alive: AtomicUsize,
    peak: AtomicUsize,
}

impl WorkerGauge {
    /// A fresh, shareable gauge.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub(crate) fn enter(&self) {
        let now = self.alive.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    pub(crate) fn exit(&self) {
        self.alive.fetch_sub(1, Ordering::SeqCst);
    }

    /// Highest number of workers ever inside their compute section at once.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }

    /// Restart the peak from the current occupancy. An engine serving many
    /// jobs over one fleet calls this between jobs so each job reports its
    /// own peak rather than the fleet-lifetime maximum.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.alive.load(Ordering::SeqCst), Ordering::SeqCst);
    }
}

/// Fault-plan state shared by every worker of a threads run. Jobs are
/// counted pool-wide (each worker process computes exactly one job, so the
/// pool-wide count is the analogue of a remote instance's per-incarnation
/// count), and the faults a thread worker *can* express are injected at
/// the counted job:
///
/// * a crash becomes a lost-job marker + [`WORKER_LOST`] — exactly the
///   failure surface a died remote instance presents to the master;
/// * a stall becomes a sleep inside the compute section;
/// * wire-level faults (frame corruption, connection drop, heartbeat
///   delay) have no transport to act on here and are inert by design —
///   the procs backend exercises those.
#[derive(Debug)]
struct ThreadChaos {
    jobs_seen: AtomicU64,
    faults: chaos::WorkerFaults,
}

fn make_worker(
    coord: &Coord,
    death_event: &Name,
    gauge: Option<Arc<WorkerGauge>>,
    chaos: Option<Arc<ThreadChaos>>,
) -> ProcessRef {
    let death = death_event.clone();
    coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
        let h = WorkerHandle::new(ctx, death);
        mes!(h.ctx(), "Welcome");
        // Step 1: read the job from our own input port.
        let job = h.receive()?;
        if let Some(ch) = &chaos {
            let n = ch.jobs_seen.fetch_add(1, Ordering::SeqCst) + 1;
            if ch.faults.crash_on_job == Some(n) {
                mes!(h.ctx(), "worker lost: chaos crash on job {n}");
                h.ctx().raise(WORKER_LOST);
                h.submit(lost_job_marker(job, n, "chaos: injected worker crash"))?;
                mes!(h.ctx(), "Bye");
                h.die();
                return Ok(());
            }
            if let Some((at, ms)) = ch.faults.stall_on_job {
                if at == n {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
        }
        let (reqs, batched) = requests_from_unit(&job)?;
        // Step 2: the computational job (the untouched legacy core). A
        // bundled job runs through the batched multi-RHS path, which is
        // bit-identical per request to the sequential core.
        if let Some(g) = &gauge {
            g.enter();
        }
        let computed: Result<Unit, String> = if batched {
            let mut bws = solver::BatchWorkspace::new();
            let results = solver::subsolve_batch(&reqs, &mut bws);
            let mut ok = Vec::with_capacity(results.len());
            let mut failure = None;
            for (req, r) in reqs.iter().zip(results) {
                match r {
                    Ok(res) => ok.push(res),
                    Err(e) => {
                        failure = Some(format!("subsolve({}, {}): {e}", req.l, req.m));
                        break;
                    }
                }
            }
            match failure {
                Some(f) => Err(f),
                None => Ok(batch_results_to_unit(&ok)),
            }
        } else {
            let req = &reqs[0];
            solver::subsolve(req)
                .map(|res| result_to_unit(&res))
                .map_err(|e| format!("subsolve({}, {}): {e}", req.l, req.m))
        };
        if let Some(g) = &gauge {
            g.exit();
        }
        // Step 3: write the results to our own output port.
        h.submit(computed.map_err(MfError::App)?)?;
        // Step 4: signal death and return.
        mes!(h.ctx(), "Bye");
        h.die();
        Ok(())
    })
}

/// Create (but do not activate) one Worker process instance — the factory
/// passed to [`protocol::protocol_mw`], standing in for the
/// `manifold Worker(event) atomic.` declaration of `mainprog.m`.
pub fn worker_factory(coord: &Coord, death_event: &Name) -> ProcessRef {
    make_worker(coord, death_event, None, None)
}

/// Like [`worker_factory`], but every created worker reports its compute
/// section to `gauge`, so a run can verify that a bounded dispatch policy
/// really caps worker concurrency.
pub fn worker_factory_with_gauge(
    gauge: Arc<WorkerGauge>,
) -> impl FnMut(&Coord, &Name) -> ProcessRef {
    move |coord, death_event| make_worker(coord, death_event, Some(gauge.clone()), None)
}

/// [`worker_factory_with_gauge`] plus an injected fault schedule: the
/// threads backend's half of the chaos engine (see [`ThreadChaos`] for
/// which faults apply). All workers of a run share one job counter, so a
/// `FaultPlan`'s `crash:i@n` fires exactly once pool-wide.
pub fn worker_factory_chaos(
    gauge: Arc<WorkerGauge>,
    faults: chaos::WorkerFaults,
) -> impl FnMut(&Coord, &Name) -> ProcessRef {
    let chaos = Arc::new(ThreadChaos {
        jobs_seen: AtomicU64::new(0),
        faults,
    });
    move |coord, death_event| {
        make_worker(coord, death_event, Some(gauge.clone()), Some(chaos.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{batch_request_to_unit, request_to_unit, result_from_unit};
    use solver::problem::Problem;
    use solver::subsolve::SubsolveRequest;
    use std::time::Duration;

    #[test]
    fn worker_computes_one_job_and_dies() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let death = Name::new("death_worker");
            let w = worker_factory(coord, &death);
            coord.activate(&w)?;
            let req = SubsolveRequest::for_grid(2, 1, 1, 1e-3, Problem::manufactured_benchmark());
            let mut st = coord.state();
            st.send(request_to_unit(&req), &w, "input")?;
            st.connect_to_self(&w, "output", "input", StreamType::KK)?;
            let occ = st.idle(&["death_worker".into()])?;
            assert_eq!(occ.source, w.id());
            let res = result_from_unit(&coord.read("input")?).unwrap();
            assert_eq!((res.l, res.m), (1, 1));
            // Identical to calling the core directly.
            let direct = solver::subsolve(&req).unwrap();
            assert_eq!(res.values, direct.values);
            w.core().wait_terminated(Duration::from_secs(10))?;
            Ok(())
        })
        .unwrap();
        env.shutdown();
        assert!(env.failures().is_empty());
    }

    #[test]
    fn worker_computes_a_same_shape_bundle_bit_identically() {
        // Three jobs on the *same* grid with different tolerances: the
        // bundle rides the multi-RHS batched integrator inside the worker
        // and must come back bit-identical, per request, to the
        // sequential core.
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let death = Name::new("death_worker");
            let w = worker_factory(coord, &death);
            coord.activate(&w)?;
            let reqs: Vec<SubsolveRequest> = [1e-3, 2e-4, 5e-3]
                .iter()
                .map(|&tol| {
                    SubsolveRequest::for_grid(2, 2, 1, tol, Problem::manufactured_benchmark())
                })
                .collect();
            let mut st = coord.state();
            st.send(batch_request_to_unit(&reqs), &w, "input")?;
            st.connect_to_self(&w, "output", "input", StreamType::KK)?;
            let occ = st.idle(&["death_worker".into()])?;
            assert_eq!(occ.source, w.id());
            let results = crate::codec::results_from_unit(&coord.read("input")?).unwrap();
            assert_eq!(results.len(), reqs.len());
            for (req, res) in reqs.iter().zip(&results) {
                let direct = solver::subsolve(req).unwrap();
                assert_eq!((res.l, res.m), (req.l, req.m));
                assert_eq!(res.values, direct.values);
                assert_eq!(res.steps, direct.steps);
                assert_eq!(res.work.flops, direct.work.flops);
            }
            // The bundle really took the batched path: cohort widths were
            // recorded for the multi-RHS sweeps.
            assert!(results.iter().any(|r| r.work.batched_rhs > 0));
            w.core().wait_terminated(Duration::from_secs(10))?;
            Ok(())
        })
        .unwrap();
        env.shutdown();
        assert!(env.failures().is_empty());
    }

    #[test]
    fn worker_rejects_garbage_input() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let death = Name::new("death_worker");
            let w = worker_factory(coord, &death);
            coord.activate(&w)?;
            let mut st = coord.state();
            st.send(Unit::text("not a job"), &w, "input")?;
            drop(st);
            w.core().wait_terminated(Duration::from_secs(10))?;
            Ok(())
        })
        .unwrap();
        env.shutdown();
        let fails = env.failures();
        assert_eq!(fails.len(), 1, "worker should record a failure");
        env.shutdown();
    }
}
