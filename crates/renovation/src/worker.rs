//! The Worker wrapper: `subsolve` behind the §4.3 worker interface.
//!
//! "The master and worker manifolds are easy to write as C wrappers around
//! the original C subroutines of the sequential version" (§5). This is that
//! wrapper: the numerical core ([`solver::subsolve()`]) is reused untouched;
//! the wrapper only performs the four protocol steps — read, compute,
//! write, raise `death_worker` — plus the `Welcome`/`Bye` messages the
//! paper's chronological output shows.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use manifold::mes;
use manifold::prelude::*;
use protocol::WorkerHandle;

use crate::codec::{request_from_unit, result_to_unit};

/// Concurrency gauge over worker compute sections.
///
/// A worker registers after it has read its job and deregisters *before*
/// writing its result, so by the time the master can collect a result the
/// gauge no longer counts that worker. Under windowed dispatch at most
/// `window` jobs are outstanding at once, making the observed peak a
/// deterministic upper-bounded measure of worker concurrency (and hence of
/// simultaneously computing OS threads in a parallel run).
#[derive(Debug, Default)]
pub struct WorkerGauge {
    alive: AtomicUsize,
    peak: AtomicUsize,
}

impl WorkerGauge {
    /// A fresh, shareable gauge.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub(crate) fn enter(&self) {
        let now = self.alive.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    pub(crate) fn exit(&self) {
        self.alive.fetch_sub(1, Ordering::SeqCst);
    }

    /// Highest number of workers ever inside their compute section at once.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }
}

fn make_worker(coord: &Coord, death_event: &Name, gauge: Option<Arc<WorkerGauge>>) -> ProcessRef {
    let death = death_event.clone();
    coord.create_atomic("Worker(event)", move |ctx: ProcessCtx| {
        let h = WorkerHandle::new(ctx, death);
        mes!(h.ctx(), "Welcome");
        // Step 1: read the job from our own input port.
        let req = request_from_unit(&h.receive()?)?;
        // Step 2: the computational job (the untouched legacy core).
        if let Some(g) = &gauge {
            g.enter();
        }
        let res = solver::subsolve(&req);
        if let Some(g) = &gauge {
            g.exit();
        }
        let res = res.map_err(|e| MfError::App(format!("subsolve({}, {}): {e}", req.l, req.m)))?;
        // Step 3: write the results to our own output port.
        h.submit(result_to_unit(&res))?;
        // Step 4: signal death and return.
        mes!(h.ctx(), "Bye");
        h.die();
        Ok(())
    })
}

/// Create (but do not activate) one Worker process instance — the factory
/// passed to [`protocol::protocol_mw`], standing in for the
/// `manifold Worker(event) atomic.` declaration of `mainprog.m`.
pub fn worker_factory(coord: &Coord, death_event: &Name) -> ProcessRef {
    make_worker(coord, death_event, None)
}

/// Like [`worker_factory`], but every created worker reports its compute
/// section to `gauge`, so a run can verify that a bounded dispatch policy
/// really caps worker concurrency.
pub fn worker_factory_with_gauge(
    gauge: Arc<WorkerGauge>,
) -> impl FnMut(&Coord, &Name) -> ProcessRef {
    move |coord, death_event| make_worker(coord, death_event, Some(gauge.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{request_to_unit, result_from_unit};
    use solver::problem::Problem;
    use solver::subsolve::SubsolveRequest;
    use std::time::Duration;

    #[test]
    fn worker_computes_one_job_and_dies() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let death = Name::new("death_worker");
            let w = worker_factory(coord, &death);
            coord.activate(&w)?;
            let req = SubsolveRequest::for_grid(2, 1, 1, 1e-3, Problem::manufactured_benchmark());
            let mut st = coord.state();
            st.send(request_to_unit(&req), &w, "input")?;
            st.connect_to_self(&w, "output", "input", StreamType::KK)?;
            let occ = st.idle(&["death_worker".into()])?;
            assert_eq!(occ.source, w.id());
            let res = result_from_unit(&coord.read("input")?).unwrap();
            assert_eq!((res.l, res.m), (1, 1));
            // Identical to calling the core directly.
            let direct = solver::subsolve(&req).unwrap();
            assert_eq!(res.values, direct.values);
            w.core().wait_terminated(Duration::from_secs(10))?;
            Ok(())
        })
        .unwrap();
        env.shutdown();
        assert!(env.failures().is_empty());
    }

    #[test]
    fn worker_rejects_garbage_input() {
        let env = Environment::new();
        env.run_coordinator("Main", |coord| {
            let death = Name::new("death_worker");
            let w = worker_factory(coord, &death);
            coord.activate(&w)?;
            let mut st = coord.state();
            st.send(Unit::text("not a job"), &w, "input")?;
            drop(st);
            w.core().wait_terminated(Duration::from_secs(10))?;
            Ok(())
        })
        .unwrap();
        env.shutdown();
        let fails = env.failures();
        assert_eq!(fails.len(), 1, "worker should record a failure");
        env.shutdown();
    }
}
