//! The *process* backend: `subsolve` workers as separate OS processes.
//!
//! [`run_concurrent`](crate::run_concurrent) executes every process
//! instance as a thread. This module provides the deployment the paper
//! actually ran on its workstation cluster: each worker task instance is a
//! separate operating-system process (the committed `subsolve_worker`
//! binary), connected over TCP or a Unix socket, placed according to the
//! CONFIG host list. The master, the protocol, and the dispatch policies
//! are *unchanged* — proxies from [`protocol::remote_worker_factory`]
//! stand in for local workers, and the backend is chosen purely by
//! configuration ([`ProcsConfig`] vs [`RunMode`](crate::RunMode)).
//!
//! Both halves live here so they cannot drift apart:
//!
//! * [`run_concurrent_procs`] — the coordinator side: launches the worker
//!   pool, runs the master, merges the children's §6 traces into the run's
//!   chronological record;
//! * [`run_worker_child`] — the child side, called by the
//!   `subsolve_worker` binary: serves jobs by running the *real*
//!   [`worker_factory`](crate::worker_factory) manifold inside its own
//!   MANIFOLD environment, then ships its trace back at shutdown.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use manifold::config::{ConfigSpec, HostName};
use manifold::ident::TaskInstanceId;
use manifold::prelude::*;
use manifold::remote::{ConduitSource, RemoteConduit};
use manifold::trace::{format_trace, merge_traces, parse_trace, TraceRecord};
use protocol::{PolicyRef, DEATH_WORKER};
use solver::sequential::SequentialApp;
use transport::{serve, Addr, BindMode, RemoteWorkerPool, ServeConfig, ServeSummary};

use crate::app::ConcurrentResult;
use crate::engine::{AppConfig, Engine, EngineOpts, JobHandle};
use crate::master::FleetMembership;
use crate::worker::{worker_factory, WorkerGauge};

/// Configuration of a multi-process run.
#[derive(Debug, Clone)]
pub struct ProcsConfig {
    /// Worker processes to launch.
    pub instances: usize,
    /// TCP loopback or Unix-domain sockets.
    pub bind: BindMode,
    /// CONFIG host labels for placement, cycled over instances. With the
    /// [`LocalSpawner`] all children run locally regardless (the paper's
    /// single-machine multi-process deployment); an ssh spawner would use
    /// these as targets.
    pub hosts: Vec<HostName>,
    /// Path of the `subsolve_worker` binary. `None` resolves via the
    /// `MF_SUBSOLVE_WORKER` environment variable, then by looking next to
    /// the current executable.
    pub worker_exe: Option<PathBuf>,
    /// Lost-worker re-dispatches the master tolerates (also the per-slot
    /// respawn budget of the pool).
    pub retry_budget: usize,
    /// Fault schedule to inject: worker faults travel to the children via
    /// the `MF_CHAOS_PLAN` environment variable (each child filters the
    /// plan down to its own instance), a master kill applies in-process.
    pub faults: Option<chaos::FaultPlan>,
    /// Persist a checkpoint after every collected result.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in `checkpoint_dir` (no-op when none
    /// exists yet).
    pub resume: bool,
    /// Max silence during a remote job before the instance is declared
    /// dead (heartbeats reset the window).
    pub job_timeout: Duration,
    /// Child heartbeat cadence.
    pub heartbeat: Duration,
    /// Sharded dispatch: worker processes are partitioned into this many
    /// pools (by `instance % shards`) and the master dispatches through
    /// matching shard queues. One shard is the flat master.
    pub shards: protocol::ShardSpec,
    /// Worker joins/leaves fired at 1-based dispatch ordinals — real
    /// process churn on this backend (`add_instance`/`retire_instance`).
    pub churn: protocol::ChurnPlan,
}

impl ProcsConfig {
    /// Localhost defaults for `instances` worker processes.
    pub fn new(instances: usize) -> Self {
        ProcsConfig {
            instances,
            bind: BindMode::Tcp,
            hosts: Vec::new(),
            worker_exe: None,
            retry_budget: 3,
            faults: None,
            checkpoint_dir: None,
            resume: false,
            job_timeout: Duration::from_secs(60),
            heartbeat: Duration::from_millis(100),
            shards: protocol::ShardSpec::default(),
            churn: protocol::ChurnPlan::default(),
        }
    }

    /// Shard the dispatch (and the worker-process pools) `shards` ways.
    pub fn with_shards(mut self, spec: protocol::ShardSpec) -> Self {
        self.shards = spec;
        self
    }

    /// Fire worker joins/leaves at these dispatch ordinals.
    pub fn with_churn(mut self, churn: protocol::ChurnPlan) -> Self {
        self.churn = churn;
        self
    }

    /// Schedule one abrupt exit: `instance` dies upon receiving its
    /// `nth` (1-based) job. Shorthand for a one-fault [`chaos::FaultPlan`].
    pub fn with_crash_on_job(mut self, instance: u64, nth: u64) -> Self {
        self.faults = Some(
            chaos::FaultPlan::new(0).push(chaos::FaultKind::WorkerCrash {
                instance,
                on_job: nth,
            }),
        );
        self
    }
}

/// Locate the worker binary: explicit override, `MF_SUBSOLVE_WORKER`, or
/// a `subsolve_worker` next to the current executable (cargo places test
/// and bench binaries in the same target directory).
pub(crate) fn resolve_worker_exe(cfg: &ProcsConfig) -> MfResult<PathBuf> {
    if let Some(p) = &cfg.worker_exe {
        return Ok(p.clone());
    }
    if let Ok(p) = std::env::var("MF_SUBSOLVE_WORKER") {
        return Ok(PathBuf::from(p));
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut dirs: Vec<PathBuf> = Vec::new();
        if let Some(d) = exe.parent() {
            dirs.push(d.to_path_buf());
            if let Some(dd) = d.parent() {
                dirs.push(dd.to_path_buf());
            }
        }
        for d in dirs {
            let cand = d.join("subsolve_worker");
            if cand.is_file() {
                return Ok(cand);
            }
        }
    }
    Err(MfError::App(
        "cannot locate the subsolve_worker binary: set ProcsConfig.worker_exe \
         or the MF_SUBSOLVE_WORKER environment variable"
            .into(),
    ))
}

/// Wraps the pool so every job executed through a conduit is counted by
/// the same [`WorkerGauge`] the threads backend uses — `peak_concurrent_workers`
/// means the same thing for both backends. Also the procs backend's
/// [`FleetMembership`]: sharded masters leave a one-shot pool-affinity
/// hint here before each checkout, and churn joins/retires worker
/// processes through it.
pub(crate) struct GaugedSource {
    pub(crate) pool: Arc<RemoteWorkerPool>,
    pub(crate) gauge: Arc<WorkerGauge>,
    /// One-shot checkout affinity hint (`u64::MAX` = none).
    hint: AtomicU64,
}

impl GaugedSource {
    pub(crate) fn new(pool: Arc<RemoteWorkerPool>, gauge: Arc<WorkerGauge>) -> Self {
        GaugedSource {
            pool,
            gauge,
            hint: AtomicU64::new(u64::MAX),
        }
    }
}

struct GaugedConduit {
    inner: Arc<dyn RemoteConduit>,
    gauge: Arc<WorkerGauge>,
}

impl ConduitSource for GaugedSource {
    fn checkout(&self) -> MfResult<Arc<dyn RemoteConduit>> {
        let hint = self.hint.swap(u64::MAX, Ordering::Relaxed);
        let pool = (hint != u64::MAX).then_some(hint);
        Ok(Arc::new(GaugedConduit {
            inner: self.pool.checkout_pool(pool)?,
            gauge: Arc::clone(&self.gauge),
        }))
    }
}

impl FleetMembership for GaugedSource {
    fn join(&self, pool: Option<u64>) -> MfResult<u64> {
        self.pool.add_instance(pool)
    }

    fn leave(&self) -> MfResult<Option<u64>> {
        // Retire the newest member (the reverse of join, so churn plans
        // compose predictably) — but never the last worker, which would
        // starve the run.
        let members = self.pool.member_indices();
        if members.len() <= 1 {
            return Ok(None);
        }
        let victim = *members.last().expect("non-empty membership");
        self.pool.retire_instance(victim)?;
        Ok(Some(victim))
    }

    fn hint_pool(&self, pool: u64) {
        self.hint.store(pool, Ordering::Relaxed);
    }
}

impl RemoteConduit for GaugedConduit {
    fn execute(&self, job: Unit) -> MfResult<Unit> {
        self.gauge.enter();
        let result = self.inner.execute(job);
        self.gauge.exit();
        result
    }
    fn identity(&self) -> manifold::remote::RemoteIdentity {
        self.inner.identity()
    }
    fn instance_id(&self) -> u64 {
        self.inner.instance_id()
    }
}

/// The trace task-instance uid of worker process `instance` (slot 0 of
/// the pool is task instance 1; task instance 0 is the master's).
pub fn child_task_uid(instance: u64) -> u64 {
    TraceRecord::task_uid_for(TaskInstanceId(instance + 1))
}

/// Run the renovated application with worker task instances as separate
/// OS processes. Numerically (and in trace-visible dispatch order)
/// identical to [`run_concurrent_with_policy`](crate::run_concurrent_with_policy)
/// for every dispatch policy.
pub fn run_concurrent_procs(
    app: &SequentialApp,
    cfg: &ProcsConfig,
    data_through_master: bool,
    policy: PolicyRef,
) -> MfResult<ConcurrentResult> {
    // Since the Engine refactor this is a thin wrapper: launch the fleet,
    // serve exactly one job, shut down. Multi-job callers hold an
    // `Engine` and keep the worker processes alive between jobs.
    let engine_opts = EngineOpts {
        capacity_level: app.level,
        faults: cfg.faults.clone(),
        checkpoint_dir: cfg.checkpoint_dir.clone(),
        resume: cfg.resume,
        retry_budget: Some(cfg.retry_budget),
        shards: cfg.shards,
        churn: cfg.churn.clone(),
    };
    let mut engine = Engine::procs(cfg.clone(), policy, engine_opts)?;
    let handle = engine.submit(AppConfig::new(*app).with_data_through_master(data_through_master));
    let report = handle.map_err(MfError::from).and_then(JobHandle::wait);
    // Shut down either way, so a failed run still reaps its children.
    let summary = engine.shutdown();
    let report = match report {
        Ok(r) => r,
        // The one-shot contract: every failure surfaces as an application
        // error (the engine already formats process-failure root causes).
        Err(e @ MfError::App(_)) => return Err(e),
        Err(e) => return Err(MfError::App(e.to_string())),
    };

    // Satellite: interleave the per-process trace files chronologically,
    // exactly as the paper's single chronological listing shows them.
    let mut sequences = vec![report.records];
    for (slot, _identity, trace) in &summary.child_reports {
        if let Some(text) = trace {
            let records = parse_trace(text)
                .map_err(|e| MfError::App(format!("instance {slot} sent a bad trace: {e}")))?;
            sequences.push(records);
        }
    }
    let records = merge_traces(sequences);
    let machines_used = records
        .iter()
        .map(|r| r.host.as_str().to_string())
        .collect::<BTreeSet<_>>()
        .len();

    Ok(ConcurrentResult {
        result: report.result,
        outcome: report.outcome,
        records,
        machines_used,
        peak_concurrent_workers: report.peak_concurrent_workers,
    })
}

/// The child side: everything `subsolve_worker` does after parsing its
/// environment. Serves jobs from `addr` by running the real Worker
/// manifold in a private MANIFOLD environment whose startup machine is
/// this machine's real hostname, and ships the accumulated trace (task
/// uids rewritten to this instance's slot) back at shutdown.
pub fn run_worker_child(
    addr: Addr,
    instance: u64,
    heartbeat: Duration,
    faults: chaos::WorkerFaults,
) -> std::io::Result<ServeSummary> {
    let host = transport::real_hostname();
    let task_uid = child_task_uid(instance);
    let link = LinkSpec::default()
        .task("mainprog")
        .perpetual(true)
        .load(64)
        .weight("Worker", 1);
    let env = Environment::with_specs(link, ConfigSpec::with_startup(host.as_str()));

    let mut cfg = ServeConfig::new(addr, instance, host, task_uid);
    cfg.heartbeat = heartbeat;
    // Wire-level faults run inside the serve loop (it owns the socket);
    // the crash stays here in the job handler, because an abrupt
    // process exit is an *application*-level death, not a transport one.
    cfg.faults = transport::ServeFaults {
        corrupt_reply_on_job: faults.corrupt_on_job,
        drop_conn_on_job: faults.drop_on_job,
        stall_on_job: faults
            .stall_on_job
            .map(|(job, ms)| (job, Duration::from_millis(ms))),
        heartbeat_delay: faults.heartbeat_delay_ms.map(Duration::from_millis),
    };
    let crash_on_job = faults.crash_on_job;
    let jobs_seen = AtomicU64::new(0);
    let env_for_jobs = env.clone();
    let summary = serve(
        cfg,
        move |job| {
            let n = jobs_seen.fetch_add(1, Ordering::SeqCst) + 1;
            if crash_on_job == Some(n) {
                // Fault injection: die the way a crashed workstation
                // does — no reply, no cleanup, connection just drops.
                std::process::exit(42);
            }
            solve_one(&env_for_jobs, job).map_err(|e| e.to_string())
        },
        || {
            let mut records = env.trace().snapshot();
            for r in &mut records {
                r.task_uid = task_uid;
            }
            Some(format_trace(&records))
        },
    )?;
    env.shutdown();
    Ok(summary)
}

/// Run one job through the real Worker manifold: create the worker
/// process instance, feed it the job, collect its submission, observe its
/// death — the same four steps the thread backend's pool performs.
fn solve_one(env: &Environment, job: Unit) -> MfResult<Unit> {
    env.run_coordinator("ChildMain", |coord| {
        let death = Name::new(DEATH_WORKER);
        let worker = worker_factory(coord, &death);
        coord.activate(&worker)?;
        let mut st = coord.state();
        st.send(job.clone(), &worker, "input")?;
        st.connect_to_self(&worker, "output", "input", StreamType::KK)?;
        match st.until_terminated(&worker, &[DEATH_WORKER.into()])? {
            StateExit::Event(_) => {
                let result = coord.read("input")?;
                worker.core().wait_terminated(Duration::from_secs(600))?;
                Ok(result)
            }
            StateExit::Terminated(_) => {
                let detail = env
                    .failures()
                    .into_iter()
                    .find(|(pid, _)| *pid == worker.id())
                    .map(|(_, e)| e.to_string())
                    .unwrap_or_else(|| "worker terminated without a result".into());
                Err(MfError::App(detail))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::PaperFaithful;

    #[test]
    fn child_task_uids_are_distinct_from_the_masters() {
        let master_uid = TraceRecord::task_uid_for(TaskInstanceId(0));
        assert_ne!(child_task_uid(0), master_uid);
        assert_ne!(child_task_uid(0), child_task_uid(1));
    }

    #[test]
    fn missing_worker_binary_is_a_clear_error() {
        let mut cfg = ProcsConfig::new(1);
        cfg.worker_exe = Some(PathBuf::from("/nonexistent/subsolve_worker"));
        let app = SequentialApp::new(1, 1, 1e-3);
        let err = run_concurrent_procs(&app, &cfg, true, Arc::new(PaperFaithful)).unwrap_err();
        // The pool fails to spawn and reports which instance.
        assert!(err.to_string().contains("instance 0"), "got: {err}");
    }

    #[test]
    fn solve_one_runs_the_real_worker() {
        use crate::codec::{request_to_unit, result_from_unit};
        use solver::problem::Problem;
        use solver::subsolve::SubsolveRequest;

        let env = Environment::new();
        let req = SubsolveRequest::for_grid(2, 1, 1, 1e-3, Problem::manufactured_benchmark());
        let out = solve_one(&env, request_to_unit(&req)).unwrap();
        let res = result_from_unit(&out).unwrap();
        let direct = solver::subsolve(&req).unwrap();
        assert_eq!(res.values, direct.values);
        env.shutdown();
    }

    #[test]
    fn solve_one_surfaces_worker_failures() {
        let env = Environment::new();
        let err = solve_one(&env, Unit::text("not a job")).unwrap_err();
        assert!(!err.to_string().is_empty());
        env.shutdown();
    }
}
