//! The *process* backend: `subsolve` workers as separate OS processes.
//!
//! [`run_concurrent`](crate::run_concurrent) executes every process
//! instance as a thread. This module provides the deployment the paper
//! actually ran on its workstation cluster: each worker task instance is a
//! separate operating-system process (the committed `subsolve_worker`
//! binary), connected over TCP or a Unix socket, placed according to the
//! CONFIG host list. The master, the protocol, and the dispatch policies
//! are *unchanged* — proxies from [`protocol::remote_worker_factory`]
//! stand in for local workers, and the backend is chosen purely by
//! configuration ([`ProcsConfig`] vs [`RunMode`](crate::RunMode)).
//!
//! Both halves live here so they cannot drift apart:
//!
//! * [`run_concurrent_procs`] — the coordinator side: launches the worker
//!   pool, runs the master, merges the children's §6 traces into the run's
//!   chronological record;
//! * [`run_worker_child`] — the child side, called by the
//!   `subsolve_worker` binary: serves jobs by running the *real*
//!   [`worker_factory`](crate::worker_factory) manifold inside its own
//!   MANIFOLD environment, then ships its trace back at shutdown.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use manifold::config::{ConfigSpec, HostName};
use manifold::ident::TaskInstanceId;
use manifold::prelude::*;
use manifold::remote::{ConduitSource, RemoteConduit};
use manifold::trace::{format_trace, merge_traces, parse_trace, TraceRecord};
use parking_lot::Mutex;
use protocol::{protocol_mw, MasterHandle, PolicyRef, DEATH_WORKER};
use solver::sequential::{SequentialApp, SequentialResult};
use transport::{
    serve, Addr, BindMode, LocalSpawner, PoolConfig, RemoteWorkerPool, ServeConfig, ServeSummary,
};

use crate::app::ConcurrentResult;
use crate::master::{master_body, MasterConfig};
use crate::worker::{worker_factory, WorkerGauge};

/// Configuration of a multi-process run.
#[derive(Debug, Clone)]
pub struct ProcsConfig {
    /// Worker processes to launch.
    pub instances: usize,
    /// TCP loopback or Unix-domain sockets.
    pub bind: BindMode,
    /// CONFIG host labels for placement, cycled over instances. With the
    /// [`LocalSpawner`] all children run locally regardless (the paper's
    /// single-machine multi-process deployment); an ssh spawner would use
    /// these as targets.
    pub hosts: Vec<HostName>,
    /// Path of the `subsolve_worker` binary. `None` resolves via the
    /// `MF_SUBSOLVE_WORKER` environment variable, then by looking next to
    /// the current executable.
    pub worker_exe: Option<PathBuf>,
    /// Lost-worker re-dispatches the master tolerates (also the per-slot
    /// respawn budget of the pool).
    pub retry_budget: usize,
    /// Fault schedule to inject: worker faults travel to the children via
    /// the `MF_CHAOS_PLAN` environment variable (each child filters the
    /// plan down to its own instance), a master kill applies in-process.
    pub faults: Option<chaos::FaultPlan>,
    /// Persist a checkpoint after every collected result.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in `checkpoint_dir` (no-op when none
    /// exists yet).
    pub resume: bool,
    /// Max silence during a remote job before the instance is declared
    /// dead (heartbeats reset the window).
    pub job_timeout: Duration,
    /// Child heartbeat cadence.
    pub heartbeat: Duration,
}

impl ProcsConfig {
    /// Localhost defaults for `instances` worker processes.
    pub fn new(instances: usize) -> Self {
        ProcsConfig {
            instances,
            bind: BindMode::Tcp,
            hosts: Vec::new(),
            worker_exe: None,
            retry_budget: 3,
            faults: None,
            checkpoint_dir: None,
            resume: false,
            job_timeout: Duration::from_secs(60),
            heartbeat: Duration::from_millis(100),
        }
    }

    /// Schedule one abrupt exit: `instance` dies upon receiving its
    /// `nth` (1-based) job. Shorthand for a one-fault [`chaos::FaultPlan`].
    pub fn with_crash_on_job(mut self, instance: u64, nth: u64) -> Self {
        self.faults = Some(
            chaos::FaultPlan::new(0).push(chaos::FaultKind::WorkerCrash {
                instance,
                on_job: nth,
            }),
        );
        self
    }
}

/// Locate the worker binary: explicit override, `MF_SUBSOLVE_WORKER`, or
/// a `subsolve_worker` next to the current executable (cargo places test
/// and bench binaries in the same target directory).
fn resolve_worker_exe(cfg: &ProcsConfig) -> MfResult<PathBuf> {
    if let Some(p) = &cfg.worker_exe {
        return Ok(p.clone());
    }
    if let Ok(p) = std::env::var("MF_SUBSOLVE_WORKER") {
        return Ok(PathBuf::from(p));
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut dirs: Vec<PathBuf> = Vec::new();
        if let Some(d) = exe.parent() {
            dirs.push(d.to_path_buf());
            if let Some(dd) = d.parent() {
                dirs.push(dd.to_path_buf());
            }
        }
        for d in dirs {
            let cand = d.join("subsolve_worker");
            if cand.is_file() {
                return Ok(cand);
            }
        }
    }
    Err(MfError::App(
        "cannot locate the subsolve_worker binary: set ProcsConfig.worker_exe \
         or the MF_SUBSOLVE_WORKER environment variable"
            .into(),
    ))
}

/// Wraps the pool so every job executed through a conduit is counted by
/// the same [`WorkerGauge`] the threads backend uses — `peak_concurrent_workers`
/// means the same thing for both backends.
struct GaugedSource {
    pool: Arc<RemoteWorkerPool>,
    gauge: Arc<WorkerGauge>,
}

struct GaugedConduit {
    inner: Arc<dyn RemoteConduit>,
    gauge: Arc<WorkerGauge>,
}

impl ConduitSource for GaugedSource {
    fn checkout(&self) -> MfResult<Arc<dyn RemoteConduit>> {
        Ok(Arc::new(GaugedConduit {
            inner: self.pool.checkout()?,
            gauge: Arc::clone(&self.gauge),
        }))
    }
}

impl RemoteConduit for GaugedConduit {
    fn execute(&self, job: Unit) -> MfResult<Unit> {
        self.gauge.enter();
        let result = self.inner.execute(job);
        self.gauge.exit();
        result
    }
    fn identity(&self) -> manifold::remote::RemoteIdentity {
        self.inner.identity()
    }
    fn instance_id(&self) -> u64 {
        self.inner.instance_id()
    }
}

/// The trace task-instance uid of worker process `instance` (slot 0 of
/// the pool is task instance 1; task instance 0 is the master's).
pub fn child_task_uid(instance: u64) -> u64 {
    TraceRecord::task_uid_for(TaskInstanceId(instance + 1))
}

/// Run the renovated application with worker task instances as separate
/// OS processes. Numerically (and in trace-visible dispatch order)
/// identical to [`run_concurrent_with_policy`](crate::run_concurrent_with_policy)
/// for every dispatch policy.
pub fn run_concurrent_procs(
    app: &SequentialApp,
    cfg: &ProcsConfig,
    data_through_master: bool,
    policy: PolicyRef,
) -> MfResult<ConcurrentResult> {
    let program = resolve_worker_exe(cfg)?;
    let mut pool_cfg = PoolConfig::new(program);
    pool_cfg.instances = cfg.instances;
    pool_cfg.bind = cfg.bind;
    pool_cfg.hosts = cfg.hosts.clone();
    pool_cfg.job_timeout = cfg.job_timeout;
    pool_cfg.respawn_budget = cfg.retry_budget;
    pool_cfg.base_env = vec![(
        "MF_WORKER_HEARTBEAT_MS".into(),
        cfg.heartbeat.as_millis().to_string(),
    )];
    if let Some(plan) = &cfg.faults {
        // The whole plan ships to every child; each filters it down to
        // its own instance. A respawned child re-reads the same plan, so
        // per-incarnation job counts restart naturally.
        pool_cfg
            .base_env
            .push(("MF_CHAOS_PLAN".into(), plan.to_string()));
    }
    let pool = Arc::new(RemoteWorkerPool::launch(pool_cfg, Arc::new(LocalSpawner))?);

    // The local environment hosts the master and the lightweight proxies;
    // the compute lives in the children. Load must cover master + one
    // proxy per job (+ re-dispatches after worker loss).
    let link = LinkSpec::default()
        .task("mainprog")
        .perpetual(true)
        .load(2 * app.level + 8 + cfg.retry_budget as u32)
        .weight("Master", 1)
        .weight("Worker", 1);
    let env = Environment::with_specs(link, ConfigSpec::with_startup("bumpa.sen.cwi.nl"));

    let cell: Arc<Mutex<Option<SequentialResult>>> = Arc::new(Mutex::new(None));
    let mut master_cfg = MasterConfig::new(*app, data_through_master)
        .with_policy(policy)
        .with_retry_budget(cfg.retry_budget);
    if let Some(dir) = &cfg.checkpoint_dir {
        let store = Arc::new(crate::checkpoint::CheckpointStore::new(dir)?);
        if cfg.resume {
            if let Some(ck) = store.load()? {
                master_cfg = master_cfg.with_resume(ck);
            }
        }
        master_cfg = master_cfg.with_checkpoints(store);
    }
    if let Some(k) = cfg.faults.as_ref().and_then(|p| p.master_kill()) {
        master_cfg = master_cfg.with_master_kill_at(k);
    }
    let gauge = WorkerGauge::new();
    let source: Arc<dyn ConduitSource> = Arc::new(GaugedSource {
        pool: Arc::clone(&pool),
        gauge: Arc::clone(&gauge),
    });

    let run = env.run_coordinator("Main", |coord| {
        let coord_ref = coord.self_ref();
        let env2 = coord.env().clone();
        let cell2 = cell.clone();
        let master_cfg = master_cfg.clone();
        let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
            let h = MasterHandle::new(ctx, coord_ref, env2);
            let result = master_body(&h, &master_cfg)?;
            *cell2.lock() = Some(result);
            Ok(())
        });
        coord.activate(&master)?;
        let outcome = protocol_mw(coord, &master, protocol::remote_worker_factory(source))?;
        master.core().wait_terminated(Duration::from_secs(600))?;
        Ok(outcome)
    });

    // Collect child traces whether or not the run succeeded, so a failed
    // run still reaps its children.
    let local_records = env.trace().snapshot();
    env.shutdown();
    let child_reports = pool.shutdown();

    let outcome = match run {
        Ok(o) => o,
        Err(e) => {
            // Prefer the root cause a failed process recorded (e.g. the
            // master's "retry budget exhausted") over the coordinator's
            // view of the aftermath.
            let detail = env
                .failures()
                .into_iter()
                .next()
                .map(|(pid, err)| format!("process {pid:?} failed: {err}"))
                .unwrap_or_else(|| e.to_string());
            return Err(MfError::App(detail));
        }
    };
    if let Some((pid, err)) = env.failures().into_iter().next() {
        return Err(MfError::App(format!("process {pid:?} failed: {err}")));
    }
    let result = cell
        .lock()
        .take()
        .ok_or_else(|| MfError::App("master produced no result".into()))?;

    // Satellite: interleave the per-process trace files chronologically,
    // exactly as the paper's single chronological listing shows them.
    let mut sequences = vec![local_records];
    for (slot, _identity, trace) in &child_reports {
        if let Some(text) = trace {
            let records = parse_trace(text)
                .map_err(|e| MfError::App(format!("instance {slot} sent a bad trace: {e}")))?;
            sequences.push(records);
        }
    }
    let records = merge_traces(sequences);
    let machines_used = records
        .iter()
        .map(|r| r.host.as_str().to_string())
        .collect::<BTreeSet<_>>()
        .len();

    Ok(ConcurrentResult {
        result,
        outcome,
        records,
        machines_used,
        peak_concurrent_workers: gauge.peak(),
    })
}

/// The child side: everything `subsolve_worker` does after parsing its
/// environment. Serves jobs from `addr` by running the real Worker
/// manifold in a private MANIFOLD environment whose startup machine is
/// this machine's real hostname, and ships the accumulated trace (task
/// uids rewritten to this instance's slot) back at shutdown.
pub fn run_worker_child(
    addr: Addr,
    instance: u64,
    heartbeat: Duration,
    faults: chaos::WorkerFaults,
) -> std::io::Result<ServeSummary> {
    let host = transport::real_hostname();
    let task_uid = child_task_uid(instance);
    let link = LinkSpec::default()
        .task("mainprog")
        .perpetual(true)
        .load(64)
        .weight("Worker", 1);
    let env = Environment::with_specs(link, ConfigSpec::with_startup(host.as_str()));

    let mut cfg = ServeConfig::new(addr, instance, host, task_uid);
    cfg.heartbeat = heartbeat;
    // Wire-level faults run inside the serve loop (it owns the socket);
    // the crash stays here in the job handler, because an abrupt
    // process exit is an *application*-level death, not a transport one.
    cfg.faults = transport::ServeFaults {
        corrupt_reply_on_job: faults.corrupt_on_job,
        drop_conn_on_job: faults.drop_on_job,
        stall_on_job: faults
            .stall_on_job
            .map(|(job, ms)| (job, Duration::from_millis(ms))),
        heartbeat_delay: faults.heartbeat_delay_ms.map(Duration::from_millis),
    };
    let crash_on_job = faults.crash_on_job;
    let jobs_seen = AtomicU64::new(0);
    let env_for_jobs = env.clone();
    let summary = serve(
        cfg,
        move |job| {
            let n = jobs_seen.fetch_add(1, Ordering::SeqCst) + 1;
            if crash_on_job == Some(n) {
                // Fault injection: die the way a crashed workstation
                // does — no reply, no cleanup, connection just drops.
                std::process::exit(42);
            }
            solve_one(&env_for_jobs, job).map_err(|e| e.to_string())
        },
        || {
            let mut records = env.trace().snapshot();
            for r in &mut records {
                r.task_uid = task_uid;
            }
            Some(format_trace(&records))
        },
    )?;
    env.shutdown();
    Ok(summary)
}

/// Run one job through the real Worker manifold: create the worker
/// process instance, feed it the job, collect its submission, observe its
/// death — the same four steps the thread backend's pool performs.
fn solve_one(env: &Environment, job: Unit) -> MfResult<Unit> {
    env.run_coordinator("ChildMain", |coord| {
        let death = Name::new(DEATH_WORKER);
        let worker = worker_factory(coord, &death);
        coord.activate(&worker)?;
        let mut st = coord.state();
        st.send(job.clone(), &worker, "input")?;
        st.connect_to_self(&worker, "output", "input", StreamType::KK)?;
        match st.until_terminated(&worker, &[DEATH_WORKER.into()])? {
            StateExit::Event(_) => {
                let result = coord.read("input")?;
                worker.core().wait_terminated(Duration::from_secs(600))?;
                Ok(result)
            }
            StateExit::Terminated(_) => {
                let detail = env
                    .failures()
                    .into_iter()
                    .find(|(pid, _)| *pid == worker.id())
                    .map(|(_, e)| e.to_string())
                    .unwrap_or_else(|| "worker terminated without a result".into());
                Err(MfError::App(detail))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::PaperFaithful;

    #[test]
    fn child_task_uids_are_distinct_from_the_masters() {
        let master_uid = TraceRecord::task_uid_for(TaskInstanceId(0));
        assert_ne!(child_task_uid(0), master_uid);
        assert_ne!(child_task_uid(0), child_task_uid(1));
    }

    #[test]
    fn missing_worker_binary_is_a_clear_error() {
        let mut cfg = ProcsConfig::new(1);
        cfg.worker_exe = Some(PathBuf::from("/nonexistent/subsolve_worker"));
        let app = SequentialApp::new(1, 1, 1e-3);
        let err = run_concurrent_procs(&app, &cfg, true, Arc::new(PaperFaithful)).unwrap_err();
        // The pool fails to spawn and reports which instance.
        assert!(err.to_string().contains("instance 0"), "got: {err}");
    }

    #[test]
    fn solve_one_runs_the_real_worker() {
        use crate::codec::{request_to_unit, result_from_unit};
        use solver::problem::Problem;
        use solver::subsolve::SubsolveRequest;

        let env = Environment::new();
        let req = SubsolveRequest::for_grid(2, 1, 1, 1e-3, Problem::manufactured_benchmark());
        let out = solve_one(&env, request_to_unit(&req)).unwrap();
        let res = result_from_unit(&out).unwrap();
        let direct = solver::subsolve(&req).unwrap();
        assert_eq!(res.values, direct.values);
        env.shutdown();
    }

    #[test]
    fn solve_one_surfaces_worker_failures() {
        let env = Environment::new();
        let err = solve_one(&env, Unit::text("not a job")).unwrap_err();
        assert!(!err.to_string().is_empty());
        env.shutdown();
    }
}
