//! The calibrated cost model: from solver work to virtual seconds.
//!
//! Levels 10–15 of Table 1 are hours of 2003-era compute on grids of up to
//! half a million cells; reproducing them *live* is neither possible (no
//! 32-machine cluster) nor useful. Instead the distributed experiments run
//! in virtual time: each `subsolve(l, m)` becomes a [`Job`] whose cost
//! comes from this model.
//!
//! The model's *shape* is taken from the real solver (work grows linearly
//! in the cell count, the per-cell step/iteration count grows mildly with
//! refinement, anisotropic grids cost a little extra through their hybrid
//! upwind stencils and step-size control) and its *absolute scale* is
//! calibrated against a single anchor: the paper's measured sequential
//! time at level 15, tolerance 1.0e-3 (2019.02 s). Everything else —
//! per-level growth ≈ 2.4×, tolerance factor ≈ 2× — is then a prediction
//! that EXPERIMENTS.md compares against the remaining 31 table cells.
//!
//! The shape is cross-checked against measurement two ways: [`measure_shape`]
//! runs the real solver across levels and reports growth/anisotropy/
//! tolerance ratios from its own [`solver::WorkCounter`]s, and the solver
//! benchmark (`BENCH_solver.json`, from `solver_bench --json`) pins the
//! per-grid flop intensity at ≈302 flops per unknown per accepted step at
//! level 6 — the same constant the a-priori dispatch estimate
//! [`solver::work::estimate_subsolve_flops`] is calibrated to
//! (`solver::work::MEASURED_FLOPS_PER_UNKNOWN_STEP`). At the reference
//! rate of 10⁹ flop/s that intensity reproduces the right order for the
//! paper's low-level `st` entries without retuning the anchor.

use cluster::workload::{Job, Workload};
use solver::grid::Grid2;
use solver::problem::Problem;
use solver::subsolve::{subsolve, SubsolveRequest};

/// Reference tolerance: costs are expressed relative to `1.0e-3` runs.
pub const REF_TOL: f64 = 1.0e-3;

/// Cost model for the sparse-grid application on the simulated cluster.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Effective flop rate of the reference 1200 MHz machine.
    pub ref_flops_per_sec: f64,
    /// Seconds (on the reference machine) of the level-0 grid solve at the
    /// reference tolerance — the calibrated anchor scale.
    pub unit_grid_seconds: f64,
    /// Multiplicative cost growth per grid level (cells double; steps and
    /// linear iterations add another ~20%).
    pub level_growth: f64,
    /// Fixed per-grid cost (matrix setup, bookkeeping) in seconds.
    pub grid_constant_seconds: f64,
    /// Extra relative cost of anisotropic grids:
    /// `1 + anisotropy · ((l − m) / (l + m + 1))²`. Quadratic: strongly
    /// stretched stencils degrade the ILU-preconditioned iteration count
    /// much more than mildly stretched ones.
    pub anisotropy: f64,
    /// Cost scales as `(tol / REF_TOL)^(-tol_exponent)`; 0.31 reproduces
    /// the paper's ≈2.05× between 1.0e-3 and 1.0e-4.
    pub tol_exponent: f64,
    /// Fixed master initialization cost in seconds.
    pub init_constant_seconds: f64,
    /// Master flops per initial-data byte prepared (sampling + packing).
    pub feed_flops_per_byte: f64,
    /// Master flops per result byte stored back into the global structure.
    pub collect_flops_per_byte: f64,
}

impl CostModel {
    /// The model used for all Table 1 / Figure 1 reproductions: base shape
    /// constants plus the single-anchor calibration described in the
    /// module docs.
    pub fn paper_calibrated() -> CostModel {
        let mut model = CostModel {
            ref_flops_per_sec: 1.0e9,
            unit_grid_seconds: 1.0, // placeholder, calibrated below
            level_growth: 2.26,
            grid_constant_seconds: 0.02,
            anisotropy: 2.5,
            tol_exponent: 0.31,
            init_constant_seconds: 0.03,
            feed_flops_per_byte: 450.0,
            collect_flops_per_byte: 250.0,
        };
        model.calibrate_to(15, REF_TOL, 2019.02);
        model
    }

    /// Rescale `unit_grid_seconds` so the *sequential* time of the given
    /// `(level, tol)` run equals `target_seconds` on the reference machine.
    /// The sequential time is affine in the unit scale, so two probes pin
    /// it exactly.
    pub fn calibrate_to(&mut self, level: u32, tol: f64, target_seconds: f64) {
        self.unit_grid_seconds = 0.0;
        let at_zero = self.sequential_seconds(2, level, tol);
        self.unit_grid_seconds = 1.0;
        let at_one = self.sequential_seconds(2, level, tol);
        assert!(at_one > at_zero);
        assert!(
            target_seconds > at_zero,
            "target {target_seconds}s below the fixed costs {at_zero}s"
        );
        self.unit_grid_seconds = (target_seconds - at_zero) / (at_one - at_zero);
    }

    fn tol_factor(&self, tol: f64) -> f64 {
        (tol / REF_TOL).powf(-self.tol_exponent)
    }

    /// Virtual seconds of `subsolve(l, m)` at tolerance `tol` on the
    /// reference machine.
    pub fn grid_seconds(&self, l: u32, m: u32, tol: f64) -> f64 {
        let lm = (l + m) as f64;
        let stretch = (l as f64 - m as f64) / (lm + 1.0);
        let anis = 1.0 + self.anisotropy * stretch * stretch;
        self.grid_constant_seconds
            + self.unit_grid_seconds * self.level_growth.powf(lm) * anis * self.tol_factor(tol)
    }

    /// Flops of `subsolve(l, m)` (grid seconds × reference rate).
    pub fn grid_flops(&self, l: u32, m: u32, tol: f64) -> f64 {
        self.grid_seconds(l, m, tol) * self.ref_flops_per_sec
    }

    /// Bytes of a grid's full node field.
    pub fn grid_bytes(root: u32, l: u32, m: u32) -> usize {
        Grid2::new(root, l, m).node_count() * 8
    }

    /// The level-dependent but grid-cost-independent master seconds
    /// (initialization + prolongation model).
    fn fixed_seconds(&self, root: u32, level: u32) -> f64 {
        // Initialization samples the data, prolongation accumulates it into
        // the combined representation: a few flops per node each.
        self.init_constant_seconds
            + (self.init_flops(root, level) + self.prolong_flops(root, level))
                / self.ref_flops_per_sec
    }

    /// Master initialization flops (sampling every grid's initial field).
    pub fn init_flops(&self, root: u32, level: u32) -> f64 {
        let nodes: usize = Grid2::combination_indices(level)
            .iter()
            .map(|i| Grid2::new(root, i.l, i.m).node_count())
            .sum();
        25.0 * nodes as f64
    }

    /// Master prolongation flops (combining every grid into the final
    /// sparse representation).
    pub fn prolong_flops(&self, root: u32, level: u32) -> f64 {
        let nodes: usize = Grid2::combination_indices(level)
            .iter()
            .map(|i| Grid2::new(root, i.l, i.m).node_count())
            .sum();
        12.0 * nodes as f64
    }

    /// Analytic sequential seconds of a whole run on the reference machine
    /// (noise-free).
    pub fn sequential_seconds(&self, root: u32, level: u32, tol: f64) -> f64 {
        let mut t = self.fixed_seconds(root, level);
        for idx in Grid2::combination_indices(level) {
            t += self.grid_seconds(idx.l, idx.m, tol);
        }
        t
    }

    /// Build the protocol-shaped workload of a run: a single pool holding
    /// every `subsolve` of the nested loop (in the paper's visit order).
    /// `data_through_master` selects whether the initial data travels
    /// through the master (the paper's design) or workers fetch their own
    /// input (the §4.1 I/O-worker alternative).
    pub fn workload(&self, root: u32, level: u32, tol: f64, data_through_master: bool) -> Workload {
        let jobs: Vec<Job> = Grid2::combination_indices(level)
            .iter()
            .map(|idx| {
                let bytes = Self::grid_bytes(root, idx.l, idx.m);
                Job::new(
                    format!("subsolve({}, {})", idx.l, idx.m),
                    self.grid_flops(idx.l, idx.m, tol),
                    if data_through_master { bytes } else { 128 },
                    bytes,
                )
            })
            .collect();
        Workload {
            name: format!("root {root}, level {level}, tol {tol:.1e}"),
            init_flops: self.init_flops(root, level)
                + self.init_constant_seconds * self.ref_flops_per_sec,
            prolong_flops: self.prolong_flops(root, level),
            pools: vec![jobs],
            feed_flops_per_byte: self.feed_flops_per_byte,
            collect_flops_per_byte: self.collect_flops_per_byte,
        }
    }

    /// The "more demanding master" variant (§4.2 note): one pool per grid
    /// diagonal (`lm = level-1`, then `lm = level`) instead of one big
    /// pool. The rendezvous between the pools is a barrier the single-pool
    /// design does not have.
    ///
    /// Errs on a job whose label does not parse as `subsolve(l, m)` — the
    /// label is the join key between the cost model and the pools, and a
    /// workload from another source may not carry it.
    pub fn workload_per_diagonal(
        &self,
        root: u32,
        level: u32,
        tol: f64,
        data_through_master: bool,
    ) -> Result<Workload, String> {
        let mut base = self.workload(root, level, tol, data_through_master);
        let jobs = base.pools.pop().expect("workload always builds one pool");
        let mut pools: Vec<Vec<Job>> = Vec::new();
        let lo = level.saturating_sub(1);
        for lm in lo..=level {
            let mut diagonal: Vec<Job> = Vec::new();
            for j in &jobs {
                let (l, m) = parse_subsolve_label(&j.label)?;
                if l + m == lm {
                    diagonal.push(j.clone());
                }
            }
            if !diagonal.is_empty() {
                pools.push(diagonal);
            }
        }
        base.pools = pools;
        base.name = format!("{} (per-diagonal pools)", base.name);
        Ok(base)
    }
}

/// Parse a `subsolve(l, m)` job label back into its `(l, m)` indices.
///
/// A malformed label is a diagnosed error, not a panic deep inside an
/// iterator chain: the message names the label and the part that failed.
pub fn parse_subsolve_label(label: &str) -> Result<(u32, u32), String> {
    let inner = label
        .strip_prefix("subsolve(")
        .and_then(|rest| rest.strip_suffix(')'))
        .ok_or_else(|| format!("malformed job label {label:?}: expected `subsolve(l, m)`"))?;
    let (l, m) = inner.split_once(", ").ok_or_else(|| {
        format!("malformed job label {label:?}: expected two `, `-separated indices")
    })?;
    let index = |name: &str, s: &str| {
        s.parse::<u32>()
            .map_err(|e| format!("malformed job label {label:?}: {name} index {s:?}: {e}"))
    };
    Ok((index("l", l)?, index("m", m)?))
}

/// Empirical growth measurements from the *real* solver, used to validate
/// the model's shape constants (see EXPERIMENTS.md).
#[derive(Clone, Debug)]
pub struct MeasuredShape {
    /// Total work (flops from the solver's own counter) per level.
    pub level_flops: Vec<(u32, f64)>,
    /// Observed per-level growth ratios.
    pub growth_ratios: Vec<f64>,
    /// Max/min work ratio across the grids of the deepest measured
    /// diagonal (anisotropy spread).
    pub anisotropy_spread: f64,
    /// Work ratio between `tol/10` and `tol` at the deepest measured level.
    pub tol_ratio: f64,
}

/// Run the real solver across levels `0..=max_level` and measure how its
/// work actually scales.
pub fn measure_shape(root: u32, max_level: u32, tol: f64, problem: Problem) -> MeasuredShape {
    let mut level_flops = Vec::new();
    let mut deep_grid_flops: Vec<f64> = Vec::new();
    for level in 0..=max_level {
        let mut total = 0.0;
        for idx in Grid2::combination_indices(level) {
            let req = SubsolveRequest::for_grid(root, idx.l, idx.m, tol, problem);
            let res = subsolve(&req).expect("measurement subsolve failed");
            total += res.work.flops as f64;
            if level == max_level && idx.level() == max_level {
                deep_grid_flops.push(res.work.flops as f64);
            }
        }
        level_flops.push((level, total));
    }
    let growth_ratios = level_flops.windows(2).map(|w| w[1].1 / w[0].1).collect();
    let spread = {
        let max = deep_grid_flops.iter().copied().fold(0.0, f64::max);
        let min = deep_grid_flops.iter().copied().fold(f64::MAX, f64::min);
        max / min
    };
    let tol_ratio = {
        let total = |t: f64| -> f64 {
            Grid2::combination_indices(max_level)
                .iter()
                .map(|idx| {
                    let req = SubsolveRequest::for_grid(root, idx.l, idx.m, t, problem);
                    subsolve(&req)
                        .expect("measurement subsolve failed")
                        .work
                        .flops as f64
                })
                .sum()
        };
        total(tol / 10.0) / total(tol)
    };
    MeasuredShape {
        level_flops,
        growth_ratios,
        anisotropy_spread: spread,
        tol_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_anchor() {
        let m = CostModel::paper_calibrated();
        let st = m.sequential_seconds(2, 15, REF_TOL);
        assert!((st - 2019.02).abs() < 1e-6, "st(15) = {st}");
    }

    #[test]
    fn per_level_growth_matches_paper() {
        let m = CostModel::paper_calibrated();
        // The paper's st column grows ≈2.3–2.5× per level at high levels.
        for level in 10..15 {
            let r = m.sequential_seconds(2, level + 1, REF_TOL)
                / m.sequential_seconds(2, level, REF_TOL);
            assert!((2.2..2.65).contains(&r), "growth at {level}: {r}");
        }
    }

    #[test]
    fn tolerance_factor_matches_paper() {
        let m = CostModel::paper_calibrated();
        // st(1e-4)/st(1e-3) ≈ 2.04 in the paper at high levels.
        let r = m.sequential_seconds(2, 15, 1e-4) / m.sequential_seconds(2, 15, 1e-3);
        assert!((1.9..2.2).contains(&r), "tol ratio {r}");
    }

    #[test]
    fn low_level_sequential_times_are_small() {
        let m = CostModel::paper_calibrated();
        // Paper: st(0) = 0.02..0.03 s, st(5) ≈ 0.4..0.7 s.
        let st0 = m.sequential_seconds(2, 0, REF_TOL);
        let st5 = m.sequential_seconds(2, 5, REF_TOL);
        assert!(st0 < 0.2, "st(0) = {st0}");
        assert!((0.1..2.0).contains(&st5), "st(5) = {st5}");
    }

    #[test]
    fn anisotropic_grids_cost_more() {
        let m = CostModel::paper_calibrated();
        assert!(m.grid_seconds(10, 0, REF_TOL) > m.grid_seconds(5, 5, REF_TOL));
        // But all grids of one level stay within the anisotropy band.
        let base = m.grid_seconds(5, 5, REF_TOL);
        let worst = m.grid_seconds(10, 0, REF_TOL);
        assert!(worst / base < 1.0 + m.anisotropy + 1e-9);
    }

    #[test]
    fn workload_matches_nested_loop() {
        let m = CostModel::paper_calibrated();
        let wl = m.workload(2, 4, REF_TOL, true);
        assert_eq!(wl.pools.len(), 1);
        assert_eq!(wl.job_count(), 9); // 2*4+1
        assert!(wl.pools[0][0].label.starts_with("subsolve("));
        // Sequential flops of the workload agree with the analytic time.
        let st = m.sequential_seconds(2, 4, REF_TOL);
        let wl_secs = wl.sequential_flops() / m.ref_flops_per_sec;
        // The per-grid constant is folded into job flops? No: it is not —
        // jobs carry it via grid_flops (grid_seconds includes it).
        assert!(
            (wl_secs - st).abs() / st < 0.05,
            "workload {wl_secs} vs analytic {st}"
        );
    }

    #[test]
    fn per_diagonal_workload_splits_pools() {
        let m = CostModel::paper_calibrated();
        let single = m.workload(2, 4, REF_TOL, true);
        let split = m.workload_per_diagonal(2, 4, REF_TOL, true).unwrap();
        assert_eq!(split.pools.len(), 2);
        assert_eq!(split.pools[0].len(), 4); // lm = 3 diagonal
        assert_eq!(split.pools[1].len(), 5); // lm = 4 diagonal
        assert_eq!(split.job_count(), single.job_count());
        // Same total work, just regrouped.
        assert!(
            (split.sequential_flops() - single.sequential_flops()).abs()
                < 1e-6 * single.sequential_flops()
        );
    }

    #[test]
    fn per_diagonal_level_zero_single_pool() {
        let m = CostModel::paper_calibrated();
        let wl = m.workload_per_diagonal(2, 0, REF_TOL, true).unwrap();
        assert_eq!(wl.pools.len(), 1);
        assert_eq!(wl.job_count(), 1);
    }

    #[test]
    fn subsolve_labels_round_trip_and_malformed_ones_are_diagnosed() {
        assert_eq!(parse_subsolve_label("subsolve(7, 0)"), Ok((7, 0)));
        assert_eq!(parse_subsolve_label("subsolve(0, 12)"), Ok((0, 12)));
        for bad in [
            "",
            "subsolve",
            "subsolve()",
            "subsolve(3)",
            "subsolve(3; 4)",
            "subsolve(3, x)",
            "subsolve(-1, 4)",
            "prolong(3, 4)",
            "subsolve(3, 4",
        ] {
            let err = parse_subsolve_label(bad).unwrap_err();
            assert!(err.contains("malformed job label"), "{bad:?} → {err}");
            assert!(err.contains(bad), "message should quote the label: {err}");
        }
    }

    #[test]
    fn io_worker_variant_shrinks_inputs_only() {
        let m = CostModel::paper_calibrated();
        let through = m.workload(2, 3, REF_TOL, true);
        let io = m.workload(2, 3, REF_TOL, false);
        for (a, b) in through.pools[0].iter().zip(&io.pools[0]) {
            assert!(b.input_bytes < a.input_bytes);
            assert_eq!(a.output_bytes, b.output_bytes);
            assert_eq!(a.flops, b.flops);
        }
    }

    #[test]
    fn measured_shape_is_sane() {
        // Small real measurement: growth between levels is positive and
        // roughly geometric; anisotropy spread is modest.
        let shape = measure_shape(2, 3, 1e-3, Problem::transport_benchmark());
        assert_eq!(shape.level_flops.len(), 4);
        for r in &shape.growth_ratios {
            assert!(*r > 1.3, "growth ratio {r}");
        }
        assert!(shape.anisotropy_spread >= 1.0);
        assert!(shape.anisotropy_spread < 4.0);
        assert!(shape.tol_ratio > 1.2, "tol ratio {}", shape.tol_ratio);
    }
}
