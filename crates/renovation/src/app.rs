//! `mainprog.m` — wiring Master and Worker into `ProtocolMW`.
//!
//! ```text
//! manifold Main(process argv)
//! {
//!     begin: ProtocolMW(Master(argv), Worker).
//! }
//! ```
//!
//! One source program, two deployments (§6): change only the MLINK `load`
//! and the CONFIG host list to go from a *parallel* run (every process a
//! thread in one task instance) to a *distributed* run (each worker in its
//! own task instance on its own machine). [`RunMode`] captures exactly that
//! choice.

use std::path::PathBuf;
use std::sync::Arc;

use chaos::FaultPlan;
use manifold::config::{ConfigSpec, HostName};
use manifold::link::LinkSpec;
use manifold::prelude::*;
use manifold::trace::TraceRecord;
use protocol::{PaperFaithful, PolicyRef, ProtocolOutcome};
use solver::sequential::{SequentialApp, SequentialResult};

use crate::engine::{AppConfig, Engine, EngineOpts, JobHandle};

/// Deployment flavour — the paper's link/configure stage choice.
#[derive(Clone, Debug)]
pub enum RunMode {
    /// All processes bundled into one task instance (the paper's
    /// "change the load on line 5 of mainprog.mlink to 6"): a shared-memory
    /// parallel run.
    Parallel,
    /// One worker per task instance, task instances mapped onto the given
    /// machines (`{host …} {locus …}`): the distributed deployment. The
    /// processes still execute as local threads here — the *placement
    /// bookkeeping* and trace output follow the distributed semantics;
    /// virtual-time performance of a real cluster is the `cluster` crate's
    /// job.
    Distributed {
        /// Machines after the start-up machine.
        hosts: Vec<HostName>,
    },
}

impl RunMode {
    pub(crate) fn link_spec(&self, level: u32) -> LinkSpec {
        match self {
            // Load big enough for master + all workers in one instance.
            RunMode::Parallel => LinkSpec::default()
                .task("mainprog")
                .perpetual(true)
                .load(2 * level + 2)
                .weight("Master", 1)
                .weight("Worker", 1),
            RunMode::Distributed { .. } => LinkSpec::default()
                .task("mainprog")
                .perpetual(true)
                .load(1)
                .weight("Master", 1)
                .weight("Worker", 1),
        }
    }

    pub(crate) fn config_spec(&self) -> ConfigSpec {
        match self {
            RunMode::Parallel => ConfigSpec::with_startup("bumpa.sen.cwi.nl"),
            RunMode::Distributed { hosts } => {
                let mut spec = ConfigSpec::with_startup("bumpa.sen.cwi.nl");
                let mut vars = Vec::new();
                for (i, h) in hosts.iter().enumerate() {
                    let var = format!("host{}", i + 1);
                    spec = spec.host(var.as_str(), h.clone());
                    vars.push(var);
                }
                let refs: Vec<&str> = vars.iter().map(String::as_str).collect();
                spec.locus("mainprog", &refs)
            }
        }
    }

    /// The paper's five extra machines (§6).
    pub fn paper_hosts() -> Vec<HostName> {
        [
            "diplice.sen.cwi.nl",
            "alboka.sen.cwi.nl",
            "altfluit.sen.cwi.nl",
            "arghul.sen.cwi.nl",
            "basfluit.sen.cwi.nl",
        ]
        .iter()
        .map(HostName::new)
        .collect()
    }
}

/// Output of a live concurrent run.
#[derive(Debug)]
pub struct ConcurrentResult {
    /// The application result — bit-identical to the sequential program's.
    pub result: SequentialResult,
    /// Protocol bookkeeping (pools, workers created, deaths counted).
    pub outcome: ProtocolOutcome,
    /// The chronological §6-format trace of the run.
    pub records: Vec<TraceRecord>,
    /// Distinct machines that hosted a task instance during the run.
    pub machines_used: usize,
    /// Highest number of workers simultaneously inside their compute
    /// section. Bounded by the dispatch policy's in-flight window.
    pub peak_concurrent_workers: usize,
}

/// Run the renovated application concurrently. `data_through_master`
/// selects the paper's design (true) or the §4.1 I/O-worker alternative
/// (false); both produce identical numerical results. Dispatch uses the
/// paper's verified feed order ([`PaperFaithful`]).
pub fn run_concurrent(
    app: &SequentialApp,
    mode: &RunMode,
    data_through_master: bool,
) -> MfResult<ConcurrentResult> {
    run_concurrent_with_policy(app, mode, data_through_master, Arc::new(PaperFaithful))
}

/// [`run_concurrent`] with an explicit dispatch policy. All policies
/// produce bit-identical numerical results; they differ only in job order,
/// worker concurrency, and hence wall-clock/trace shape.
pub fn run_concurrent_with_policy(
    app: &SequentialApp,
    mode: &RunMode,
    data_through_master: bool,
    policy: PolicyRef,
) -> MfResult<ConcurrentResult> {
    run_concurrent_opts(app, mode, data_through_master, policy, &RunOpts::default())
}

/// Robustness options for a threads-backend run — the knobs the
/// `--checkpoint-dir` / `--resume` / `--faults` flags feed.
#[derive(Clone, Debug, Default)]
pub struct RunOpts {
    /// Fault schedule to inject. Thread workers are anonymous (no fixed
    /// pool slots), so worker faults apply by *pool-wide* job ordinal
    /// regardless of the instance a token names; wire-level faults
    /// (drop/corrupt/hbdelay) have no transport here and are inert.
    pub faults: Option<FaultPlan>,
    /// Persist a checkpoint after every collected result.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in `checkpoint_dir` (no-op when none
    /// exists yet).
    pub resume: bool,
    /// Override the master's lost-worker retry budget.
    pub retry_budget: Option<usize>,
    /// Sharded dispatch (`--shards N`, `--steal on|off`): shard masters
    /// over the same pool, flat when 1. Numerics are bit-identical for
    /// any shard count.
    pub shards: protocol::ShardSpec,
    /// Membership churn plan (`--churn join@N,leave@M`). Threads workers
    /// are anonymous, so churn is inert here; the procs backend applies
    /// it as real process joins/retirements.
    pub churn: protocol::ChurnPlan,
}

/// [`run_concurrent_with_policy`] plus chaos and checkpoint/resume
/// options.
///
/// Since the [`Engine`](crate::engine::Engine) refactor this is a thin
/// wrapper: bring a threads fleet up, serve exactly one job, tear it
/// down. Multi-job callers hold an `Engine` and keep the fleet.
pub fn run_concurrent_opts(
    app: &SequentialApp,
    mode: &RunMode,
    data_through_master: bool,
    policy: PolicyRef,
    opts: &RunOpts,
) -> MfResult<ConcurrentResult> {
    let engine_opts = EngineOpts {
        capacity_level: app.level,
        faults: opts.faults.clone(),
        checkpoint_dir: opts.checkpoint_dir.clone(),
        resume: opts.resume,
        retry_budget: opts.retry_budget,
        shards: opts.shards,
        churn: opts.churn.clone(),
    };
    let mut engine = Engine::threads(mode.clone(), policy, engine_opts)?;
    let handle = engine.submit(AppConfig::new(*app).with_data_through_master(data_through_master));
    let report = handle.map_err(MfError::from).and_then(JobHandle::wait);
    engine.shutdown();
    Ok(report?.into_concurrent())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_identical(a: &SequentialResult, b: &SequentialResult) {
        assert_eq!(
            a.combined, b.combined,
            "combined fields must be bit-identical"
        );
        assert_eq!(a.l2_error, b.l2_error);
        assert_eq!(a.per_grid.len(), b.per_grid.len());
    }

    #[test]
    fn parallel_run_matches_sequential_bit_for_bit() {
        let app = SequentialApp::new(2, 2, 1e-3);
        let seq = app.run().unwrap();
        let conc = run_concurrent(&app, &RunMode::Parallel, true).unwrap();
        check_identical(&conc.result, &seq);
        assert_eq!(conc.outcome.pools().len(), 1);
        assert_eq!(conc.outcome.pools()[0].workers_created, 5);
        // Parallel mode: everything in one task instance on one machine.
        assert_eq!(conc.machines_used, 1);
    }

    #[test]
    fn distributed_run_matches_sequential_bit_for_bit() {
        let app = SequentialApp::new(2, 1, 1e-3);
        let seq = app.run().unwrap();
        let conc = run_concurrent(
            &app,
            &RunMode::Distributed {
                hosts: RunMode::paper_hosts(),
            },
            true,
        )
        .unwrap();
        check_identical(&conc.result, &seq);
        // Master on the start-up machine + workers elsewhere.
        assert!(conc.machines_used >= 2);
    }

    #[test]
    fn io_worker_variant_matches_too() {
        let app = SequentialApp::new(2, 1, 1e-3);
        let seq = app.run().unwrap();
        let conc = run_concurrent(&app, &RunMode::Parallel, false).unwrap();
        check_identical(&conc.result, &seq);
    }

    #[test]
    fn level_zero_single_worker() {
        let app = SequentialApp::new(2, 0, 1e-3);
        let conc = run_concurrent(&app, &RunMode::Parallel, true).unwrap();
        assert_eq!(conc.outcome.pools()[0].workers_created, 1);
        assert_eq!(conc.result.per_grid.len(), 1);
    }

    #[test]
    fn bounded_reuse_caps_concurrent_workers() {
        // Level 6 over a coarse root: 13 grids, cheap subsolves. With a
        // pool of 3 the windowed dispatch must never let more than 3
        // workers compute at once — and the answer stays bit-identical.
        let app = SequentialApp::new(1, 6, 1e-3);
        let seq = app.run().unwrap();
        let conc = run_concurrent_with_policy(
            &app,
            &RunMode::Parallel,
            true,
            Arc::new(protocol::BoundedReuse::new(3)),
        )
        .unwrap();
        check_identical(&conc.result, &seq);
        assert_eq!(conc.outcome.pools()[0].workers_created, 13);
        assert!(
            conc.peak_concurrent_workers <= 3,
            "pool of 3 exceeded: peak {}",
            conc.peak_concurrent_workers
        );
        assert!(conc.peak_concurrent_workers >= 1);
    }

    #[test]
    fn cost_aware_policy_matches_sequential_bit_for_bit() {
        let app = SequentialApp::new(2, 2, 1e-3);
        let seq = app.run().unwrap();
        let conc = run_concurrent_with_policy(
            &app,
            &RunMode::Parallel,
            true,
            Arc::new(protocol::CostAware),
        )
        .unwrap();
        check_identical(&conc.result, &seq);
    }

    #[test]
    fn trace_shows_welcomes_and_byes() {
        let app = SequentialApp::new(2, 1, 1e-3);
        let conc = run_concurrent(
            &app,
            &RunMode::Distributed {
                hosts: RunMode::paper_hosts(),
            },
            true,
        )
        .unwrap();
        let welcomes = conc
            .records
            .iter()
            .filter(|r| r.message == "Welcome")
            .count();
        let byes = conc.records.iter().filter(|r| r.message == "Bye").count();
        // Master + 3 workers.
        assert_eq!(welcomes, 4);
        assert_eq!(byes, 4);
        // Workers ran in mainprog task instances on locus machines.
        assert!(conc
            .records
            .iter()
            .any(|r| r.manifold_name.as_str() == "Worker(event)"
                && r.host.as_str() != "bumpa.sen.cwi.nl"));
    }
}
