//! The supervisor coordinator: master-death detection + relaunch.
//!
//! The paper's protocol makes *worker* death an ordinary, observable event
//! (`death_worker`), but a dying **master** takes the whole run with it.
//! This module closes that gap in MANIFOLD style: a `Supervisor`
//! coordinator runs the application as an atomic process, observes its
//! termination, and — when the run died rather than finished — raises
//! [`MASTER_DOWN`] and launches a fresh incarnation that resumes from the
//! last checkpoint (see [`crate::checkpoint`]). Because the master
//! checkpoints every collected result before it can die, and a resumed
//! run restores those results instead of re-collecting them, each distinct
//! failure costs at most one relaunch.
//!
//! The relaunch budget bounds the other half of the chaos-harness
//! invariant: a run whose faults exceed its budgets must end in a
//! *diagnosed* error in bounded time, not a retry loop.

use std::sync::Arc;

use manifold::mes;
use manifold::prelude::*;
use manifold::trace::TraceRecord;
use parking_lot::Mutex;

use crate::app::ConcurrentResult;

/// Event the supervisor raises each time it observes a dead master.
pub const MASTER_DOWN: &str = "master_down";

/// Outcome of a supervised run.
#[derive(Debug)]
pub struct SupervisedRun {
    /// The surviving incarnation's result.
    pub result: ConcurrentResult,
    /// How many times the supervisor relaunched a dead run.
    pub relaunches: usize,
    /// The supervisor's own trace (the application's is in
    /// `result.records`).
    pub supervisor_records: Vec<TraceRecord>,
}

/// Run `launch` under a supervisor with the given relaunch budget.
///
/// `launch(resume)` runs one incarnation of the application: `false` on
/// the first attempt, `true` on every relaunch — the callee wires that
/// flag to its checkpoint store (e.g. [`crate::app::RunOpts::resume`] or
/// [`crate::ProcsConfig`]'s resume field). The first incarnation may also
/// resume, if its caller already holds a checkpoint from an earlier
/// process; the supervisor only *escalates* the flag, never clears it.
pub fn supervise<F>(relaunch_budget: usize, mut launch: F) -> MfResult<SupervisedRun>
where
    F: FnMut(bool) -> MfResult<ConcurrentResult> + Send + 'static,
{
    let env = Environment::new();
    let cell: Arc<Mutex<Option<(ConcurrentResult, usize)>>> = Arc::new(Mutex::new(None));
    let cell2 = cell.clone();
    let run = env.run_coordinator("Supervisor", |coord| {
        let sup = coord.create_atomic("Supervise(run)", move |ctx: ProcessCtx| {
            mes!(ctx, "Welcome");
            let mut relaunches = 0usize;
            let mut resume = false;
            loop {
                match launch(resume) {
                    Ok(result) => {
                        mes!(
                            ctx,
                            "supervisor: run complete after {relaunches} relaunch(es)"
                        );
                        *cell2.lock() = Some((result, relaunches));
                        mes!(ctx, "Bye");
                        return Ok(());
                    }
                    Err(err) if relaunches < relaunch_budget => {
                        relaunches += 1;
                        mes!(
                            ctx,
                            "supervisor: master down ({err}); relaunching from checkpoint \
                             ({relaunches}/{relaunch_budget})"
                        );
                        ctx.raise(MASTER_DOWN);
                        resume = true;
                    }
                    Err(err) => {
                        return Err(MfError::App(format!(
                            "supervisor: relaunch budget ({relaunch_budget}) exhausted: {err}"
                        )));
                    }
                }
            }
        });
        coord.activate(&sup)?;
        sup.core()
            .wait_terminated(std::time::Duration::from_secs(600))
    });
    let supervisor_records = env.trace().snapshot();
    env.shutdown();
    match run {
        Ok(()) => {}
        Err(e) => {
            // Prefer the atomic process's own failure detail.
            if let Some((_, err)) = env.failures().into_iter().next() {
                return Err(MfError::App(err.to_string()));
            }
            return Err(e);
        }
    }
    if let Some((_, err)) = env.failures().into_iter().next() {
        return Err(MfError::App(err.to_string()));
    }
    let (result, relaunches) = cell
        .lock()
        .take()
        .ok_or_else(|| MfError::App("supervisor produced no result".into()))?;
    Ok(SupervisedRun {
        result,
        relaunches,
        supervisor_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{run_concurrent_opts, RunMode, RunOpts};
    use chaos::{FaultKind, FaultPlan};
    use protocol::PaperFaithful;
    use solver::sequential::SequentialApp;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("mf-sup-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn supervisor_relaunches_a_killed_master_bit_identically() {
        let app = SequentialApp::new(2, 2, 1e-3);
        let seq = app.run().unwrap();
        // The work-counter oracle is an *uninterrupted concurrent* run: the
        // master counts its per-grid data-staging ops, which the sequential
        // program does not perform.
        let uninterrupted = crate::app::run_concurrent(&app, &RunMode::Parallel, true).unwrap();
        let dir = tmp_dir("relaunch");
        let plan = FaultPlan::new(7).push(FaultKind::MasterKill { at_result: 2 });
        let opts = RunOpts {
            faults: Some(plan),
            checkpoint_dir: Some(dir.clone()),
            ..RunOpts::default()
        };
        let sup = supervise(2, move |resume| {
            let mut opts = opts.clone();
            opts.resume = resume;
            run_concurrent_opts(
                &app,
                &RunMode::Parallel,
                true,
                Arc::new(PaperFaithful),
                &opts,
            )
        })
        .unwrap();
        assert_eq!(sup.relaunches, 1, "one kill, one relaunch");
        assert_eq!(sup.result.result.combined, seq.combined);
        assert_eq!(sup.result.result.l2_error, seq.l2_error);
        assert_eq!(sup.result.result.work, uninterrupted.result.work);
        assert!(sup
            .supervisor_records
            .iter()
            .any(|r| r.message.contains("master down")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_relaunch_budget_is_a_diagnosed_error() {
        let app = SequentialApp::new(2, 1, 1e-3);
        let err = supervise(1, move |_resume| -> MfResult<ConcurrentResult> {
            let _ = app;
            Err(MfError::App("synthetic: master exploded".into()))
        })
        .unwrap_err()
        .to_string();
        assert!(err.contains("relaunch budget"), "{err}");
        assert!(err.contains("master exploded"), "{err}");
    }
}
