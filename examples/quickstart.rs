//! Quickstart: the MANIFOLD coordination model in one minute.
//!
//! A coordinator creates two atomic workers it knows nothing about
//! computationally, wires their ports together (exogenous coordination),
//! and reacts to their events. Run with:
//!
//! ```text
//! cargo run -p renovation --example quickstart
//! ```

use manifold::prelude::*;

fn main() -> MfResult<()> {
    let env = Environment::new();

    let sum = env.run_coordinator("Main", |coord| {
        // A worker that squares whatever number it reads. Workers read and
        // write only their *own* ports; they never name their peers.
        let squarer = coord.create_atomic("Squarer", |ctx: ProcessCtx| loop {
            let x = ctx.read("input")?.expect_real()?;
            ctx.write("output", Unit::real(x * x))?;
        });
        // A worker that accumulates three numbers, emits the total, raises
        // `done`, and dies.
        let accumulator = coord.create_atomic("Accumulator", |ctx: ProcessCtx| {
            let mut total = 0.0;
            for _ in 0..3 {
                total += ctx.read("input")?.expect_real()?;
            }
            ctx.write("output", Unit::real(total))?;
            ctx.raise("done");
            Ok(())
        });
        coord.activate(&squarer)?;
        coord.activate(&accumulator)?;

        // One coordinator state: squarer -> accumulator -> back to us. The
        // result stream is KK so it survives the state preemption that the
        // `done` event triggers.
        let mut st = coord.state();
        st.connect(&squarer, "output", &accumulator, "input", StreamType::BK)?;
        st.connect_to_self(&accumulator, "output", "input", StreamType::KK)?;
        for x in [3.0, 4.0, 5.0] {
            st.send(Unit::real(x), &squarer, "input")?;
        }
        // IDLE until the accumulator announces completion; the state (and
        // its BK streams) is dismantled on the way out.
        let occurrence = st.idle(&["done".into()])?;
        println!(
            "event `{}` raised by process {}",
            occurrence.name().unwrap(),
            occurrence.source
        );
        coord.read("input")?.expect_real()
    })?;

    println!("3² + 4² + 5² = {sum}");
    assert_eq!(sum, 50.0);
    env.shutdown();
    Ok(())
}
