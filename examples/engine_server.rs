//! `{perpetual}` doing real work: one persistent fleet, a stream of jobs.
//!
//! The paper's MLINK `{perpetual}` attribute means "an instance whose load
//! drops back to zero stays alive". The [`renovation::Engine`] is that
//! semantics put to use: construct the fleet once, then submit solve after
//! solve — each job gets its own master, the workers park between jobs
//! instead of dying, and job 2 onwards skips the bring-up cost entirely.
//! Run with:
//!
//! ```text
//! cargo run -p renovation --release --example engine_server
//! ```

use std::sync::Arc;

use manifold::prelude::MfResult;
use protocol::PaperFaithful;
use renovation::{AppConfig, Engine, EngineOpts, RunMode};
use solver::sequential::SequentialApp;

fn main() -> MfResult<()> {
    // The distributed deployment parks each worker in its own perpetual
    // task instance; the parallel deployment would bundle everything into
    // the startup instance and there would be nothing to watch survive.
    let mode = RunMode::Distributed {
        hosts: RunMode::paper_hosts(),
    };
    let opts = EngineOpts {
        capacity_level: 4,
        ..EngineOpts::default()
    };
    let mut engine = Engine::threads(mode, Arc::new(PaperFaithful), opts)?;

    // A stream of jobs of varying size, as a long-lived solver service
    // would see them. Each submit rendezvouses a fresh job-scoped master
    // with the same worker pool.
    println!("job | root | level | jobs |  latency ms | parked after");
    println!("----|------|-------|------|-------------|-------------");
    for (root, level) in [(2, 2), (1, 4), (2, 3), (1, 2), (2, 4), (2, 1)] {
        let app = SequentialApp::new(root, level, 1e-3);
        let oracle = app.run().expect("sequential oracle");
        let handle = engine.submit(AppConfig::new(app))?;
        let id = handle.id();
        let report = handle.wait()?;
        assert_eq!(
            report.result.combined, oracle.combined,
            "a warm fleet must reproduce the solo run bit for bit"
        );
        println!(
            "{id:>3} | {root:>4} | {level:>5} | {:>4} | {:>11.2} | {:>12}",
            report.result.per_grid.len(),
            report.latency_s * 1e3,
            engine.parked_workers(),
        );
    }

    let jobs = engine.jobs_served();
    let workers = engine.fleet_workers_created();
    let summary = engine.shutdown();
    println!();
    println!(
        "{jobs} jobs served by one fleet ({workers} workers created across all \
         jobs); shutdown confirmed {} jobs",
        summary.jobs_served
    );
    Ok(())
}
