//! The paper's application, end to end: solve the time-dependent
//! advection-diffusion problem with the sparse-grid combination technique —
//! sequentially, then concurrently through the renovated master/worker
//! structure — and verify the results are bit-identical.
//!
//! ```text
//! cargo run -p renovation --release --example sparse_grid_transport [-- <max_level>]
//! ```

use renovation::app::{run_concurrent, RunMode};
use solver::SequentialApp;

fn main() {
    let max_level: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let le_tol = 1.0e-4;

    println!("sparse-grid transport problem: root 2, le_tol {le_tol:.0e}");
    println!();
    println!("level  grids  seq steps    l2 error   identical-concurrent");
    for level in 0..=max_level {
        let app = SequentialApp::new(2, level, le_tol);
        let seq = app.run().expect("sequential run failed");
        let conc = run_concurrent(&app, &RunMode::Parallel, true).expect("concurrent run failed");
        let identical = conc.result.combined == seq.combined;
        let steps: usize = seq.per_grid.iter().map(|g| g.steps).sum();
        println!(
            "{level:>5} {:>6} {steps:>10} {:>11.4e}   {}",
            seq.per_grid.len(),
            seq.l2_error,
            if identical { "yes" } else { "NO!" }
        );
        assert!(identical, "concurrent result diverged from sequential");
    }
    println!();
    println!(
        "\"These are written to a file and are exactly the same as in the \
         sequential version.\" (§6) — verified."
    );
}
