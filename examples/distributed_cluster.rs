//! Running the concurrent version on a cluster of workstations (§6):
//! the same application, redeployed by changing only the MLINK/CONFIG
//! stages — then projected onto the simulated 32-machine cluster to show
//! the virtual wall-clock behaviour of a big run.
//!
//! ```text
//! cargo run -p renovation --release --example distributed_cluster
//! ```

use renovation::app::{run_concurrent, RunMode};
use renovation::cost::CostModel;
use renovation::virtualrun::paper_sim;
use solver::SequentialApp;

fn main() {
    // ---- Live distributed deployment (real threads, paper host list) ----
    let app = SequentialApp::new(2, 2, 1.0e-3);
    let mode = RunMode::Distributed {
        hosts: RunMode::paper_hosts(),
    };
    let conc = run_concurrent(&app, &mode, true).expect("distributed run failed");
    println!("chronological output of the level-2 distributed run:");
    for rec in conc
        .records
        .iter()
        .filter(|r| r.message == "Welcome" || r.message == "Bye")
    {
        println!("{rec}");
    }
    println!();
    println!(
        "machines used: {}   workers: {}   l2 error: {:.3e}",
        conc.machines_used,
        conc.outcome.pools()[0].workers_created,
        conc.result.l2_error
    );

    // ---- Virtual big run on the simulated cluster --------------------
    println!();
    println!("projected level-12 run on the simulated 32-machine cluster:");
    let model = CostModel::paper_calibrated();
    let sim = paper_sim(&model);
    let wl = model.workload(2, 12, 1.0e-3, true);
    let (st, ct, m, _) = sim.run_averaged(&wl, 5, 7);
    println!(
        "st = {st:.2} s   ct = {ct:.2} s   machines = {m:.1}   speedup = {:.1}",
        st / ct
    );
    println!("(paper, level 12, 1.0e-3: st 145.47, ct 50.79, m 7.6, su 2.9)");
}
