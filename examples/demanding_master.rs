//! The "more demanding master" (§4.2): instead of one pool for all grids,
//! raise `create_pool` once per grid *level* — the coordination schema in
//! `ProtocolMW` serves any number of pools without modification.
//!
//! ```text
//! cargo run -p renovation --release --example demanding_master
//! ```

use manifold::prelude::*;
use protocol::{protocol_mw, MasterHandle};
use renovation::codec::{request_to_unit, result_from_unit};
use renovation::worker::worker_factory;
use solver::grid::Grid2;
use solver::sequential::prolongation_phase;
use solver::{SequentialApp, WorkCounter};
use std::sync::Arc;

fn main() -> MfResult<()> {
    let app = SequentialApp::new(2, 3, 1.0e-3);
    let seq = app.run().map_err(|e| MfError::App(e.to_string()))?;

    let env = Environment::new();
    let combined = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let combined2 = combined.clone();

    let outcome = env.run_coordinator("Main", |coord| {
        let coord_ref = coord.self_ref();
        let env2 = coord.env().clone();
        let master = coord.create_atomic("Master(port in)", move |ctx: ProcessCtx| {
            let h = MasterHandle::new(ctx, coord_ref, env2);
            let mut per_grid = Vec::new();
            // One pool per diagonal: lm = level-1, then lm = level.
            for lm in app.level - 1..=app.level {
                h.create_pool();
                let diagonal: Vec<_> = (0..=lm).map(|l| (l, lm - l)).collect();
                for &(l, m) in &diagonal {
                    let _w = h.request_worker()?;
                    let req =
                        solver::SubsolveRequest::for_grid(app.root, l, m, app.le_tol, app.problem);
                    h.send_work(request_to_unit(&req))?;
                }
                for _ in &diagonal {
                    per_grid.push(result_from_unit(&h.collect()?)?);
                }
                h.rendezvous()?;
                println!(
                    "pool for diagonal lm = {lm}: {} workers done",
                    diagonal.len()
                );
            }
            h.finished();
            per_grid.sort_by_key(|r| (r.l + r.m, r.l));
            let mut work = WorkCounter::new();
            *combined2.lock() = prolongation_phase(app.root, app.level, &per_grid, &mut work);
            Ok(())
        });
        coord.activate(&master)?;
        let outcome = protocol_mw(coord, &master, worker_factory)?;
        master
            .core()
            .wait_terminated(std::time::Duration::from_secs(300))?;
        Ok(outcome)
    })?;
    env.shutdown();

    let pools = outcome.pools();
    println!();
    println!(
        "pools served: {} (workers per pool: {:?})",
        pools.len(),
        pools.iter().map(|p| p.workers_created).collect::<Vec<_>>()
    );
    let fine = Grid2::finest(app.root, app.level);
    assert_eq!(pools.len(), 2);
    assert_eq!(combined.lock().len(), fine.node_count());
    assert_eq!(
        *combined.lock(),
        seq.combined,
        "multi-pool result must equal the sequential result"
    );
    println!("multi-pool result is bit-identical to the sequential run.");
    Ok(())
}
