//! Write your own coordination *in MANIFOLD source* and run it: the `Mc`
//! front-end (`manifold::lang`) parses, checks, and interprets a manner you
//! author — here a fan-out/fan-in reduction that is *not* from the paper —
//! against Rust atomic processes.
//!
//! ```text
//! cargo run -p renovation --release --example custom_coordination
//! ```

use std::rc::Rc;
use std::sync::Arc;

use manifold::lang::{check_program, parse_program, print_program, Interp, Value};
use manifold::prelude::*;
use parking_lot::Mutex;

/// A broadcast-reduction protocol in MANIFOLD: one source port fans out to
/// two stages built from the same manifold definition (a MANIFOLD port
/// write delivers a copy to *every* attached stream), both feed the sink,
/// and the manner finishes when both stages signal completion.
const REDUCTION_M: &str = r#"
// reduction.m — fan-out through two stages of the same manifold.

manner Reduce(process source, process sink, manifold Stage(event)) {
    save *.

    event stage_done.

    auto process done is variable(0).

    process a is Stage(stage_done).
    process b is Stage(stage_done).

    begin: (source -> a, source -> b,
            a -> sink, b -> sink,
            terminated (void)).

    stage_done: done = done + 1;
        if (done < 2) then ( post (begin) ) else ( post (all_done) ).

    all_done: (MES("reduction complete"), halt).
}
"#;

fn main() -> MfResult<()> {
    let program = parse_program(REDUCTION_M).expect("parse");
    let summary = check_program(&program).expect("check");
    println!("parsed manner(s): {:?}", summary.manners);
    println!("events: {:?}", summary.events.iter().collect::<Vec<_>>());
    println!();
    println!("normal form:\n{}", print_program(&program));

    let env = Environment::new();
    let received = Arc::new(Mutex::new(Vec::<f64>::new()));
    let received2 = received.clone();

    env.run_coordinator("Main", |coord| {
        // The source emits one number; the port fan-out copies it to each
        // stage. It parks afterwards so its streams stay connected.
        let source = coord.create_atomic("Source", |ctx: ProcessCtx| {
            ctx.write("output", Unit::real(3.0))?;
            let _ = ctx.read("park"); // stay alive until shutdown
            Ok(())
        });
        coord.activate(&source)?;
        // The sink sums everything it sees.
        let sink = coord.create_atomic("Sink", move |ctx: ProcessCtx| loop {
            let v = ctx.read("input")?.expect_real()?;
            received2.lock().push(v);
        });
        coord.activate(&sink)?;

        // Stage manifold: squares one number, raises its completion event.
        let stage: manifold::lang::AtomicFactory = Rc::new(|coord, args| {
            let done = match &args[0] {
                Value::Event(e) => e.clone(),
                other => panic!("expected event, got {other:?}"),
            };
            let p = coord.create_atomic("Stage", move |ctx: ProcessCtx| {
                let x = ctx.read("input")?.expect_real()?;
                ctx.write("output", Unit::real(x * x))?;
                ctx.raise(done.as_str());
                Ok(())
            });
            coord.activate(&p)?;
            Ok(p)
        });

        Interp::new(&program, "reduction.m").call_manner(
            coord,
            "Reduce",
            vec![
                Value::Process(source),
                Value::Process(sink),
                Value::Manifold(stage),
            ],
        )
    })?;

    // Wait for the two squares to land.
    for _ in 0..200 {
        if received.lock().len() >= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    env.shutdown();

    let mut got = received.lock().clone();
    got.sort_by(f64::total_cmp);
    println!("sink received: {got:?}");
    assert_eq!(got, vec![9.0, 9.0], "both stages squared the broadcast 3.0");
    println!("custom interpreted coordination ran to completion.");
    Ok(())
}
