//! Write your own coordination *in MANIFOLD source* and run it: the `Mc`
//! front-end (`manifold::lang`) parses, checks, compiles, and executes a
//! manner you author — here a fan-out/fan-in reduction that is *not* from
//! the paper — against Rust atomic processes.
//!
//! ```text
//! cargo run -p renovation --release --example custom_coordination [-- --coord interp|compiled]
//! ```
//!
//! `--coord` selects the executor (the compiled state-machine VM by
//! default; `interp` tree-walks the AST instead). Both are bit-identical.

use std::rc::Rc;
use std::sync::Arc;

use manifold::lang::{check_program, expect_event_arg, print_program, CoordExec, Mc, Value};
use manifold::prelude::*;
use parking_lot::Mutex;

/// A broadcast-reduction protocol in MANIFOLD: one source port fans out to
/// two stages built from the same manifold definition (a MANIFOLD port
/// write delivers a copy to *every* attached stream), both feed the sink,
/// and the manner finishes when both stages signal completion.
const REDUCTION_M: &str = r#"
// reduction.m — fan-out through two stages of the same manifold.

manner Reduce(process source, process sink, manifold Stage(event)) {
    save *.

    event stage_done.

    auto process done is variable(0).

    process a is Stage(stage_done).
    process b is Stage(stage_done).

    begin: (source -> a, source -> b,
            a -> sink, b -> sink,
            terminated (void)).

    stage_done: done = done + 1;
        if (done < 2) then ( post (begin) ) else ( post (all_done) ).

    all_done: (MES("reduction complete"), halt).
}
"#;

fn main() -> MfResult<()> {
    let kind: CoordExec = std::env::args()
        .skip_while(|a| a != "--coord")
        .nth(1)
        .map(|v| v.parse().expect("--coord interp|compiled"))
        .unwrap_or_default();

    let mc = Mc::from_source(REDUCTION_M).expect("parse + compile");
    let summary = check_program(mc.program()).expect("check");
    println!("parsed manner(s): {:?}", summary.manners);
    println!("events: {:?}", summary.events.iter().collect::<Vec<_>>());
    println!();
    println!("normal form:\n{}", print_program(mc.program()));
    println!("executor: {kind}");

    let env = Environment::new();
    let received = Arc::new(Mutex::new(Vec::<f64>::new()));
    let received2 = received.clone();

    env.run_manner(&mc, kind, "reduction.m", "Reduce", |coord| {
        // The source emits one number; the port fan-out copies it to each
        // stage. It parks afterwards so its streams stay connected.
        let source = coord.create_atomic("Source", |ctx: ProcessCtx| {
            ctx.write("output", Unit::real(3.0))?;
            let _ = ctx.read("park"); // stay alive until shutdown
            Ok(())
        });
        coord.activate(&source)?;
        // The sink sums everything it sees.
        let sink = coord.create_atomic("Sink", move |ctx: ProcessCtx| loop {
            let v = ctx.read("input")?.expect_real()?;
            received2.lock().push(v);
        });
        coord.activate(&sink)?;

        // Stage manifold: squares one number, raises its completion event.
        let stage: manifold::lang::AtomicFactory = Rc::new(|coord, args| {
            let done = expect_event_arg(args, 0)?;
            let p = coord.create_atomic("Stage", move |ctx: ProcessCtx| {
                let x = ctx.read("input")?.expect_real()?;
                ctx.write("output", Unit::real(x * x))?;
                ctx.raise(done.as_str());
                Ok(())
            });
            coord.activate(&p)?;
            Ok(p)
        });

        Ok(vec![
            Value::Process(source),
            Value::Process(sink),
            Value::Manifold(stage),
        ])
    })?;

    // Wait for the two squares to land.
    for _ in 0..200 {
        if received.lock().len() >= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    env.shutdown();

    let mut got = received.lock().clone();
    got.sort_by(f64::total_cmp);
    println!("sink received: {got:?}");
    assert_eq!(got, vec![9.0, 9.0], "both stages squared the broadcast 3.0");
    println!("custom coordination ran to completion.");
    Ok(())
}
